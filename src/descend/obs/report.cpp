#include "descend/obs/report.h"

#include <cinttypes>
#include <cstdio>

#include "descend/simd/dispatch.h"

namespace descend::obs {
namespace {

void append_u64(std::string& out, std::uint64_t value)
{
    char buffer[24];
    std::snprintf(buffer, sizeof(buffer), "%" PRIu64, value);
    out += buffer;
}

/** `"key": value` with leading separator handling via @p first. */
void append_field(std::string& out, bool& first, const char* key,
                  std::uint64_t value)
{
    out += first ? "" : ", ";
    first = false;
    out += '"';
    out += key;
    out += "\": ";
    append_u64(out, value);
}

void append_counters(std::string& out, const Counters& counters)
{
    out += "\"counters\": {";
    bool first = true;
    if (kEnabled) {
        for (std::size_t i = 0; i < kCounterCount; ++i) {
            Counter id = static_cast<Counter>(i);
            append_field(out, first, counter_name(id), counters.get(id));
        }
    }
    out += "}";
}

void append_blocks(std::string& out, const Counters& counters,
                   std::size_t total)
{
    out += "\"blocks\": {";
    bool first = true;
    append_field(out, first, "accounted", accounted_blocks(counters));
    append_field(out, first, "total", kEnabled ? total : 0);
    out += "}";
}

void append_timings(std::string& out, const Timings& timings)
{
    out += "\"timings_ns\": {";
    bool first = true;
    for (std::size_t i = 0; i < kPhaseCount; ++i) {
        Phase phase = static_cast<Phase>(i);
        std::uint64_t ns = timings.get(phase);
        if (ns != 0) {
            append_field(out, first, phase_name(phase), ns);
        }
    }
    out += "}";
}

void append_header(std::string& out, const std::string& engine,
                   std::size_t document_bytes)
{
    out += "{\"obs\": ";
    out += kEnabled ? "true" : "false";
    out += ", \"engine\": \"";
    out += engine;  // engine names are identifier-like; no escaping needed
    out += "\", \"document\": {\"bytes\": ";
    append_u64(out, document_bytes);
    out += ", \"blocks\": ";
    append_u64(out, total_blocks(document_bytes));
    out += "}";
}

}  // namespace

std::size_t total_blocks(std::size_t document_bytes)
{
    return (document_bytes + simd::kBlockSize - 1) / simd::kBlockSize;
}

std::uint64_t accounted_blocks(const Counters& counters)
{
    return counters.get(Counter::kBlocksStructural) +
           counters.get(Counter::kBlocksChildSkipped) +
           counters.get(Counter::kBlocksSiblingSkipped) +
           counters.get(Counter::kBlocksWithinSkipped) +
           counters.get(Counter::kBlocksHeadSkip) +
           counters.get(Counter::kBlocksTail);
}

std::string to_json(const RunReport& report)
{
    std::string out;
    append_header(out, report.engine, report.document_bytes);
    out += ", \"status\": {\"code\": \"";
    out += status_name(report.stats.status.code);
    out += "\", \"offset\": ";
    append_u64(out, report.stats.status.offset);
    out += "}, \"matches\": ";
    append_u64(out, report.matches);
    out += ", ";
    append_counters(out, report.stats.counters);
    out += ", ";
    append_blocks(out, report.stats.counters,
                  total_blocks(report.document_bytes));
    out += ", ";
    append_timings(out, report.stats.timings);
    out += "}";
    return out;
}

std::string to_json(const StreamReport& report)
{
    std::string out;
    append_header(out, report.engine, report.document_bytes);
    out += ", \"records\": ";
    append_u64(out, report.records);
    out += ", \"matches\": ";
    append_u64(out, report.matches);
    out += ", \"failed_records\": ";
    append_u64(out, report.failed_records);
    out += ", \"errors\": {";
    bool first = true;
    for (std::size_t i = 1; i < kStatusCodeCount; ++i) {
        if (report.error_tally[i] != 0) {
            append_field(out, first, status_name(static_cast<StatusCode>(i)),
                         report.error_tally[i]);
        }
    }
    out += "}, ";
    append_counters(out, report.counters);
    out += ", ";
    append_blocks(out, report.counters, report.record_blocks);
    out += ", ";
    append_timings(out, report.timings);
    out += "}";
    return out;
}

}  // namespace descend::obs
