/**
 * @file
 * RunStats: the per-run record every DescendEngine dispatch produces.
 *
 * Historically a handful of ad-hoc size_t fields in engine/api.h; now the
 * status plus the full obs counter registry and phase timings. The struct
 * backs the engine's Result-style paths — run() returns stats.status — so
 * it exists in every build; only the counters/timings payload is subject
 * to the DESCEND_OBS gate (with the gate off both collapse to empty
 * structs and the named accessors report zero).
 */
#pragma once

#include <cstddef>

#include "descend/obs/counters.h"
#include "descend/obs/timing.h"
#include "descend/util/status.h"

namespace descend {

/** What one run did: outcome, counters, and coarse phase timings. */
struct RunStats {
    /** The full per-run counter registry (empty when DESCEND_OBS is off). */
    obs::Counters counters;
    /** Phase timings accumulated so far (the engine records kAutomaton;
     *  callers add kCompile / kExtract around their own phases). */
    obs::Timings timings;
    /** Structured outcome of the run (also returned by run() itself). */
    EngineStatus status;

    // Named views of the registry, for callers that predate it.
    std::size_t events() const noexcept
    {
        return counters.get(obs::Counter::kStructuralEvents);
    }
    std::size_t child_skips() const noexcept
    {
        return counters.get(obs::Counter::kChildSkips);
    }
    std::size_t sibling_skips() const noexcept
    {
        return counters.get(obs::Counter::kSiblingSkips);
    }
    std::size_t head_skip_jumps() const noexcept
    {
        return counters.get(obs::Counter::kHeadSkipJumps);
    }
    std::size_t within_skips() const noexcept
    {
        return counters.get(obs::Counter::kWithinSkips);
    }
    /** High-water mark of the sparse depth-stack. The paper's Section 3.2
     *  claim: bounded by the query's selector count for child-free
     *  queries, by document depth only in adversarial nestings. */
    std::size_t max_stack() const noexcept
    {
        return counters.get(obs::Counter::kDepthStackMax);
    }
};

}  // namespace descend
