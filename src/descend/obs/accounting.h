/**
 * @file
 * Per-block attribution: which pipeline mode first consumed each block.
 *
 * The acceptance invariant of the observability layer is
 *
 *     blocks_structural + blocks_child_skipped + blocks_sibling_skipped
 *       + blocks_within_skipped + blocks_head_skip + blocks_tail
 *       == ceil(document_size / kBlockSize)
 *
 * and it holds by construction: the BlockAccountant uses the same
 * monotone-cursor idiom as StructuralValidator::account (validation.h) —
 * a block is attributed exactly when its start equals the cursor, so the
 * stop/resume protocol's re-classification of a block the other pipeline
 * already consumed is ignored, and every block is counted exactly once
 * under the mode that was active at its *first* classification. finish()
 * closes the books by attributing the never-classified tail (blocks after
 * the root closer hold only whitespace — the engine's trailing-content
 * check guarantees it — so no pipeline ever pulls them).
 *
 * Like everything in obs/, the class collapses to a no-op shell when
 * DESCEND_OBS is off; the pipeline call sites stay unconditional.
 */
#pragma once

#include "descend/obs/counters.h"
#include "descend/simd/dispatch.h"

namespace descend::obs {

/** The pipeline mode a block is attributed to. */
enum class BlockMode : std::uint8_t {
    kStructural,    ///< normal structural iteration
    kChildSkip,     ///< depth-classifier fast-forward over a rejected subtree
    kSiblingSkip,   ///< depth-classifier fast-forward to the parent's closer
    kWithinSkip,    ///< §4.5 within-element label scan
    kHeadSkip,      ///< head-skip label search
};

constexpr Counter block_mode_counter(BlockMode mode) noexcept
{
    switch (mode) {
        case BlockMode::kStructural: return Counter::kBlocksStructural;
        case BlockMode::kChildSkip: return Counter::kBlocksChildSkipped;
        case BlockMode::kSiblingSkip: return Counter::kBlocksSiblingSkipped;
        case BlockMode::kWithinSkip: return Counter::kBlocksWithinSkipped;
        case BlockMode::kHeadSkip: return Counter::kBlocksHeadSkip;
    }
    return Counter::kBlocksStructural;
}

#if DESCEND_OBS_ENABLED

/** One accountant is shared by every pipeline over one document, exactly
 *  like the shared StructuralValidator. */
class BlockAccountant {
public:
    explicit BlockAccountant(Counters* counters) noexcept : counters_(counters) {}

    /** The registry the pipelines should also feed (ring refills). */
    Counters* counters() const noexcept { return counters_; }

    /** Current attribution mode for account(); skips set and restore it. */
    void set_mode(BlockMode mode) noexcept { mode_ = mode; }

    /** Attributes the block at @p block_start to the current mode (first
     *  classification wins; later re-classifications are ignored). */
    void account(std::size_t block_start) noexcept
    {
        account_as(block_start, mode_);
    }

    /** Attributes to an explicit mode (the label search is always head-skip). */
    void account_as(std::size_t block_start, BlockMode mode) noexcept
    {
        if (counters_ == nullptr || block_start != counted_until_) {
            return;
        }
        counted_until_ += simd::kBlockSize;
        counters_->add(block_mode_counter(mode));
    }

    /** Attributes every remaining (never-classified) block to the tail.
     *  Idempotent; call once per dispatch return path. */
    void finish(std::size_t document_size) noexcept
    {
        if (counters_ == nullptr) {
            return;
        }
        std::size_t total =
            (document_size + simd::kBlockSize - 1) / simd::kBlockSize;
        std::size_t accounted = counted_until_ / simd::kBlockSize;
        if (total > accounted) {
            counters_->add(Counter::kBlocksTail, total - accounted);
            counted_until_ = total * simd::kBlockSize;
        }
    }

private:
    Counters* counters_;
    std::size_t counted_until_ = 0;
    BlockMode mode_ = BlockMode::kStructural;
};

#else  // DESCEND_OBS_ENABLED

class BlockAccountant {
public:
    explicit BlockAccountant(Counters*) noexcept {}
    Counters* counters() const noexcept { return nullptr; }
    void set_mode(BlockMode) noexcept {}
    void account(std::size_t) noexcept {}
    void account_as(std::size_t, BlockMode) noexcept {}
    void finish(std::size_t) noexcept {}
};

#endif  // DESCEND_OBS_ENABLED

/** RAII mode switch: restores kStructural when the skip scope exits. */
class ModeScope {
public:
    ModeScope(BlockAccountant* accountant, BlockMode mode) noexcept
        : accountant_(accountant)
    {
        if (accountant_ != nullptr) {
            accountant_->set_mode(mode);
        }
    }
    ~ModeScope()
    {
        if (accountant_ != nullptr) {
            accountant_->set_mode(BlockMode::kStructural);
        }
    }
    ModeScope(const ModeScope&) = delete;
    ModeScope& operator=(const ModeScope&) = delete;

private:
    BlockAccountant* accountant_;
};

}  // namespace descend::obs
