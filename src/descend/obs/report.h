/**
 * @file
 * Stable JSON export of observability data.
 *
 * One schema serves descend-cli --stats, the bench harnesses' counter
 * context, and the fuzz harness's invariant checks. The export is a
 * single flat JSON object (hand-serialized — the DOM is read-only):
 *
 *   {
 *     "obs": true,                          // false when DESCEND_OBS=OFF
 *     "engine": "descend-avx2",
 *     "document": {"bytes": N, "blocks": N},
 *     "status": {"code": "ok", "offset": 0},
 *     "matches": N,
 *     "counters": { "<counter_name>": N, ... },   // registry, enum order
 *     "blocks": {                           // the accounting invariant:
 *       "accounted": N,                     //   accounted == total always
 *       "total": N
 *     },
 *     "timings_ns": { "<phase_name>": N, ... }    // nonzero phases only
 *   }
 *
 * Stream (NDJSON) reports replace "status" with "records" /
 * "failed_records" and add "errors": {"<status_name>": N, ...} — the
 * per-record error tally keyed by status_name(). With the gate off the
 * counters/blocks/timings objects are emitted empty and "obs" is false,
 * so consumers can branch on one field instead of probing for keys.
 *
 * Counter and phase names are a stable schema: renaming one is a breaking
 * change to every BENCH_*.json consumer (see EXPERIMENTS.md).
 */
#pragma once

#include <array>
#include <cstddef>
#include <string>

#include "descend/obs/run_stats.h"
#include "descend/util/status.h"

namespace descend::obs {

/** One single-document engine run, ready for export. */
struct RunReport {
    std::string engine;             ///< JsonPathEngine::name()
    std::size_t document_bytes = 0;
    std::size_t matches = 0;
    RunStats stats;
};

/** One NDJSON stream run: shard registries merged, errors tallied. */
struct StreamReport {
    std::string engine;
    std::size_t document_bytes = 0;
    std::size_t records = 0;
    std::size_t matches = 0;
    std::size_t failed_records = 0;
    /** Sum of ceil(record_size / kBlockSize) over all records — the
     *  invariant's right-hand side for streams (record slices exclude the
     *  newline separators, so the whole-buffer block count would not add
     *  up). */
    std::size_t record_blocks = 0;
    Counters counters;
    Timings timings;
    /** Failed records per status code (indexed by StatusCode value). */
    std::array<std::uint64_t, kStatusCodeCount> error_tally{};
};

std::string to_json(const RunReport& report);
std::string to_json(const StreamReport& report);

/** Sum of the six per-block attribution counters — the left-hand side of
 *  the accounting invariant (== total blocks for every completed run). */
std::uint64_t accounted_blocks(const Counters& counters);

/** ceil(bytes / kBlockSize): the invariant's right-hand side. */
std::size_t total_blocks(std::size_t document_bytes);

}  // namespace descend::obs
