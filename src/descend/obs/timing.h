/**
 * @file
 * Scoped phase timers behind the DESCEND_OBS gate.
 *
 * Timing is deliberately coarse: one monotonic-clock pair per *phase*
 * (query compile, NDJSON split, the automaton run including all
 * classification it drives, value extraction), never per block — a
 * steady_clock read costs more than classifying a block, so fine-grained
 * classify timing belongs to the benchmark harnesses (bench_classification
 * measures kernel throughput in isolation), not to inline instrumentation.
 * The kClassify phase exists for exactly those harnesses.
 *
 * With the gate off, Timings is empty, the stopwatch reads no clock, and
 * every call site compiles to nothing.
 */
#pragma once

#include <cstddef>
#include <cstdint>

#include "descend/obs/counters.h"

#if DESCEND_OBS_ENABLED
#include <chrono>
#endif

namespace descend::obs {

/** The coarse phases of answering one query. */
enum class Phase : std::uint8_t {
    kCompile,    ///< query parse + automaton compile/minimize
    kSplit,      ///< NDJSON record splitting
    kClassify,   ///< standalone classification (benchmark harnesses)
    kAutomaton,  ///< the engine run: simulation + the classification it pulls
    kExtract,    ///< materializing matched values from offsets
    kCount_,
};

inline constexpr std::size_t kPhaseCount = static_cast<std::size_t>(Phase::kCount_);

/** Stable JSON export name of a phase. */
constexpr const char* phase_name(Phase phase) noexcept
{
    switch (phase) {
        case Phase::kCompile: return "compile";
        case Phase::kSplit: return "split";
        case Phase::kClassify: return "classify";
        case Phase::kAutomaton: return "automaton";
        case Phase::kExtract: return "extract";
        case Phase::kCount_: break;
    }
    return "unknown";
}

#if DESCEND_OBS_ENABLED

/** Accumulated nanoseconds per phase. */
struct Timings {
    std::uint64_t nanos[kPhaseCount] = {};

    void add(Phase phase, std::uint64_t ns) noexcept
    {
        nanos[static_cast<std::size_t>(phase)] += ns;
    }
    std::uint64_t get(Phase phase) const noexcept
    {
        return nanos[static_cast<std::size_t>(phase)];
    }
    void merge(const Timings& other) noexcept
    {
        for (std::size_t i = 0; i < kPhaseCount; ++i) {
            nanos[i] += other.nanos[i];
        }
    }
};

/** A started monotonic clock; elapsed_ns() reads it. Use when the timed
 *  value must land in an object that is returned by value (no reliance on
 *  destructor-vs-copy ordering). */
class PhaseStopwatch {
public:
    PhaseStopwatch() noexcept : start_(std::chrono::steady_clock::now()) {}

    std::uint64_t elapsed_ns() const noexcept
    {
        return static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - start_)
                .count());
    }

private:
    std::chrono::steady_clock::time_point start_;
};

/** RAII: adds the scope's duration to @p timings under @p phase. */
class ScopedPhaseTimer {
public:
    ScopedPhaseTimer(Timings* timings, Phase phase) noexcept
        : timings_(timings), phase_(phase)
    {
    }
    ~ScopedPhaseTimer()
    {
        if (timings_ != nullptr) {
            timings_->add(phase_, watch_.elapsed_ns());
        }
    }
    ScopedPhaseTimer(const ScopedPhaseTimer&) = delete;
    ScopedPhaseTimer& operator=(const ScopedPhaseTimer&) = delete;

private:
    Timings* timings_;
    Phase phase_;
    PhaseStopwatch watch_;
};

#else  // DESCEND_OBS_ENABLED

struct Timings {
    void add(Phase, std::uint64_t) noexcept {}
    std::uint64_t get(Phase) const noexcept { return 0; }
    void merge(const Timings&) noexcept {}
};

class PhaseStopwatch {
public:
    PhaseStopwatch() noexcept {}
    std::uint64_t elapsed_ns() const noexcept { return 0; }
};

class ScopedPhaseTimer {
public:
    ScopedPhaseTimer(Timings*, Phase) noexcept {}
    ScopedPhaseTimer(const ScopedPhaseTimer&) = delete;
    ScopedPhaseTimer& operator=(const ScopedPhaseTimer&) = delete;
};

#endif  // DESCEND_OBS_ENABLED

}  // namespace descend::obs
