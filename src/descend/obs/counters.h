/**
 * @file
 * The observability counter registry (the heart of src/descend/obs).
 *
 * Every quantity the paper's evaluation reasons about — blocks classified
 * vs. blocks fast-forwarded by each skipping technique, label-search
 * candidates vs. verified hits, stop/resume switches of the classifier
 * pipeline, depth-stack pushes vs. raw opening characters — is a named
 * counter in one flat registry, incremented at the single point in the
 * pipeline where the event happens.
 *
 * Gating contract: the whole subsystem sits behind the DESCEND_OBS CMake
 * option (exported as the DESCEND_OBS_ENABLED compile definition, PUBLIC
 * on the descend target so every consumer agrees on struct layouts).
 * With the gate off, Counters collapses to an empty struct whose methods
 * are inline no-ops — every increment in the hot path compiles away to
 * nothing, no counter storage or symbols exist in the binary, and the
 * classifier kernels are bit-for-bit unaffected. With the gate on (the
 * default), counters are plain unsynchronized uint64 adds: one registry
 * belongs to one run (one thread); cross-shard aggregation merges whole
 * registries after the workers join (see stream/stream_executor.cpp).
 *
 * See DESIGN.md §4.6 for the counter taxonomy and the JSON report schema.
 */
#pragma once

#include <cstddef>
#include <cstdint>

#if !defined(DESCEND_OBS_ENABLED)
#define DESCEND_OBS_ENABLED 0
#endif

namespace descend::obs {

/** True when the library was built with DESCEND_OBS=ON. */
inline constexpr bool kEnabled = DESCEND_OBS_ENABLED != 0;

/**
 * Every per-run counter. The enum order is the JSON report order; names
 * (counter_name) are the stable export identifiers, so renumbering is
 * free but renaming is a schema change.
 */
enum class Counter : std::uint8_t {
    // --- automaton simulation ---
    kStructuralEvents,    ///< structural events the main loop consumed
    kOpeningEvents,       ///< raw '{' / '[' events among those
    kDepthStackPushes,    ///< sparse depth-stack frames actually pushed
    kDepthStackMax,       ///< high-water mark of the depth-stack (gauge)
    // --- skipping techniques (invocations) ---
    kChildSkips,          ///< skip-children fast-forwards
    kSiblingSkips,        ///< skip-siblings fast-forwards
    kWithinSkips,         ///< within-element label fast-forwards (§4.5)
    kHeadSkipJumps,       ///< head-skip label occurrences processed
    // --- fused multi-query execution: skips one lane wanted but another
    //     vetoed (the region was iterated structurally instead) ---
    kFusedChildSkipSuppressed,    ///< child skips lost to disagreement
    kFusedSiblingSkipSuppressed,  ///< sibling skips lost to disagreement
    kFusedWithinSkipSuppressed,   ///< within-element skips lost to disagreement
    // --- set-compiled execution (src/descend/multi/product_engine.h; the
    //     fanout tally also covers the lanes backend's owner expansion) ---
    kProductStates,        ///< states of the compiled product automaton (gauge)
    kProductSkips,         ///< fast-forwards certified by a product state
    kSubscriberFanout,     ///< per-subscriber match emissions (incl. duplicates)
    // --- label search ---
    kLabelSearchCandidates,  ///< prefiltered quote candidates verified bytewise
    kLabelSearchHits,        ///< candidates confirmed as `"label":` members
    // --- classifier pipeline ---
    kBatchRefills,        ///< classify_batch kernel calls (ring refills)
    kBlocksClassified,    ///< blocks classified by those calls (refills x 8)
    kPipelineResumes,     ///< stop/resume switches (ring restarts with a
                          ///< re-seeded quote carry)
    // --- per-block attribution (each input block counted exactly once,
    //     under the mode that first pulled it through a pipeline) ---
    kBlocksStructural,     ///< consumed by structural iteration
    kBlocksChildSkipped,   ///< consumed by skip-children fast-forwards
    kBlocksSiblingSkipped, ///< consumed by skip-siblings fast-forwards
    kBlocksWithinSkipped,  ///< consumed by within-element label scans
    kBlocksHeadSkip,       ///< consumed by the head-skip label search
    kBlocksTail,           ///< never pulled through any pipeline (trailing
                           ///< whitespace after the root closer; everything,
                           ///< for runs that end before classification)
    // --- run governance (util/budget.h; stream executors) ---
    kDeadlineHits,         ///< runs stopped by a RunBudget deadline
    kCancelHits,           ///< runs stopped by a CancelToken
    kScalarRetries,        ///< records re-run on the scalar tier (kRetryScalar)
    kTierDivergences,      ///< scalar retries that changed the outcome
    // --- serve daemon (src/descend/serve): per-request tallies folded
    //     into each response's stats report ---
    kServeCacheHits,       ///< requests served from the compiled-query cache
    kServeCacheMisses,     ///< requests that compiled their query fresh
    // --- projection (src/descend/project): on-demand materialization of
    //     matched subtrees into value spans, slices, and lazy views ---
    kProjectedValues,      ///< match offsets extended to full value spans
    kProjectedBytes,       ///< total bytes covered by those spans
    kLazyFieldsParsed,     ///< LazyValue member/element navigations resolved
    kCount_,
};

inline constexpr std::size_t kCounterCount =
    static_cast<std::size_t>(Counter::kCount_);

/** Stable JSON export name of a counter. */
constexpr const char* counter_name(Counter id) noexcept
{
    switch (id) {
        case Counter::kStructuralEvents: return "structural_events";
        case Counter::kOpeningEvents: return "opening_events";
        case Counter::kDepthStackPushes: return "depth_stack_pushes";
        case Counter::kDepthStackMax: return "depth_stack_max";
        case Counter::kChildSkips: return "child_skips";
        case Counter::kSiblingSkips: return "sibling_skips";
        case Counter::kWithinSkips: return "within_skips";
        case Counter::kHeadSkipJumps: return "head_skip_jumps";
        case Counter::kFusedChildSkipSuppressed:
            return "fused_child_skip_suppressed";
        case Counter::kFusedSiblingSkipSuppressed:
            return "fused_sibling_skip_suppressed";
        case Counter::kFusedWithinSkipSuppressed:
            return "fused_within_skip_suppressed";
        case Counter::kProductStates: return "product_states";
        case Counter::kProductSkips: return "product_skips";
        case Counter::kSubscriberFanout: return "subscriber_fanout";
        case Counter::kLabelSearchCandidates: return "label_search_candidates";
        case Counter::kLabelSearchHits: return "label_search_hits";
        case Counter::kBatchRefills: return "batch_refills";
        case Counter::kBlocksClassified: return "blocks_classified";
        case Counter::kPipelineResumes: return "pipeline_resumes";
        case Counter::kBlocksStructural: return "blocks_structural";
        case Counter::kBlocksChildSkipped: return "blocks_child_skipped";
        case Counter::kBlocksSiblingSkipped: return "blocks_sibling_skipped";
        case Counter::kBlocksWithinSkipped: return "blocks_within_skipped";
        case Counter::kBlocksHeadSkip: return "blocks_head_skip";
        case Counter::kBlocksTail: return "blocks_tail";
        case Counter::kDeadlineHits: return "deadline_hits";
        case Counter::kCancelHits: return "cancel_hits";
        case Counter::kScalarRetries: return "scalar_retries";
        case Counter::kTierDivergences: return "tier_divergences";
        case Counter::kServeCacheHits: return "serve_cache_hits";
        case Counter::kServeCacheMisses: return "serve_cache_misses";
        case Counter::kProjectedValues: return "projected_values";
        case Counter::kProjectedBytes: return "projected_bytes";
        case Counter::kLazyFieldsParsed: return "lazy_fields_parsed";
        case Counter::kCount_: break;
    }
    return "unknown";
}

/** Gauges are high-water marks: merging takes the max, not the sum. */
constexpr bool counter_is_gauge(Counter id) noexcept
{
    return id == Counter::kDepthStackMax || id == Counter::kProductStates;
}

#if DESCEND_OBS_ENABLED

/** The per-run registry: a flat array indexed by Counter. */
class Counters {
public:
    void add(Counter id, std::uint64_t n = 1) noexcept { values_[index(id)] += n; }

    /** Gauge update: records @p value if it exceeds the current one. */
    void raise(Counter id, std::uint64_t value) noexcept
    {
        if (value > values_[index(id)]) {
            values_[index(id)] = value;
        }
    }

    std::uint64_t get(Counter id) const noexcept { return values_[index(id)]; }

    /** Aggregates another run's registry: sums, except gauges (max). */
    void merge(const Counters& other) noexcept
    {
        for (std::size_t i = 0; i < kCounterCount; ++i) {
            Counter id = static_cast<Counter>(i);
            if (counter_is_gauge(id)) {
                raise(id, other.values_[i]);
            } else {
                values_[i] += other.values_[i];
            }
        }
    }

private:
    static constexpr std::size_t index(Counter id) noexcept
    {
        return static_cast<std::size_t>(id);
    }

    std::uint64_t values_[kCounterCount] = {};
};

#else  // DESCEND_OBS_ENABLED

/** Gate off: an empty registry whose methods compile away entirely. */
class Counters {
public:
    void add(Counter, std::uint64_t = 1) noexcept {}
    void raise(Counter, std::uint64_t) noexcept {}
    std::uint64_t get(Counter) const noexcept { return 0; }
    void merge(const Counters&) noexcept {}
};

#endif  // DESCEND_OBS_ENABLED

/** Null-tolerant increment: pipeline components hold a Counters pointer
 *  that is null when the caller requested no instrumentation. */
inline void add(Counters* counters, Counter id, std::uint64_t n = 1) noexcept
{
    if (counters != nullptr) {
        counters->add(id, n);
    }
}

/** Null-tolerant gauge update. */
inline void raise(Counters* counters, Counter id, std::uint64_t value) noexcept
{
    if (counters != nullptr) {
        counters->raise(id, value);
    }
}

}  // namespace descend::obs
