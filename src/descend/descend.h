/**
 * @file
 * Umbrella header for the descend library.
 *
 * Quick start:
 *
 *     #include "descend/descend.h"
 *
 *     descend::PaddedString doc("{\"a\": {\"b\": 42}}");
 *     auto engine = descend::DescendEngine::for_query("$..b");
 *     std::size_t n = engine.count(doc);                       // 1
 *     auto offsets = engine.offsets(doc);                      // byte offsets
 *     auto values = descend::extract_values(doc, offsets);     // "42"
 *
 * To materialize matched subtrees instead of offsets, see the projection
 * subsystem (project/): SpanExtender + the ProjectionSink family, and
 * LazyValue for on-demand navigation.
 *
 * See README.md for the full tour and DESIGN.md for the architecture.
 */
#pragma once

#include "descend/automaton/compiled.h"
#include "descend/engine/api.h"
#include "descend/engine/extract.h"
#include "descend/engine/main_engine.h"
#include "descend/engine/padded_string.h"
#include "descend/obs/accounting.h"
#include "descend/obs/counters.h"
#include "descend/obs/report.h"
#include "descend/obs/run_stats.h"
#include "descend/obs/timing.h"
#include "descend/project/lazy_value.h"
#include "descend/project/projector.h"
#include "descend/project/sink.h"
#include "descend/project/span.h"
#include "descend/query/query.h"
#include "descend/stream/record_splitter.h"
#include "descend/stream/stream_executor.h"
#include "descend/stream/stream_sink.h"
#include "descend/util/errors.h"
