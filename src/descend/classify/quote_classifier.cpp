#include "descend/classify/quote_classifier.h"

#include "descend/util/bits.h"

namespace descend::classify {

QuoteMasks QuoteClassifier::classify(const std::uint8_t* block) noexcept
{
    const simd::Kernels& k = *kernels_;
    std::uint64_t backslashes = k.eq_mask(block, '\\');
    std::uint64_t quotes = k.eq_mask(block, '"');

    bool carry_out = false;
    std::uint64_t escaped = bits::find_escaped(backslashes, state_.escape_carry, carry_out);
    state_.escape_carry = carry_out;

    QuoteMasks masks;
    masks.unescaped_quotes = quotes & ~escaped;
    masks.in_string = k.prefix_xor(masks.unescaped_quotes) ^ state_.in_string_carry;
    // Sign-extend the top bit: all-ones iff this block ends inside a string.
    state_.in_string_carry =
        static_cast<std::uint64_t>(static_cast<std::int64_t>(masks.in_string) >> 63);
    return masks;
}

}  // namespace descend::classify
