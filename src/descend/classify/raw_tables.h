/**
 * @file
 * Generic byte classification via nibble-decomposed shuffle lookups —
 * Problem 1 of the paper (Section 4.1).
 *
 * Given an arbitrary predicate over bytes, this module derives *acceptance
 * groups* (Definitions 1-3) and constructs lookup tables for the cheapest
 * applicable SIMD method:
 *
 *  - kEq:      non-overlapping groups; accept iff ltab[low] == utab[high]
 *              (5 SIMD ops / block).
 *  - kOr8:     at most 8 groups; accept iff (ltab[low] | utab[high]) == 0xff
 *              (6 SIMD ops / block).
 *  - kGeneral: 9..16 groups; two kOr8 classifications ORed together.
 *  - kNaive:   one cmpeq per accepted value, ORed; always applicable and
 *              the baseline of Table 2. Also the fallback for accepted
 *              bytes >= 0x80, where the shuffle MSB rule makes the
 *              nibble-lookup methods inexpressible.
 *
 * Every constructed classifier is validated exhaustively against the
 * requested predicate over all 256 byte values before being returned, so a
 * construction bug can never silently misclassify.
 */
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "descend/simd/dispatch.h"

namespace descend::classify {

/** Predicate over bytes: accept[b] is true iff byte b maps to bucket 1. */
using ByteSet = std::array<bool, 256>;

/** Convenience constructor of a ByteSet from a list of accepted bytes. */
ByteSet byte_set(std::initializer_list<std::uint8_t> values);

/**
 * An acceptance group (Definition 2): the set of upper nibbles sharing one
 * acceptance set, stored as 16-bit nibble bitsets.
 */
struct AcceptanceGroup {
    std::uint16_t uppers = 0;
    std::uint16_t lowers = 0;

    bool operator==(const AcceptanceGroup&) const = default;
};

/**
 * All acceptance groups with non-empty acceptance sets, ordered by
 * descending |uppers| and then by smallest upper nibble. (This ordering
 * reproduces the table constants printed in the paper for the JSON
 * structural characters.)
 */
std::vector<AcceptanceGroup> acceptance_groups(const ByteSet& accept);

/** Definition 3: groups sharing a lower nibble while differing in uppers. */
bool has_overlapping_groups(const std::vector<AcceptanceGroup>& groups);

/** A pair of 16-entry nibble lookup tables. */
struct NibbleTables {
    std::array<std::uint8_t, 16> ltab{};
    std::array<std::uint8_t, 16> utab{};
};

enum class Method {
    kEq,
    kOr8,
    kGeneral,
    kNaive,
};

const char* method_name(Method method);

/**
 * A compiled binary byte classifier. Produces, for each 64-byte block, the
 * bitmask of accepted positions, using whichever method was selected at
 * construction time.
 */
class RawClassifier {
public:
    /** Builds the cheapest valid classifier for the predicate. */
    static RawClassifier build(const ByteSet& accept);

    /** Builds with a forced method; returns nullopt if not applicable. */
    static std::optional<RawClassifier> build_with_method(const ByteSet& accept,
                                                          Method method);

    Method method() const noexcept { return method_; }

    /** True when the lower-nibble index must be masked (predicate involves
     *  bytes >= 0x80; one extra SIMD op — the paper's footnote 2). */
    bool masked() const noexcept { return masked_; }

    const NibbleTables& primary_tables() const noexcept { return tables_[0]; }
    const NibbleTables& secondary_tables() const noexcept { return tables_[1]; }
    const std::vector<std::uint8_t>& naive_values() const noexcept { return values_; }

    /** Classifies one 64-byte block with the given kernel set. */
    std::uint64_t run(const simd::Kernels& kernels, const std::uint8_t* block) const;

private:
    RawClassifier() = default;

    Method method_ = Method::kNaive;
    bool masked_ = false;
    std::array<NibbleTables, 2> tables_{};
    std::vector<std::uint8_t> values_;
};

/**
 * Builds non-overlapping-groups tables, or nullopt when the method does not
 * apply (overlapping groups or accepted bytes >= 0x80). Group i (1-based in
 * the returned enumeration order) is encoded as value i; unused ltab slots
 * hold 255 and unused utab slots hold 254, exactly as in the paper.
 */
std::optional<NibbleTables> build_eq_tables(const ByteSet& accept);

/** Builds few-groups tables for the given groups; nullopt if > 8 groups. */
std::optional<NibbleTables> build_or_tables(const std::vector<AcceptanceGroup>& groups);

}  // namespace descend::classify
