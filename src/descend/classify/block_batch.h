/**
 * @file
 * The batched block stream: a small ring of pre-classified blocks feeding
 * the pipeline consumers (structural iterator, label search).
 *
 * Instead of paying one indirect kernel call per primitive per block (quote
 * eq, backslash eq, structural shuffle, depth cmpeq all re-loading the same
 * bytes), consumers ask this ring for the block's BlockMasks; a cache miss
 * classifies the next kBatchBlocks blocks with one classify_batch kernel
 * call that loads each byte exactly once. Derived views — the structural
 * mask with commas/colons toggled, depth masks for one bracket kind — are
 * cheap recompositions of the cached masks, so toggling never invalidates
 * the ring.
 *
 * The stop/resume protocol is preserved exactly: each cached block records
 * the quote-carry state at its entry (a classify::QuoteState on a block
 * boundary), and restart() re-seeds the carry for out-of-band jumps.
 *
 * Access pattern contract: requests must be block-aligned and either hit
 * the ring, continue it contiguously (block_start == ring end), or follow
 * a restart(). All pipeline consumers walk blocks monotonically, so this
 * holds by construction.
 *
 * Padding contract: a refill at block_start reads kBatchSize bytes from
 * there. The last possible refill starts at the final (possibly partial)
 * block of the input, so the buffer must keep PaddedString::kPadding >=
 * kBatchSize readable bytes past the logical end — see padded_string.h.
 */
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>

#include "descend/classify/quote_classifier.h"
#include "descend/obs/counters.h"
#include "descend/simd/dispatch.h"
#include "descend/util/budget.h"
#include "descend/util/status.h"

namespace descend::classify {

class BatchedBlockStream {
public:
    /** @param counters optional obs registry: refill() feeds the batch-
     *  refill and blocks-classified counters, restart() the stop/resume
     *  switch counter. Null (and any build with DESCEND_OBS=OFF) counts
     *  nothing.
     *  @param budget optional run budget, polled once per refill (one
     *  check per kBatchSize input bytes). A violation latches interrupt()
     *  with the refill's block offset; consumers observe the latch after
     *  pulling masks and park their pipelines. Null (the default, and
     *  what engines pass for an inactive budget) costs one null test. */
    BatchedBlockStream(const std::uint8_t* data, const simd::Kernels& kernels,
                       obs::Counters* counters = nullptr,
                       const RunBudget* budget = nullptr) noexcept
        : data_(data), kernels_(&kernels), counters_(counters), budget_(budget)
    {
    }

    /**
     * Masks for the block starting at @p block_start (must be a multiple
     * of simd::kBlockSize). Refills the ring on a miss; see the access
     * pattern contract above.
     */
    const simd::BlockMasks& masks(std::size_t block_start) noexcept
    {
        assert(block_start % simd::kBlockSize == 0);
        if (ring_start_ != kInvalid && block_start - ring_start_ < simd::kBatchSize) {
            return ring_[(block_start - ring_start_) / simd::kBlockSize];
        }
        return refill(block_start);
    }

    /**
     * The block's cached masks if it is in the ring, else null — a peek
     * that never refills. Lets out-of-band consumers (span extension, which
     * re-enters the stream once per match) detect that the block they want
     * was already classified and skip the restart()+refill pair: the
     * caller compares entry_state() against its independently recovered
     * carry before trusting the hit.
     */
    const simd::BlockMasks* cached(std::size_t block_start) const noexcept
    {
        assert(block_start % simd::kBlockSize == 0);
        if (ring_start_ != kInvalid &&
            block_start - ring_start_ < simd::kBatchSize) {
            return &ring_[(block_start - ring_start_) / simd::kBlockSize];
        }
        return nullptr;
    }

    /**
     * Re-seeds the quote/escape carry at an arbitrary block boundary and
     * invalidates the ring; the next masks() call classifies from exactly
     * that boundary. This is the resume() half of the stop/resume protocol.
     */
    void restart(const QuoteState& state) noexcept
    {
        carry_.escape = state.escape_carry;
        carry_.in_string = state.in_string_carry;
        ring_start_ = kInvalid;
        obs::add(counters_, obs::Counter::kPipelineResumes);
    }

    /** The quote state at the entry of a block's cached masks. */
    static QuoteState entry_state(const simd::BlockMasks& masks) noexcept
    {
        return {masks.entry_escaped, masks.entry_in_string};
    }

    const simd::Kernels& kernels() const noexcept { return *kernels_; }

    /**
     * The budget/failpoint interrupt latch: ok() until a refill observes
     * an exceeded budget (or an armed batch_refill failpoint), then the
     * violation's status with the refill's first block offset, held for
     * the stream's lifetime. The masks of the interrupting refill are
     * still valid — consumers check the latch after masks() and stop.
     */
    const EngineStatus& interrupt() const noexcept { return interrupt_; }

private:
    static constexpr std::size_t kInvalid = ~std::size_t{0};

    /** Ring miss: classify the next batch starting at @p block_start. */
    const simd::BlockMasks& refill(std::size_t block_start) noexcept;

    const std::uint8_t* data_;
    const simd::Kernels* kernels_;
    obs::Counters* counters_;
    const RunBudget* budget_ = nullptr;
    EngineStatus interrupt_;
    simd::BatchCarry carry_;
    std::size_t ring_start_ = kInvalid;
    simd::BlockMasks ring_[simd::kBatchBlocks];
};

}  // namespace descend::classify
