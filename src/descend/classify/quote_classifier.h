/**
 * @file
 * The quote classifier (paper Section 4.2): marks characters located inside
 * JSON strings so that the structural and depth classifiers can ignore
 * structural-looking bytes within string data, handling backslash escapes.
 *
 * Per 64-byte block it computes
 *  - the mask of unescaped double quotes, via add-carry propagation over
 *    backslash runs, and
 *  - the "in string" mask, via prefix-XOR of the quote mask (a single CLMUL
 *    on the SIMD path). Bits are set from each opening quote (inclusive)
 *    up to its closing quote (exclusive).
 *
 * Two bits of state cross block boundaries: whether the previous block
 * ended with an active escape, and whether it ended inside a string. The
 * whole state is copyable, which is what the stop/resume protocol of the
 * multi-classifier pipeline (Section 4.5) hands between the structural and
 * depth classifiers.
 */
#pragma once

#include <cstdint>

#include "descend/simd/dispatch.h"

namespace descend::classify {

/** Block-boundary state of the quote classifier. */
struct QuoteState {
    /** The previous block ended with an odd backslash run (next char escaped). */
    bool escape_carry = false;
    /** All-ones if the previous block ended inside a string, else zero. */
    std::uint64_t in_string_carry = 0;
};

/** Per-block result of quote classification. */
struct QuoteMasks {
    /** Positions of double quotes that are not escaped. */
    std::uint64_t unescaped_quotes = 0;
    /** Positions inside strings (opening quote inclusive, closing exclusive). */
    std::uint64_t in_string = 0;
};

/**
 * Streams quote classification across consecutive blocks. The caller must
 * feed blocks strictly in order; state() can be saved and restored to
 * re-classify from a known boundary.
 */
class QuoteClassifier {
public:
    explicit QuoteClassifier(const simd::Kernels& kernels) noexcept
        : kernels_(&kernels)
    {
    }

    /** Classifies the next 64-byte block, advancing the boundary state. */
    QuoteMasks classify(const std::uint8_t* block) noexcept;

    const QuoteState& state() const noexcept { return state_; }
    void set_state(const QuoteState& state) noexcept { state_ = state; }
    void reset() noexcept { state_ = QuoteState{}; }

    const simd::Kernels& kernels() const noexcept { return *kernels_; }

private:
    const simd::Kernels* kernels_;
    QuoteState state_;
};

}  // namespace descend::classify
