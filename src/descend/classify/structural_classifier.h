/**
 * @file
 * The structural classifier (paper Sections 4.1 and 4.3): per 64-byte block,
 * the bitmask of JSON structural characters — always '{' '}' '[' ']', plus
 * ',' and ':' when toggled on.
 *
 * Toggling works exactly as in the paper: commas and colons each own an
 * upper-nibble row of the utab lookup table that no other structural
 * character shares (rows 2 and 3), so XORing the row with the group id
 * zeroes it — and a zeroed row can never match, because all live ltab
 * entries are non-zero. Re-enabling XORs the id back in.
 */
#pragma once

#include <array>
#include <cstdint>

#include "descend/simd/dispatch.h"

namespace descend::classify {

/** Structural character constants (paper Table 1). */
inline constexpr std::uint8_t kOpenBrace = 0x7b;
inline constexpr std::uint8_t kCloseBrace = 0x7d;
inline constexpr std::uint8_t kOpenBracket = 0x5b;
inline constexpr std::uint8_t kCloseBracket = 0x5d;
inline constexpr std::uint8_t kColon = 0x3a;
inline constexpr std::uint8_t kComma = 0x2c;

class StructuralClassifier {
public:
    explicit StructuralClassifier(const simd::Kernels& kernels) noexcept;

    /**
     * Classifies one block; the result respects the current comma/colon
     * toggles. The caller masks out in-string positions itself (the quote
     * classifier is a separate pipeline stage).
     */
    std::uint64_t classify(const std::uint8_t* block) const noexcept
    {
        return kernels_->classify_eq(block, ltab_.data(), utab_.data());
    }

    bool commas_enabled() const noexcept { return commas_enabled_; }
    bool colons_enabled() const noexcept { return colons_enabled_; }

    /** Returns true if the toggle state actually changed. */
    bool set_commas(bool enabled) noexcept;
    bool set_colons(bool enabled) noexcept;

    const simd::Kernels& kernels() const noexcept { return *kernels_; }

    /** The lookup tables as printed in the paper (for tests / inspection). */
    static const std::array<std::uint8_t, 16>& reference_ltab() noexcept;
    static const std::array<std::uint8_t, 16>& reference_utab() noexcept;

private:
    const simd::Kernels* kernels_;
    std::array<std::uint8_t, 16> ltab_;
    std::array<std::uint8_t, 16> utab_;
    bool commas_enabled_ = false;
    bool colons_enabled_ = false;
};

}  // namespace descend::classify
