#include "descend/classify/block_batch.h"

namespace descend::classify {

const simd::BlockMasks& BatchedBlockStream::refill(std::size_t block_start) noexcept
{
    // Refills are contiguous-only: either the ring was just invalidated by
    // restart() (the carry is seeded for exactly this boundary), or the
    // request continues the previous batch (the carry was threaded there by
    // the last classify_batch call). Anything else would classify with a
    // stale carry.
    assert(ring_start_ == kInvalid || block_start == ring_start_ + simd::kBatchSize);
    kernels_->classify_batch(data_ + block_start, carry_, ring_);
    ring_start_ = block_start;
    obs::add(counters_, obs::Counter::kBatchRefills);
    obs::add(counters_, obs::Counter::kBlocksClassified, simd::kBatchBlocks);
    return ring_[0];
}

}  // namespace descend::classify
