#include "descend/classify/block_batch.h"

#include "descend/fault/failpoints.h"

namespace descend::classify {

const simd::BlockMasks& BatchedBlockStream::refill(std::size_t block_start) noexcept
{
    // Refills are contiguous-only: either the ring was just invalidated by
    // restart() (the carry is seeded for exactly this boundary), or the
    // request continues the previous batch (the carry was threaded there by
    // the last classify_batch call). Anything else would classify with a
    // stale carry.
    assert(ring_start_ == kInvalid || block_start == ring_start_ + simd::kBatchSize);
    kernels_->classify_batch(data_ + block_start, carry_, ring_);
    ring_start_ = block_start;
    obs::add(counters_, obs::Counter::kBatchRefills);
    obs::add(counters_, obs::Counter::kBlocksClassified, simd::kBatchBlocks);
    // Governance rides the refill boundary: one poll per kBatchSize bytes.
    // The violation latches with this refill's offset — the masks just
    // produced stay valid, consumers park when they see the latch.
    if (budget_ != nullptr && interrupt_.ok()) {
        StatusCode over = budget_->exceeded();
        if (over != StatusCode::kOk) {
            interrupt_ = {over, block_start};
        }
    }
    if constexpr (fault::kEnabled) {
        if (interrupt_.ok() && fault::should_fire(fault::Site::kBatchRefill)) {
            // Payload: the StatusCode to force; anything out of range (or
            // kOk) defaults to a deadline hit.
            auto code = static_cast<StatusCode>(
                fault::payload(fault::Site::kBatchRefill));
            if (static_cast<std::size_t>(code) >= kStatusCodeCount ||
                code == StatusCode::kOk) {
                code = StatusCode::kDeadlineExceeded;
            }
            interrupt_ = {code, block_start};
        }
    }
    return ring_[0];
}

}  // namespace descend::classify
