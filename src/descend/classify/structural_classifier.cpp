#include "descend/classify/structural_classifier.h"

#include <cassert>

#include "descend/classify/raw_tables.h"

namespace descend::classify {
namespace {

/** Upper-nibble rows owned exclusively by comma (0x2c) and colon (0x3a). */
constexpr int kCommaRow = kComma >> 4;
constexpr int kColonRow = kColon >> 4;

struct StructuralTables {
    NibbleTables tables;
    std::uint8_t comma_toggle;
    std::uint8_t colon_toggle;
};

/**
 * Derives the paper's structural tables through the generic acceptance-group
 * machinery of Section 4.1, rather than hard-coding them. A unit test pins
 * the derived constants to the values printed in the paper.
 */
const StructuralTables& structural_tables()
{
    static const StructuralTables tables = [] {
        ByteSet accept = byte_set(
            {kOpenBrace, kCloseBrace, kOpenBracket, kCloseBracket, kColon, kComma});
        auto built = build_eq_tables(accept);
        assert(built.has_value());
        StructuralTables result;
        result.tables = *built;
        result.comma_toggle = built->utab[kCommaRow];
        result.colon_toggle = built->utab[kColonRow];
        return result;
    }();
    return tables;
}

}  // namespace

StructuralClassifier::StructuralClassifier(const simd::Kernels& kernels) noexcept
    : kernels_(&kernels),
      ltab_(structural_tables().tables.ltab),
      utab_(structural_tables().tables.utab)
{
    // Default per Section 3.4: commas and colons start disabled, which is
    // exactly the leaf-skipping mode.
    utab_[kCommaRow] ^= structural_tables().comma_toggle;
    utab_[kColonRow] ^= structural_tables().colon_toggle;
}

bool StructuralClassifier::set_commas(bool enabled) noexcept
{
    if (enabled == commas_enabled_) {
        return false;
    }
    commas_enabled_ = enabled;
    utab_[kCommaRow] ^= structural_tables().comma_toggle;
    return true;
}

bool StructuralClassifier::set_colons(bool enabled) noexcept
{
    if (enabled == colons_enabled_) {
        return false;
    }
    colons_enabled_ = enabled;
    utab_[kColonRow] ^= structural_tables().colon_toggle;
    return true;
}

const std::array<std::uint8_t, 16>& StructuralClassifier::reference_ltab() noexcept
{
    return structural_tables().tables.ltab;
}

const std::array<std::uint8_t, 16>& StructuralClassifier::reference_utab() noexcept
{
    return structural_tables().tables.utab;
}

}  // namespace descend::classify
