#include "descend/classify/depth_classifier.h"

#include <cassert>

#include "descend/classify/structural_classifier.h"
#include "descend/util/bits.h"

namespace descend::classify {

DepthMasks depth_masks(const simd::Kernels& kernels, const std::uint8_t* block,
                       BracketKind kind) noexcept
{
    DepthMasks masks;
    if (kind == BracketKind::kObject) {
        masks.openers = kernels.eq_mask(block, kOpenBrace);
        masks.closers = kernels.eq_mask(block, kCloseBrace);
    } else {
        masks.openers = kernels.eq_mask(block, kOpenBracket);
        masks.closers = kernels.eq_mask(block, kCloseBracket);
    }
    return masks;
}

DepthMasks depth_masks(const simd::BlockMasks& masks, BracketKind kind) noexcept
{
    if (kind == BracketKind::kObject) {
        return {masks.open_braces, masks.close_braces};
    }
    return {masks.open_brackets, masks.close_brackets};
}

int find_depth_zero(DepthMasks masks, int& relative_depth) noexcept
{
    assert(relative_depth >= 1);
    // Block-skip heuristic (Section 4.4): fewer closers than the current
    // depth means the depth cannot reach zero anywhere in this block.
    if (bits::popcount(masks.closers) < relative_depth) {
        relative_depth += bits::popcount(masks.openers) - bits::popcount(masks.closers);
        return -1;
    }
    std::uint64_t consumed_openers = 0;
    for (bits::BitIter it(masks.closers); !it.done(); it.advance()) {
        int index = it.index();
        std::uint64_t before = bits::mask_below(index);
        relative_depth +=
            bits::popcount(masks.openers & before & ~consumed_openers);
        consumed_openers |= before;
        --relative_depth;
        if (relative_depth == 0) {
            return index;
        }
    }
    relative_depth += bits::popcount(masks.openers & ~consumed_openers);
    return -1;
}

}  // namespace descend::classify
