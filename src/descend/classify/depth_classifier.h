/**
 * @file
 * The depth classifier (paper Section 4.4): fast-forwards through an entire
 * subdocument by tracking only one opening/closing character pair.
 *
 * Per block it computes two cmpeq masks (openers, closers) — cheaper than
 * the full structural classification — and advances the relative depth.
 * The block-skip heuristic from the paper is applied: when the number of
 * closers in the (rest of the) block is smaller than the current relative
 * depth, the depth cannot reach zero here, so the whole block is consumed
 * with two popcounts instead of per-closer iteration.
 */
#pragma once

#include <cstdint>

#include "descend/simd/dispatch.h"

namespace descend::classify {

/** Which bracket pair the depth classifier tracks. */
enum class BracketKind : std::uint8_t {
    kObject,  ///< '{' and '}'
    kArray,   ///< '[' and ']'
};

/** Opening/closing masks of one block for a bracket kind. */
struct DepthMasks {
    std::uint64_t openers = 0;
    std::uint64_t closers = 0;
};

/** Computes the opener/closer masks of one 64-byte block. The caller is
 *  responsible for ANDing out in-string positions. */
DepthMasks depth_masks(const simd::Kernels& kernels, const std::uint8_t* block,
                       BracketKind kind) noexcept;

/** Same view over a pre-classified block's masks — a free recomposition,
 *  no kernel call. The caller still ANDs out in-string positions. */
DepthMasks depth_masks(const simd::BlockMasks& masks, BracketKind kind) noexcept;

/**
 * Advances the relative depth through one block (whose masks must already
 * exclude in-string positions and already-consumed bits).
 *
 * On entry @p relative_depth is the number of unmatched openers so far
 * (>= 1). If some closer in the block brings it to zero, returns that
 * closer's bit index and leaves @p relative_depth at zero; otherwise
 * consumes the whole block, updates @p relative_depth, and returns -1.
 */
int find_depth_zero(DepthMasks masks, int& relative_depth) noexcept;

}  // namespace descend::classify
