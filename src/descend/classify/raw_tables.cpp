#include "descend/classify/raw_tables.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "descend/util/bits.h"

namespace descend::classify {
namespace {

/** ltab slots outside every group (unique vs any group id and utab filler). */
constexpr std::uint8_t kLtabFiller = 0xff;
/** utab slots outside every group. */
constexpr std::uint8_t kUtabFiller = 0xfe;

/**
 * Reference evaluation of the lookup classifiers on a single byte.
 * Unmasked variants reproduce the x86 shuffle MSB rule (index bytes with
 * the top bit set look up 0); masked variants zero the upper nibbles of
 * the index first (the paper's footnote 2, one extra SIMD op).
 */
bool eval_eq(const NibbleTables& tables, std::uint8_t byte, bool masked)
{
    std::uint8_t lower =
        (!masked && (byte & 0x80)) ? 0 : tables.ltab[byte & 0x0f];
    return lower == tables.utab[byte >> 4];
}

bool eval_or(const NibbleTables& tables, std::uint8_t byte, bool masked)
{
    std::uint8_t lower =
        (!masked && (byte & 0x80)) ? 0 : tables.ltab[byte & 0x0f];
    return (lower | tables.utab[byte >> 4]) == 0xff;
}

/** Exhaustive validation of a classifier against its spec. */
template <typename Eval>
bool validate(const ByteSet& accept, Eval&& eval)
{
    for (int byte = 0; byte < 256; ++byte) {
        if (eval(static_cast<std::uint8_t>(byte)) != accept[byte]) {
            return false;
        }
    }
    return true;
}

std::vector<std::uint8_t> accepted_values(const ByteSet& accept)
{
    std::vector<std::uint8_t> values;
    for (int byte = 0; byte < 256; ++byte) {
        if (accept[byte]) {
            values.push_back(static_cast<std::uint8_t>(byte));
        }
    }
    return values;
}

}  // namespace

ByteSet byte_set(std::initializer_list<std::uint8_t> values)
{
    ByteSet set{};
    for (std::uint8_t value : values) {
        set[value] = true;
    }
    return set;
}

std::vector<AcceptanceGroup> acceptance_groups(const ByteSet& accept)
{
    // low(u) for each upper nibble (Definition 1).
    std::array<std::uint16_t, 16> low{};
    for (int byte = 0; byte < 256; ++byte) {
        if (accept[byte]) {
            low[byte >> 4] |= static_cast<std::uint16_t>(1u << (byte & 0x0f));
        }
    }
    // Merge uppers with equal acceptance sets (Definition 2), dropping the
    // group with the empty acceptance set: it never accepts anything.
    std::vector<AcceptanceGroup> groups;
    for (int upper = 0; upper < 16; ++upper) {
        if (low[upper] == 0) {
            continue;
        }
        auto it = std::find_if(groups.begin(), groups.end(), [&](const AcceptanceGroup& g) {
            return g.lowers == low[upper];
        });
        if (it == groups.end()) {
            groups.push_back({static_cast<std::uint16_t>(1u << upper), low[upper]});
        } else {
            it->uppers |= static_cast<std::uint16_t>(1u << upper);
        }
    }
    // Deterministic order reproducing the paper's enumeration for the JSON
    // structural table: larger upper sets first, then by smallest upper.
    std::sort(groups.begin(), groups.end(),
              [](const AcceptanceGroup& a, const AcceptanceGroup& b) {
                  int size_a = bits::popcount(a.uppers);
                  int size_b = bits::popcount(b.uppers);
                  if (size_a != size_b) {
                      return size_a > size_b;
                  }
                  return bits::trailing_zeros(a.uppers) < bits::trailing_zeros(b.uppers);
              });
    return groups;
}

bool has_overlapping_groups(const std::vector<AcceptanceGroup>& groups)
{
    for (std::size_t i = 0; i < groups.size(); ++i) {
        for (std::size_t j = i + 1; j < groups.size(); ++j) {
            if ((groups[i].lowers & groups[j].lowers) != 0) {
                return true;
            }
        }
    }
    return false;
}

std::optional<NibbleTables> build_eq_tables(const ByteSet& accept)
{
    std::vector<AcceptanceGroup> groups = acceptance_groups(accept);
    if (has_overlapping_groups(groups) || groups.size() > 253) {
        return std::nullopt;
    }
    NibbleTables tables;
    tables.ltab.fill(kLtabFiller);
    tables.utab.fill(kUtabFiller);
    for (std::size_t i = 0; i < groups.size(); ++i) {
        // Group ids start at 1: a zeroed utab row (a toggled-off symbol,
        // Section 4.1) must never equal a live ltab entry.
        std::uint8_t id = static_cast<std::uint8_t>(i + 1);
        for (int nibble = 0; nibble < 16; ++nibble) {
            if (groups[i].uppers & (1u << nibble)) {
                tables.utab[nibble] = id;
            }
            if (groups[i].lowers & (1u << nibble)) {
                tables.ltab[nibble] = id;
            }
        }
    }
    // Structural validity only; method applicability (masked vs unmasked)
    // is decided by RawClassifier::build_with_method.
    if (!validate(accept,
                  [&](std::uint8_t b) { return eval_eq(tables, b, /*masked=*/true); })) {
        return std::nullopt;
    }
    return tables;
}

std::optional<NibbleTables> build_or_tables(const std::vector<AcceptanceGroup>& groups)
{
    if (groups.size() > 8) {
        return std::nullopt;
    }
    NibbleTables tables;
    tables.ltab.fill(0);
    tables.utab.fill(0);
    for (std::size_t i = 0; i < groups.size(); ++i) {
        std::uint8_t bit = static_cast<std::uint8_t>(1u << i);
        for (int nibble = 0; nibble < 16; ++nibble) {
            if (groups[i].uppers & (1u << nibble)) {
                tables.utab[nibble] = static_cast<std::uint8_t>(0xff - bit);
            }
            if (groups[i].lowers & (1u << nibble)) {
                tables.ltab[nibble] |= bit;
            }
        }
    }
    return tables;
}

const char* method_name(Method method)
{
    switch (method) {
        case Method::kEq: return "eq";
        case Method::kOr8: return "or8";
        case Method::kGeneral: return "general";
        case Method::kNaive: return "naive";
    }
    return "?";
}

RawClassifier RawClassifier::build(const ByteSet& accept)
{
    for (Method method : {Method::kEq, Method::kOr8, Method::kGeneral}) {
        if (auto classifier = build_with_method(accept, method)) {
            return *std::move(classifier);
        }
    }
    auto naive = build_with_method(accept, Method::kNaive);
    assert(naive.has_value());
    return *std::move(naive);
}

std::optional<RawClassifier> RawClassifier::build_with_method(const ByteSet& accept,
                                                              Method method)
{
    RawClassifier classifier;
    classifier.method_ = method;
    switch (method) {
        case Method::kEq: {
            auto tables = build_eq_tables(accept);
            if (!tables) {
                return std::nullopt;
            }
            classifier.tables_[0] = *tables;
            // Prefer the 5-op unmasked form (the structural hot path) and
            // fall back to the masked form for high-byte predicates.
            for (bool masked : {false, true}) {
                if (validate(accept, [&](std::uint8_t b) {
                        return eval_eq(*tables, b, masked);
                    })) {
                    classifier.masked_ = masked;
                    return classifier;
                }
            }
            return std::nullopt;
        }
        case Method::kOr8: {
            auto tables = build_or_tables(acceptance_groups(accept));
            if (!tables) {
                return std::nullopt;
            }
            classifier.tables_[0] = *tables;
            for (bool masked : {false, true}) {
                if (validate(accept, [&](std::uint8_t b) {
                        return eval_or(*tables, b, masked);
                    })) {
                    classifier.masked_ = masked;
                    return classifier;
                }
            }
            return std::nullopt;
        }
        case Method::kGeneral: {
            std::vector<AcceptanceGroup> groups = acceptance_groups(accept);
            if (groups.size() > 16) {
                return std::nullopt;  // cannot happen: at most 16 upper nibbles
            }
            std::size_t half = (groups.size() + 1) / 2;
            std::vector<AcceptanceGroup> first(groups.begin(), groups.begin() + half);
            std::vector<AcceptanceGroup> second(groups.begin() + half, groups.end());
            auto tables1 = build_or_tables(first);
            auto tables2 = build_or_tables(second);
            if (!tables1 || !tables2) {
                return std::nullopt;
            }
            classifier.tables_[0] = *tables1;
            classifier.tables_[1] = *tables2;
            for (bool masked : {false, true}) {
                auto eval = [&](std::uint8_t b) {
                    return eval_or(*tables1, b, masked) || eval_or(*tables2, b, masked);
                };
                if (validate(accept, eval)) {
                    classifier.masked_ = masked;
                    return classifier;
                }
            }
            return std::nullopt;
        }
        case Method::kNaive:
            classifier.values_ = accepted_values(accept);
            return classifier;
    }
    return std::nullopt;
}

std::uint64_t RawClassifier::run(const simd::Kernels& kernels,
                                 const std::uint8_t* block) const
{
    switch (method_) {
        case Method::kEq:
            return (masked_ ? kernels.classify_eq_masked : kernels.classify_eq)(
                block, tables_[0].ltab.data(), tables_[0].utab.data());
        case Method::kOr8:
            return (masked_ ? kernels.classify_or_masked : kernels.classify_or)(
                block, tables_[0].ltab.data(), tables_[0].utab.data());
        case Method::kGeneral: {
            auto classify = masked_ ? kernels.classify_or_masked : kernels.classify_or;
            return classify(block, tables_[0].ltab.data(), tables_[0].utab.data()) |
                   classify(block, tables_[1].ltab.data(), tables_[1].utab.data());
        }
        case Method::kNaive: {
            std::uint64_t mask = 0;
            for (std::uint8_t value : values_) {
                mask |= kernels.eq_mask(block, value);
            }
            return mask;
        }
    }
    return 0;
}

}  // namespace descend::classify
