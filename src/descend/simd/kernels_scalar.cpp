/**
 * @file
 * Portable reference implementations of the block kernels.
 *
 * These are written as straightforward per-byte loops so that they are
 * obviously equivalent to the definitions in Section 4.1 of the paper; the
 * differential tests pin the AVX2 kernels against them. GCC auto-vectorizes
 * the loops with baseline SSE2, so even the "scalar" pipeline is usable.
 *
 * The lookup classifications deliberately emulate the x86 shuffle rule that
 * an index byte with its most significant bit set yields 0, so that scalar
 * and AVX2 classification are bit-identical on arbitrary (non-ASCII) input.
 */
#include <cstdint>

#include "descend/simd/dispatch.h"
#include "descend/util/bits.h"

namespace descend::simd {
namespace {

std::uint64_t eq_mask_scalar(const std::uint8_t* block, std::uint8_t value)
{
    std::uint64_t mask = 0;
    for (std::size_t i = 0; i < kBlockSize; ++i) {
        mask |= static_cast<std::uint64_t>(block[i] == value) << i;
    }
    return mask;
}

std::uint64_t classify_eq_scalar(const std::uint8_t* block, const std::uint8_t* ltab,
                                 const std::uint8_t* utab)
{
    std::uint64_t mask = 0;
    for (std::size_t i = 0; i < kBlockSize; ++i) {
        std::uint8_t byte = block[i];
        std::uint8_t lower = (byte & 0x80) ? 0 : ltab[byte & 0x0f];
        std::uint8_t upper = utab[byte >> 4];
        mask |= static_cast<std::uint64_t>(lower == upper) << i;
    }
    return mask;
}

std::uint64_t classify_or_scalar(const std::uint8_t* block, const std::uint8_t* ltab,
                                 const std::uint8_t* utab)
{
    std::uint64_t mask = 0;
    for (std::size_t i = 0; i < kBlockSize; ++i) {
        std::uint8_t byte = block[i];
        std::uint8_t lower = (byte & 0x80) ? 0 : ltab[byte & 0x0f];
        std::uint8_t upper = utab[byte >> 4];
        mask |= static_cast<std::uint64_t>((lower | upper) == 0xff) << i;
    }
    return mask;
}

std::uint64_t classify_eq_masked_scalar(const std::uint8_t* block,
                                        const std::uint8_t* ltab,
                                        const std::uint8_t* utab)
{
    std::uint64_t mask = 0;
    for (std::size_t i = 0; i < kBlockSize; ++i) {
        std::uint8_t byte = block[i];
        mask |= static_cast<std::uint64_t>(ltab[byte & 0x0f] == utab[byte >> 4]) << i;
    }
    return mask;
}

std::uint64_t classify_or_masked_scalar(const std::uint8_t* block,
                                        const std::uint8_t* ltab,
                                        const std::uint8_t* utab)
{
    std::uint64_t mask = 0;
    for (std::size_t i = 0; i < kBlockSize; ++i) {
        std::uint8_t byte = block[i];
        mask |= static_cast<std::uint64_t>((ltab[byte & 0x0f] | utab[byte >> 4]) ==
                                           0xff)
                << i;
    }
    return mask;
}

std::uint64_t prefix_xor_scalar(std::uint64_t mask)
{
    return bits::prefix_xor(mask);
}

}  // namespace

const Kernels& scalar_kernels() noexcept
{
    static const Kernels kernels = {
        Level::scalar,
        "scalar",
        eq_mask_scalar,
        classify_eq_scalar,
        classify_or_scalar,
        classify_eq_masked_scalar,
        classify_or_masked_scalar,
        prefix_xor_scalar,
    };
    return kernels;
}

}  // namespace descend::simd
