/**
 * @file
 * Portable reference implementations of the block kernels.
 *
 * These are written as straightforward per-byte loops so that they are
 * obviously equivalent to the definitions in Section 4.1 of the paper; the
 * differential tests pin the AVX2 kernels against them. GCC auto-vectorizes
 * the loops with baseline SSE2, so even the "scalar" pipeline is usable.
 *
 * The lookup classifications deliberately emulate the x86 shuffle rule that
 * an index byte with its most significant bit set yields 0, so that scalar
 * and AVX2 classification are bit-identical on arbitrary (non-ASCII) input.
 */
#include <cstdint>

#include "descend/simd/dispatch.h"
#include "descend/util/bits.h"

namespace descend::simd {
namespace {

std::uint64_t eq_mask_scalar(const std::uint8_t* block, std::uint8_t value)
{
    std::uint64_t mask = 0;
    for (std::size_t i = 0; i < kBlockSize; ++i) {
        mask |= static_cast<std::uint64_t>(block[i] == value) << i;
    }
    return mask;
}

std::uint64_t classify_eq_scalar(const std::uint8_t* block, const std::uint8_t* ltab,
                                 const std::uint8_t* utab)
{
    std::uint64_t mask = 0;
    for (std::size_t i = 0; i < kBlockSize; ++i) {
        std::uint8_t byte = block[i];
        std::uint8_t lower = (byte & 0x80) ? 0 : ltab[byte & 0x0f];
        std::uint8_t upper = utab[byte >> 4];
        mask |= static_cast<std::uint64_t>(lower == upper) << i;
    }
    return mask;
}

std::uint64_t classify_or_scalar(const std::uint8_t* block, const std::uint8_t* ltab,
                                 const std::uint8_t* utab)
{
    std::uint64_t mask = 0;
    for (std::size_t i = 0; i < kBlockSize; ++i) {
        std::uint8_t byte = block[i];
        std::uint8_t lower = (byte & 0x80) ? 0 : ltab[byte & 0x0f];
        std::uint8_t upper = utab[byte >> 4];
        mask |= static_cast<std::uint64_t>((lower | upper) == 0xff) << i;
    }
    return mask;
}

std::uint64_t classify_eq_masked_scalar(const std::uint8_t* block,
                                        const std::uint8_t* ltab,
                                        const std::uint8_t* utab)
{
    std::uint64_t mask = 0;
    for (std::size_t i = 0; i < kBlockSize; ++i) {
        std::uint8_t byte = block[i];
        mask |= static_cast<std::uint64_t>(ltab[byte & 0x0f] == utab[byte >> 4]) << i;
    }
    return mask;
}

std::uint64_t classify_or_masked_scalar(const std::uint8_t* block,
                                        const std::uint8_t* ltab,
                                        const std::uint8_t* utab)
{
    std::uint64_t mask = 0;
    for (std::size_t i = 0; i < kBlockSize; ++i) {
        std::uint8_t byte = block[i];
        mask |= static_cast<std::uint64_t>((ltab[byte & 0x0f] | utab[byte >> 4]) ==
                                           0xff)
                << i;
    }
    return mask;
}

std::uint64_t prefix_xor_scalar(std::uint64_t mask)
{
    return bits::prefix_xor(mask);
}

/**
 * Reference batched classifier: one pass over each byte computing every raw
 * character mask, then the serial quote/escape carry threading. All SIMD
 * tiers are pinned bit-for-bit against this implementation.
 */
void classify_batch_scalar(const std::uint8_t* blocks, BatchCarry& carry,
                           BlockMasks* out)
{
    for (std::size_t b = 0; b < kBatchBlocks; ++b) {
        const std::uint8_t* block = blocks + b * kBlockSize;
        std::uint64_t backslashes = 0;
        std::uint64_t quotes = 0;
        std::uint64_t open_braces = 0;
        std::uint64_t close_braces = 0;
        std::uint64_t open_brackets = 0;
        std::uint64_t close_brackets = 0;
        std::uint64_t commas = 0;
        std::uint64_t colons = 0;
        for (std::size_t i = 0; i < kBlockSize; ++i) {
            std::uint8_t byte = block[i];
            std::uint64_t bit = 1ULL << i;
            backslashes |= byte == '\\' ? bit : 0;
            quotes |= byte == '"' ? bit : 0;
            open_braces |= byte == '{' ? bit : 0;
            close_braces |= byte == '}' ? bit : 0;
            open_brackets |= byte == '[' ? bit : 0;
            close_brackets |= byte == ']' ? bit : 0;
            commas |= byte == ',' ? bit : 0;
            colons |= byte == ':' ? bit : 0;
        }

        BlockMasks& masks = out[b];
        masks.entry_escaped = carry.escape;
        masks.entry_in_string = carry.in_string;

        bool carry_out = false;
        std::uint64_t escaped = bits::find_escaped(backslashes, carry.escape, carry_out);
        carry.escape = carry_out;

        masks.unescaped_quotes = quotes & ~escaped;
        masks.in_string = bits::prefix_xor(masks.unescaped_quotes) ^ carry.in_string;
        // Sign-extend the top bit: all-ones iff this block ends inside a string.
        carry.in_string = static_cast<std::uint64_t>(
            static_cast<std::int64_t>(masks.in_string) >> 63);

        masks.open_braces = open_braces;
        masks.close_braces = close_braces;
        masks.open_brackets = open_brackets;
        masks.close_brackets = close_brackets;
        masks.commas = commas;
        masks.colons = colons;
    }
}

}  // namespace

const Kernels& scalar_kernels() noexcept
{
    static const Kernels kernels = {
        Level::scalar,
        "scalar",
        eq_mask_scalar,
        classify_eq_scalar,
        classify_or_scalar,
        classify_eq_masked_scalar,
        classify_or_masked_scalar,
        prefix_xor_scalar,
        classify_batch_scalar,
    };
    return kernels;
}

}  // namespace descend::simd
