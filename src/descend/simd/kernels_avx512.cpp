/**
 * @file
 * AVX-512 implementations of the block kernels.
 *
 * This translation unit is compiled with -mavx512f -mavx512bw -mavx512vl
 * -mavx512dq -mvpclmulqdq and must only be entered after
 * simd::avx512_available() confirmed hardware support; the dispatcher
 * guarantees that. Each 64-byte block is exactly one ZMM register, so byte
 * comparisons produce the 64-bit position mask directly (no movemask step),
 * and bit tests come for free via vptestmb.
 *
 * classify_batch additionally uses VPCLMULQDQ to run four prefix-XORs at
 * once: the per-block unescaped-quote words are packed into the low quadword
 * of each 128-bit lane and carry-less-multiplied by all-ones in a single
 * instruction per half-batch (Section 4.2's CLMUL trick, widened).
 */
#include <immintrin.h>

#include <cstdint>

#include "descend/simd/dispatch.h"
#include "descend/util/bits.h"

// GCC's unmasked AVX-512 intrinsics expand through _mm512_undefined_epi32
// (an explicit don't-care operand for the masked builtin underneath), which
// -Wuninitialized flags inside the system header once inlining kicks in.
#pragma GCC diagnostic ignored "-Wuninitialized"

namespace descend::simd {
namespace {

inline __m512i load_block(const std::uint8_t* ptr)
{
    return _mm512_loadu_si512(reinterpret_cast<const void*>(ptr));
}

std::uint64_t eq_mask_avx512(const std::uint8_t* block, std::uint8_t value)
{
    __m512i needle = _mm512_set1_epi8(static_cast<char>(value));
    return _mm512_cmpeq_epi8_mask(load_block(block), needle);
}

inline __m512i broadcast_table(const std::uint8_t* table)
{
    __m128i t = _mm_loadu_si128(reinterpret_cast<const __m128i*>(table));
    return _mm512_broadcast_i32x4(t);
}

/** shiftright_epi8 simulated by a 16-bit shift plus nibble mask (Sec. 4.1). */
inline __m512i upper_nibbles(__m512i src)
{
    return _mm512_and_si512(_mm512_srli_epi16(src, 4), _mm512_set1_epi8(0x0f));
}

inline __m512i lower_nibbles(__m512i src)
{
    return _mm512_and_si512(src, _mm512_set1_epi8(0x0f));
}

std::uint64_t classify_eq_avx512(const std::uint8_t* block, const std::uint8_t* ltab,
                                 const std::uint8_t* utab)
{
    __m512i lt = broadcast_table(ltab);
    __m512i ut = broadcast_table(utab);
    __m512i src = load_block(block);
    return _mm512_cmpeq_epi8_mask(_mm512_shuffle_epi8(lt, src),
                                  _mm512_shuffle_epi8(ut, upper_nibbles(src)));
}

std::uint64_t classify_or_avx512(const std::uint8_t* block, const std::uint8_t* ltab,
                                 const std::uint8_t* utab)
{
    __m512i lt = broadcast_table(ltab);
    __m512i ut = broadcast_table(utab);
    __m512i ones = _mm512_set1_epi8(static_cast<char>(0xff));
    __m512i src = load_block(block);
    __m512i combined = _mm512_or_si512(_mm512_shuffle_epi8(lt, src),
                                       _mm512_shuffle_epi8(ut, upper_nibbles(src)));
    return _mm512_cmpeq_epi8_mask(combined, ones);
}

std::uint64_t classify_eq_masked_avx512(const std::uint8_t* block,
                                        const std::uint8_t* ltab,
                                        const std::uint8_t* utab)
{
    __m512i lt = broadcast_table(ltab);
    __m512i ut = broadcast_table(utab);
    __m512i src = load_block(block);
    return _mm512_cmpeq_epi8_mask(_mm512_shuffle_epi8(lt, lower_nibbles(src)),
                                  _mm512_shuffle_epi8(ut, upper_nibbles(src)));
}

std::uint64_t classify_or_masked_avx512(const std::uint8_t* block,
                                        const std::uint8_t* ltab,
                                        const std::uint8_t* utab)
{
    __m512i lt = broadcast_table(ltab);
    __m512i ut = broadcast_table(utab);
    __m512i ones = _mm512_set1_epi8(static_cast<char>(0xff));
    __m512i src = load_block(block);
    __m512i combined =
        _mm512_or_si512(_mm512_shuffle_epi8(lt, lower_nibbles(src)),
                        _mm512_shuffle_epi8(ut, upper_nibbles(src)));
    return _mm512_cmpeq_epi8_mask(combined, ones);
}

std::uint64_t prefix_xor_clmul(std::uint64_t mask)
{
    __m128i value = _mm_set_epi64x(0, static_cast<long long>(mask));
    __m128i all_ones = _mm_set1_epi8(static_cast<char>(0xff));
    __m128i product = _mm_clmulepi64_si128(value, all_ones, 0);
    return static_cast<std::uint64_t>(_mm_cvtsi128_si64(product));
}

/**
 * Prefix-XOR of four mask words in one VPCLMULQDQ: each 128-bit lane of the
 * source holds one word in its low quadword; multiplying by lane-wise
 * all-ones leaves prefix_xor(word) in the low quadword of each lane.
 */
inline void prefix_xor_x4(const std::uint64_t in[4], std::uint64_t out[4])
{
    __m512i packed = _mm512_set_epi64(0, static_cast<long long>(in[3]),  //
                                      0, static_cast<long long>(in[2]),  //
                                      0, static_cast<long long>(in[1]),  //
                                      0, static_cast<long long>(in[0]));
    __m512i product =
        _mm512_clmulepi64_epi128(packed, _mm512_set1_epi64(-1LL), 0x00);
    alignas(64) std::uint64_t lanes[8];
    _mm512_store_si512(reinterpret_cast<void*>(lanes), product);
    out[0] = lanes[0];
    out[1] = lanes[2];
    out[2] = lanes[4];
    out[3] = lanes[6];
}

/**
 * Batched single-load classifier: one ZMM load per block, all masks from
 * vpcmpeqb/vptestmb on the in-register bytes. The case-fold trick from the
 * AVX2 tier finds "any opener"/"any closer" (byte | 0x20 maps '{','[' to
 * '{' and '}',']' to '}'); vptestmb against 0x20 splits brace from bracket.
 * Escape carries are threaded serially (cheap word ops); the eight in-string
 * prefix-XORs run four-at-a-time through VPCLMULQDQ before their serial
 * carry composition.
 */
void classify_batch_avx512(const std::uint8_t* blocks, BatchCarry& carry,
                           BlockMasks* out)
{
    const __m512i quote = _mm512_set1_epi8('"');
    const __m512i backslash = _mm512_set1_epi8('\\');
    const __m512i comma = _mm512_set1_epi8(',');
    const __m512i colon = _mm512_set1_epi8(':');
    const __m512i fold_bit = _mm512_set1_epi8(0x20);
    const __m512i open_folded = _mm512_set1_epi8('{');
    const __m512i close_folded = _mm512_set1_epi8('}');

    std::uint64_t backslashes[kBatchBlocks];
    std::uint64_t quotes[kBatchBlocks];

    for (std::size_t b = 0; b < kBatchBlocks; ++b) {
        __m512i src = load_block(blocks + b * kBlockSize);
        quotes[b] = _mm512_cmpeq_epi8_mask(src, quote);
        backslashes[b] = _mm512_cmpeq_epi8_mask(src, backslash);

        __m512i folded = _mm512_or_si512(src, fold_bit);
        std::uint64_t open_any = _mm512_cmpeq_epi8_mask(folded, open_folded);
        std::uint64_t close_any = _mm512_cmpeq_epi8_mask(folded, close_folded);
        std::uint64_t bit5 = _mm512_test_epi8_mask(src, fold_bit);

        BlockMasks& masks = out[b];
        masks.open_braces = open_any & bit5;
        masks.open_brackets = open_any & ~bit5;
        masks.close_braces = close_any & bit5;
        masks.close_brackets = close_any & ~bit5;
        masks.commas = _mm512_cmpeq_epi8_mask(src, comma);
        masks.colons = _mm512_cmpeq_epi8_mask(src, colon);
    }

    // Serial escape threading over the raw masks (word ops only).
    std::uint64_t unescaped[kBatchBlocks];
    for (std::size_t b = 0; b < kBatchBlocks; ++b) {
        out[b].entry_escaped = carry.escape;
        bool carry_out = false;
        std::uint64_t escaped =
            bits::find_escaped(backslashes[b], carry.escape, carry_out);
        carry.escape = carry_out;
        unescaped[b] = quotes[b] & ~escaped;
        out[b].unescaped_quotes = unescaped[b];
    }

    // Four prefix-XORs per VPCLMULQDQ, then the serial in-string carry.
    std::uint64_t pxor[kBatchBlocks];
    prefix_xor_x4(unescaped, pxor);
    prefix_xor_x4(unescaped + 4, pxor + 4);
    for (std::size_t b = 0; b < kBatchBlocks; ++b) {
        out[b].entry_in_string = carry.in_string;
        out[b].in_string = pxor[b] ^ carry.in_string;
        carry.in_string = static_cast<std::uint64_t>(
            static_cast<std::int64_t>(out[b].in_string) >> 63);
    }
}

}  // namespace

/** Defined here (not in dispatch.cpp) so only this ISA-flagged TU names the
 *  intrinsics; dispatch.cpp picks the table up via this accessor. */
const Kernels& avx512_kernel_table() noexcept
{
    static const Kernels kernels = {
        Level::avx512,
        "avx512",
        eq_mask_avx512,
        classify_eq_avx512,
        classify_or_avx512,
        classify_eq_masked_avx512,
        classify_or_masked_avx512,
        prefix_xor_clmul,
        classify_batch_avx512,
    };
    return kernels;
}

}  // namespace descend::simd
