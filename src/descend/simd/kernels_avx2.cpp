/**
 * @file
 * AVX2 + PCLMUL implementations of the block kernels.
 *
 * This translation unit is compiled with -mavx2 -mpclmul and must only be
 * entered after simd::avx2_available() confirmed hardware support; the
 * dispatcher guarantees that. Each 64-byte block is processed as two
 * 32-byte lanes whose movemasks are concatenated into one u64.
 *
 * classify_eq is the 5-instruction non-overlapping-groups classifier from
 * Section 4.1 of the paper (shift, two shuffles, cmpeq, movemask);
 * classify_or adds one OR for the few-groups case. prefix_xor is a single
 * carry-less multiplication by an all-ones vector (Section 4.2).
 */
#include <immintrin.h>

#include <cstdint>

#include "descend/simd/dispatch.h"

namespace descend::simd {
namespace {

inline __m256i load_half(const std::uint8_t* ptr)
{
    return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ptr));
}

inline std::uint64_t movemask_pair(__m256i lo, __m256i hi)
{
    std::uint32_t low = static_cast<std::uint32_t>(_mm256_movemask_epi8(lo));
    std::uint32_t high = static_cast<std::uint32_t>(_mm256_movemask_epi8(hi));
    return static_cast<std::uint64_t>(high) << 32 | low;
}

std::uint64_t eq_mask_avx2(const std::uint8_t* block, std::uint8_t value)
{
    __m256i needle = _mm256_set1_epi8(static_cast<char>(value));
    __m256i lo = _mm256_cmpeq_epi8(load_half(block), needle);
    __m256i hi = _mm256_cmpeq_epi8(load_half(block + 32), needle);
    return movemask_pair(lo, hi);
}

inline __m256i broadcast_table(const std::uint8_t* table)
{
    __m128i t = _mm_loadu_si128(reinterpret_cast<const __m128i*>(table));
    return _mm256_broadcastsi128_si256(t);
}

/** shiftright_epi8 simulated by a 16-bit shift plus nibble mask (Sec. 4.1). */
inline __m256i upper_nibbles(__m256i src)
{
    return _mm256_and_si256(_mm256_srli_epi16(src, 4), _mm256_set1_epi8(0x0f));
}

std::uint64_t classify_eq_avx2(const std::uint8_t* block, const std::uint8_t* ltab,
                               const std::uint8_t* utab)
{
    __m256i lt = broadcast_table(ltab);
    __m256i ut = broadcast_table(utab);
    __m256i lo = load_half(block);
    __m256i hi = load_half(block + 32);
    __m256i lo_match = _mm256_cmpeq_epi8(_mm256_shuffle_epi8(lt, lo),
                                         _mm256_shuffle_epi8(ut, upper_nibbles(lo)));
    __m256i hi_match = _mm256_cmpeq_epi8(_mm256_shuffle_epi8(lt, hi),
                                         _mm256_shuffle_epi8(ut, upper_nibbles(hi)));
    return movemask_pair(lo_match, hi_match);
}

std::uint64_t classify_or_avx2(const std::uint8_t* block, const std::uint8_t* ltab,
                               const std::uint8_t* utab)
{
    __m256i lt = broadcast_table(ltab);
    __m256i ut = broadcast_table(utab);
    __m256i ones = _mm256_set1_epi8(static_cast<char>(0xff));
    __m256i lo = load_half(block);
    __m256i hi = load_half(block + 32);
    __m256i lo_or = _mm256_or_si256(_mm256_shuffle_epi8(lt, lo),
                                    _mm256_shuffle_epi8(ut, upper_nibbles(lo)));
    __m256i hi_or = _mm256_or_si256(_mm256_shuffle_epi8(lt, hi),
                                    _mm256_shuffle_epi8(ut, upper_nibbles(hi)));
    return movemask_pair(_mm256_cmpeq_epi8(lo_or, ones), _mm256_cmpeq_epi8(hi_or, ones));
}

inline __m256i lower_nibbles(__m256i src)
{
    return _mm256_and_si256(src, _mm256_set1_epi8(0x0f));
}

std::uint64_t classify_eq_masked_avx2(const std::uint8_t* block,
                                      const std::uint8_t* ltab,
                                      const std::uint8_t* utab)
{
    __m256i lt = broadcast_table(ltab);
    __m256i ut = broadcast_table(utab);
    __m256i lo = load_half(block);
    __m256i hi = load_half(block + 32);
    __m256i lo_match =
        _mm256_cmpeq_epi8(_mm256_shuffle_epi8(lt, lower_nibbles(lo)),
                          _mm256_shuffle_epi8(ut, upper_nibbles(lo)));
    __m256i hi_match =
        _mm256_cmpeq_epi8(_mm256_shuffle_epi8(lt, lower_nibbles(hi)),
                          _mm256_shuffle_epi8(ut, upper_nibbles(hi)));
    return movemask_pair(lo_match, hi_match);
}

std::uint64_t classify_or_masked_avx2(const std::uint8_t* block,
                                      const std::uint8_t* ltab,
                                      const std::uint8_t* utab)
{
    __m256i lt = broadcast_table(ltab);
    __m256i ut = broadcast_table(utab);
    __m256i ones = _mm256_set1_epi8(static_cast<char>(0xff));
    __m256i lo = load_half(block);
    __m256i hi = load_half(block + 32);
    __m256i lo_or = _mm256_or_si256(_mm256_shuffle_epi8(lt, lower_nibbles(lo)),
                                    _mm256_shuffle_epi8(ut, upper_nibbles(lo)));
    __m256i hi_or = _mm256_or_si256(_mm256_shuffle_epi8(lt, lower_nibbles(hi)),
                                    _mm256_shuffle_epi8(ut, upper_nibbles(hi)));
    return movemask_pair(_mm256_cmpeq_epi8(lo_or, ones), _mm256_cmpeq_epi8(hi_or, ones));
}

std::uint64_t prefix_xor_clmul(std::uint64_t mask)
{
    __m128i value = _mm_set_epi64x(0, static_cast<long long>(mask));
    __m128i all_ones = _mm_set1_epi8(static_cast<char>(0xff));
    __m128i product = _mm_clmulepi64_si128(value, all_ones, 0);
    return static_cast<std::uint64_t>(_mm_cvtsi128_si64(product));
}

}  // namespace

/** Defined here (not in dispatch.cpp) so only this ISA-flagged TU names the
 *  intrinsics; dispatch.cpp picks the table up via this accessor. */
const Kernels& avx2_kernel_table() noexcept
{
    static const Kernels kernels = {
        Level::avx2,
        "avx2",
        eq_mask_avx2,
        classify_eq_avx2,
        classify_or_avx2,
        classify_eq_masked_avx2,
        classify_or_masked_avx2,
        prefix_xor_clmul,
    };
    return kernels;
}

}  // namespace descend::simd
