/**
 * @file
 * AVX2 + PCLMUL implementations of the block kernels.
 *
 * This translation unit is compiled with -mavx2 -mpclmul and must only be
 * entered after simd::avx2_available() confirmed hardware support; the
 * dispatcher guarantees that. Each 64-byte block is processed as two
 * 32-byte lanes whose movemasks are concatenated into one u64.
 *
 * classify_eq is the 5-instruction non-overlapping-groups classifier from
 * Section 4.1 of the paper (shift, two shuffles, cmpeq, movemask);
 * classify_or adds one OR for the few-groups case. prefix_xor is a single
 * carry-less multiplication by an all-ones vector (Section 4.2).
 */
#include <immintrin.h>

#include <cstdint>

#include "descend/simd/dispatch.h"
#include "descend/util/bits.h"

namespace descend::simd {
namespace {

inline __m256i load_half(const std::uint8_t* ptr)
{
    return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ptr));
}

inline std::uint64_t movemask_pair(__m256i lo, __m256i hi)
{
    std::uint32_t low = static_cast<std::uint32_t>(_mm256_movemask_epi8(lo));
    std::uint32_t high = static_cast<std::uint32_t>(_mm256_movemask_epi8(hi));
    return static_cast<std::uint64_t>(high) << 32 | low;
}

std::uint64_t eq_mask_avx2(const std::uint8_t* block, std::uint8_t value)
{
    __m256i needle = _mm256_set1_epi8(static_cast<char>(value));
    __m256i lo = _mm256_cmpeq_epi8(load_half(block), needle);
    __m256i hi = _mm256_cmpeq_epi8(load_half(block + 32), needle);
    return movemask_pair(lo, hi);
}

inline __m256i broadcast_table(const std::uint8_t* table)
{
    __m128i t = _mm_loadu_si128(reinterpret_cast<const __m128i*>(table));
    return _mm256_broadcastsi128_si256(t);
}

/** shiftright_epi8 simulated by a 16-bit shift plus nibble mask (Sec. 4.1). */
inline __m256i upper_nibbles(__m256i src)
{
    return _mm256_and_si256(_mm256_srli_epi16(src, 4), _mm256_set1_epi8(0x0f));
}

std::uint64_t classify_eq_avx2(const std::uint8_t* block, const std::uint8_t* ltab,
                               const std::uint8_t* utab)
{
    __m256i lt = broadcast_table(ltab);
    __m256i ut = broadcast_table(utab);
    __m256i lo = load_half(block);
    __m256i hi = load_half(block + 32);
    __m256i lo_match = _mm256_cmpeq_epi8(_mm256_shuffle_epi8(lt, lo),
                                         _mm256_shuffle_epi8(ut, upper_nibbles(lo)));
    __m256i hi_match = _mm256_cmpeq_epi8(_mm256_shuffle_epi8(lt, hi),
                                         _mm256_shuffle_epi8(ut, upper_nibbles(hi)));
    return movemask_pair(lo_match, hi_match);
}

std::uint64_t classify_or_avx2(const std::uint8_t* block, const std::uint8_t* ltab,
                               const std::uint8_t* utab)
{
    __m256i lt = broadcast_table(ltab);
    __m256i ut = broadcast_table(utab);
    __m256i ones = _mm256_set1_epi8(static_cast<char>(0xff));
    __m256i lo = load_half(block);
    __m256i hi = load_half(block + 32);
    __m256i lo_or = _mm256_or_si256(_mm256_shuffle_epi8(lt, lo),
                                    _mm256_shuffle_epi8(ut, upper_nibbles(lo)));
    __m256i hi_or = _mm256_or_si256(_mm256_shuffle_epi8(lt, hi),
                                    _mm256_shuffle_epi8(ut, upper_nibbles(hi)));
    return movemask_pair(_mm256_cmpeq_epi8(lo_or, ones), _mm256_cmpeq_epi8(hi_or, ones));
}

inline __m256i lower_nibbles(__m256i src)
{
    return _mm256_and_si256(src, _mm256_set1_epi8(0x0f));
}

std::uint64_t classify_eq_masked_avx2(const std::uint8_t* block,
                                      const std::uint8_t* ltab,
                                      const std::uint8_t* utab)
{
    __m256i lt = broadcast_table(ltab);
    __m256i ut = broadcast_table(utab);
    __m256i lo = load_half(block);
    __m256i hi = load_half(block + 32);
    __m256i lo_match =
        _mm256_cmpeq_epi8(_mm256_shuffle_epi8(lt, lower_nibbles(lo)),
                          _mm256_shuffle_epi8(ut, upper_nibbles(lo)));
    __m256i hi_match =
        _mm256_cmpeq_epi8(_mm256_shuffle_epi8(lt, lower_nibbles(hi)),
                          _mm256_shuffle_epi8(ut, upper_nibbles(hi)));
    return movemask_pair(lo_match, hi_match);
}

std::uint64_t classify_or_masked_avx2(const std::uint8_t* block,
                                      const std::uint8_t* ltab,
                                      const std::uint8_t* utab)
{
    __m256i lt = broadcast_table(ltab);
    __m256i ut = broadcast_table(utab);
    __m256i ones = _mm256_set1_epi8(static_cast<char>(0xff));
    __m256i lo = load_half(block);
    __m256i hi = load_half(block + 32);
    __m256i lo_or = _mm256_or_si256(_mm256_shuffle_epi8(lt, lower_nibbles(lo)),
                                    _mm256_shuffle_epi8(ut, upper_nibbles(lo)));
    __m256i hi_or = _mm256_or_si256(_mm256_shuffle_epi8(lt, lower_nibbles(hi)),
                                    _mm256_shuffle_epi8(ut, upper_nibbles(hi)));
    return movemask_pair(_mm256_cmpeq_epi8(lo_or, ones), _mm256_cmpeq_epi8(hi_or, ones));
}

std::uint64_t prefix_xor_clmul(std::uint64_t mask)
{
    __m128i value = _mm_set_epi64x(0, static_cast<long long>(mask));
    __m128i all_ones = _mm_set1_epi8(static_cast<char>(0xff));
    __m128i product = _mm_clmulepi64_si128(value, all_ones, 0);
    return static_cast<std::uint64_t>(_mm_cvtsi128_si64(product));
}

/**
 * Batched single-load classifier. Each block's two 32-byte lanes are loaded
 * once and every character mask is derived while they sit in registers:
 * four cmpeqs for quote/backslash/comma/colon, then the case-fold trick for
 * the brackets — t = byte | 0x20 maps '{'/'[' to '{' and '}'/']' to '}',
 * so two more cmpeqs find "any opener"/"any closer", and bit 5 of the
 * original byte (moved to the movemask-visible bit 7 by a 16-bit left
 * shift of 2; the cross-byte shift-ins only reach bits 0-1) discriminates
 * brace from bracket. Quote/escape carries are threaded serially.
 */
void classify_batch_avx2(const std::uint8_t* blocks, BatchCarry& carry,
                         BlockMasks* out)
{
    const __m256i quote = _mm256_set1_epi8('"');
    const __m256i backslash = _mm256_set1_epi8('\\');
    const __m256i comma = _mm256_set1_epi8(',');
    const __m256i colon = _mm256_set1_epi8(':');
    const __m256i fold_bit = _mm256_set1_epi8(0x20);
    const __m256i open_folded = _mm256_set1_epi8('{');
    const __m256i close_folded = _mm256_set1_epi8('}');

    for (std::size_t b = 0; b < kBatchBlocks; ++b) {
        const std::uint8_t* block = blocks + b * kBlockSize;
        __m256i lo = load_half(block);
        __m256i hi = load_half(block + 32);

        std::uint64_t quotes = movemask_pair(_mm256_cmpeq_epi8(lo, quote),
                                             _mm256_cmpeq_epi8(hi, quote));
        std::uint64_t backslashes = movemask_pair(_mm256_cmpeq_epi8(lo, backslash),
                                                  _mm256_cmpeq_epi8(hi, backslash));
        std::uint64_t commas = movemask_pair(_mm256_cmpeq_epi8(lo, comma),
                                             _mm256_cmpeq_epi8(hi, comma));
        std::uint64_t colons = movemask_pair(_mm256_cmpeq_epi8(lo, colon),
                                             _mm256_cmpeq_epi8(hi, colon));

        __m256i lo_folded = _mm256_or_si256(lo, fold_bit);
        __m256i hi_folded = _mm256_or_si256(hi, fold_bit);
        std::uint64_t open_any =
            movemask_pair(_mm256_cmpeq_epi8(lo_folded, open_folded),
                          _mm256_cmpeq_epi8(hi_folded, open_folded));
        std::uint64_t close_any =
            movemask_pair(_mm256_cmpeq_epi8(lo_folded, close_folded),
                          _mm256_cmpeq_epi8(hi_folded, close_folded));
        std::uint64_t bit5 = movemask_pair(_mm256_slli_epi16(lo, 2),
                                           _mm256_slli_epi16(hi, 2));

        BlockMasks& masks = out[b];
        masks.entry_escaped = carry.escape;
        masks.entry_in_string = carry.in_string;

        bool carry_out = false;
        std::uint64_t escaped =
            bits::find_escaped(backslashes, carry.escape, carry_out);
        carry.escape = carry_out;

        masks.unescaped_quotes = quotes & ~escaped;
        masks.in_string = prefix_xor_clmul(masks.unescaped_quotes) ^ carry.in_string;
        carry.in_string = static_cast<std::uint64_t>(
            static_cast<std::int64_t>(masks.in_string) >> 63);

        masks.open_braces = open_any & bit5;
        masks.open_brackets = open_any & ~bit5;
        masks.close_braces = close_any & bit5;
        masks.close_brackets = close_any & ~bit5;
        masks.commas = commas;
        masks.colons = colons;
    }
}

}  // namespace

/** Defined here (not in dispatch.cpp) so only this ISA-flagged TU names the
 *  intrinsics; dispatch.cpp picks the table up via this accessor. */
const Kernels& avx2_kernel_table() noexcept
{
    static const Kernels kernels = {
        Level::avx2,
        "avx2",
        eq_mask_avx2,
        classify_eq_avx2,
        classify_or_avx2,
        classify_eq_masked_avx2,
        classify_or_masked_avx2,
        prefix_xor_clmul,
        classify_batch_avx2,
    };
    return kernels;
}

}  // namespace descend::simd
