/**
 * @file
 * Runtime-dispatched SIMD kernel table.
 *
 * Every classifier in the pipeline (Section 4 of the paper) is expressed in
 * terms of a handful of 64-byte-block kernels. Two implementations exist:
 *
 *  - scalar: portable per-byte/SWAR code, always compiled. It doubles as
 *    the differential-testing reference and as the ablation baseline for
 *    the "SIMD vs scalar pipeline" experiment.
 *  - avx2: AVX2 + PCLMUL intrinsics, compiled in a separate translation
 *    unit with the matching ISA flags and selected only after a CPUID
 *    check, mirroring rsonpath's target-feature gating.
 *
 * All block kernels operate on exactly 64 input bytes (one bitmask word).
 * Blocks need not be aligned; engine input buffers come from PaddedString,
 * which guarantees at least 64 readable bytes past the logical end.
 */
#pragma once

#include <cstddef>
#include <cstdint>

namespace descend::simd {

/** Size in bytes of the unit block all kernels operate on. */
inline constexpr std::size_t kBlockSize = 64;

enum class Level {
    scalar,
    avx2,
};

/**
 * The kernel function table.
 *
 * classify_eq implements the non-overlapping-groups method of Section 4.1:
 * a byte is accepted iff ltab[lower nibble] == utab[upper nibble], with the
 * x86 shuffle semantics that a set MSB forces the lower-nibble lookup to 0.
 *
 * classify_or implements the few-groups (<= 8) method: a byte is accepted
 * iff (ltab[lower] | utab[upper]) == 0xff, same MSB rule.
 */
struct Kernels {
    Level level;
    const char* name;

    /** Bitmask of positions where block[i] == value. */
    std::uint64_t (*eq_mask)(const std::uint8_t* block, std::uint8_t value);

    /** Non-overlapping-groups classification (Section 4.1, 5 SIMD ops). */
    std::uint64_t (*classify_eq)(const std::uint8_t* block, const std::uint8_t* ltab,
                                 const std::uint8_t* utab);

    /** Few-groups classification (Section 4.1, 6 SIMD ops). */
    std::uint64_t (*classify_or)(const std::uint8_t* block, const std::uint8_t* ltab,
                                 const std::uint8_t* utab);

    /**
     * Variants that zero the upper nibbles of the lower-lookup index (the
     * paper's footnote 2), one extra SIMD op each. Required whenever the
     * predicate involves bytes >= 0x80, where the unmasked shuffle would
     * force the lower lookup to zero.
     */
    std::uint64_t (*classify_eq_masked)(const std::uint8_t* block,
                                        const std::uint8_t* ltab,
                                        const std::uint8_t* utab);
    std::uint64_t (*classify_or_masked)(const std::uint8_t* block,
                                        const std::uint8_t* ltab,
                                        const std::uint8_t* utab);

    /** Prefix XOR over mask bits (CLMUL by all-ones on the AVX2 path). */
    std::uint64_t (*prefix_xor)(std::uint64_t mask);
};

/** The portable reference kernels. */
const Kernels& scalar_kernels() noexcept;

/**
 * The AVX2 kernels if compiled in and supported by this CPU; otherwise the
 * scalar kernels.
 */
const Kernels& avx2_kernels() noexcept;

/** True when AVX2+PCLMUL kernels are compiled in and the CPU supports them. */
bool avx2_available() noexcept;

/** Kernels for the requested level (falls back to scalar if unavailable). */
const Kernels& kernels_for(Level level) noexcept;

/** The best kernels available on this machine. */
const Kernels& best_kernels() noexcept;

}  // namespace descend::simd
