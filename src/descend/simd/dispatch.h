/**
 * @file
 * Runtime-dispatched SIMD kernel table.
 *
 * Every classifier in the pipeline (Section 4 of the paper) is expressed in
 * terms of a handful of 64-byte-block kernels. Three implementations exist:
 *
 *  - scalar: portable per-byte/SWAR code, always compiled. It doubles as
 *    the differential-testing reference and as the ablation baseline for
 *    the "SIMD vs scalar pipeline" experiment.
 *  - avx2: AVX2 + PCLMUL intrinsics, compiled in a separate translation
 *    unit with the matching ISA flags and selected only after a CPUID
 *    check, mirroring rsonpath's target-feature gating.
 *  - avx512: AVX-512 (F/BW/VL/DQ) + VPCLMULQDQ intrinsics, one 64-byte
 *    vector per block so comparisons produce bitmask words directly,
 *    again CPUID-gated in its own translation unit.
 *
 * All block kernels operate on exactly 64 input bytes (one bitmask word).
 * The batched kernel operates on kBatchBlocks consecutive blocks at once.
 * Blocks need not be aligned; engine input buffers come from PaddedString,
 * which guarantees at least kBatchSize readable bytes past the logical end.
 */
#pragma once

#include <cstddef>
#include <cstdint>

namespace descend::simd {

/** Size in bytes of the unit block all kernels operate on. */
inline constexpr std::size_t kBlockSize = 64;

/** Number of consecutive blocks one classify_batch call processes. */
inline constexpr std::size_t kBatchBlocks = 8;

/** Size in bytes of one classification batch (the single-load unit). */
inline constexpr std::size_t kBatchSize = kBatchBlocks * kBlockSize;

enum class Level {
    scalar,
    avx2,
    avx512,
};

/**
 * Every mask the pipeline needs for one 64-byte block, computed from a
 * single load of the block's bytes (Langdale & Lemire's design point: keep
 * the bytes in registers across all derived masks instead of re-loading
 * them per primitive).
 *
 * Commas and colons are emitted as separate masks rather than folded into
 * one "structural" word so that consumers can toggle them on and off (the
 * paper's depth-vs-structural pipeline switch) by recomposing masks —
 * without ever re-classifying the block.
 *
 * entry_escaped / entry_in_string record the quote-carry state *at the
 * start* of the block, which is exactly what the stop/resume protocol
 * needs to reconstruct a QuoteState on a block boundary.
 */
struct BlockMasks {
    std::uint64_t unescaped_quotes;
    std::uint64_t in_string;
    std::uint64_t open_braces;
    std::uint64_t close_braces;
    std::uint64_t open_brackets;
    std::uint64_t close_brackets;
    std::uint64_t commas;
    std::uint64_t colons;
    /** All-ones if the block *starts* inside a string, else zero. */
    std::uint64_t entry_in_string;
    /** True if the previous block ended with an active (odd-run) backslash. */
    bool entry_escaped;
};

/** Quote/escape state threaded through consecutive classify_batch calls. */
struct BatchCarry {
    bool escape = false;
    std::uint64_t in_string = 0;  // all-ones or zero
};

/**
 * The kernel function table.
 *
 * classify_eq implements the non-overlapping-groups method of Section 4.1:
 * a byte is accepted iff ltab[lower nibble] == utab[upper nibble], with the
 * x86 shuffle semantics that a set MSB forces the lower-nibble lookup to 0.
 *
 * classify_or implements the few-groups (<= 8) method: a byte is accepted
 * iff (ltab[lower] | utab[upper]) == 0xff, same MSB rule.
 */
struct Kernels {
    Level level;
    const char* name;

    /** Bitmask of positions where block[i] == value. */
    std::uint64_t (*eq_mask)(const std::uint8_t* block, std::uint8_t value);

    /** Non-overlapping-groups classification (Section 4.1, 5 SIMD ops). */
    std::uint64_t (*classify_eq)(const std::uint8_t* block, const std::uint8_t* ltab,
                                 const std::uint8_t* utab);

    /** Few-groups classification (Section 4.1, 6 SIMD ops). */
    std::uint64_t (*classify_or)(const std::uint8_t* block, const std::uint8_t* ltab,
                                 const std::uint8_t* utab);

    /**
     * Variants that zero the upper nibbles of the lower-lookup index (the
     * paper's footnote 2), one extra SIMD op each. Required whenever the
     * predicate involves bytes >= 0x80, where the unmasked shuffle would
     * force the lower lookup to zero.
     */
    std::uint64_t (*classify_eq_masked)(const std::uint8_t* block,
                                        const std::uint8_t* ltab,
                                        const std::uint8_t* utab);
    std::uint64_t (*classify_or_masked)(const std::uint8_t* block,
                                        const std::uint8_t* ltab,
                                        const std::uint8_t* utab);

    /** Prefix XOR over mask bits (CLMUL by all-ones on the SIMD paths). */
    std::uint64_t (*prefix_xor)(std::uint64_t mask);

    /**
     * Batched single-load classification: reads kBatchSize consecutive
     * bytes starting at @p blocks (each byte exactly once) and fills
     * @p out[0..kBatchBlocks) with every per-block mask. The quote and
     * escape carries are threaded through the batch internally; @p carry
     * is consumed for block 0 and left holding the state after the last
     * block, so back-to-back calls classify a contiguous stream.
     */
    void (*classify_batch)(const std::uint8_t* blocks, BatchCarry& carry,
                           BlockMasks* out);
};

/** The portable reference kernels. */
const Kernels& scalar_kernels() noexcept;

/**
 * The AVX2 kernels if compiled in and supported by this CPU; otherwise the
 * scalar kernels. Purely hardware-gated (ignores the env override) so
 * differential tests always exercise the real tier.
 */
const Kernels& avx2_kernels() noexcept;

/** Same contract for the AVX-512 kernels (falls back to scalar). */
const Kernels& avx512_kernels() noexcept;

/** True when AVX2+PCLMUL kernels are compiled in and the CPU supports them. */
bool avx2_available() noexcept;

/**
 * True when the AVX-512 kernels are compiled in and the CPU supports the
 * full required set: AVX-512 F/BW/VL/DQ plus VPCLMULQDQ (Ice Lake+).
 * Earlier AVX-512 hardware (Skylake-X) falls back to the AVX2 tier.
 */
bool avx512_available() noexcept;

/**
 * Kernels for the requested level. Falls back to the best available lower
 * tier if the hardware lacks the requested one, and additionally honours
 * the DESCEND_SIMD_LEVEL env var as a hard *cap* (e.g. =scalar forces the
 * scalar tier everywhere this accessor is used).
 */
const Kernels& kernels_for(Level level) noexcept;

/** The best kernels available on this machine (also capped by the env var). */
const Kernels& best_kernels() noexcept;

/** Stable lowercase name for a level ("scalar", "avx2", "avx512"). */
const char* level_name(Level level) noexcept;

/** Parses "scalar" / "avx2" / "avx512" into @p out. False on junk. */
bool parse_level(const char* text, Level& out) noexcept;

/**
 * The level engines should use by default: the best hardware-supported
 * tier, capped by DESCEND_SIMD_LEVEL when set (unparseable values are
 * ignored). This is what EngineOptions defaults to.
 */
Level default_level() noexcept;

}  // namespace descend::simd
