#include "descend/simd/dispatch.h"

#include <cstdlib>
#include <cstring>

namespace descend::simd {

#if DESCEND_HAVE_AVX2_KERNELS
// Implemented in kernels_avx2.cpp (compiled with -mavx2 -mpclmul).
const Kernels& avx2_kernel_table() noexcept;
#endif
#if DESCEND_HAVE_AVX512_KERNELS
// Implemented in kernels_avx512.cpp (compiled with -mavx512* -mvpclmulqdq).
const Kernels& avx512_kernel_table() noexcept;
#endif

bool avx2_available() noexcept
{
#if DESCEND_HAVE_AVX2_KERNELS
    static const bool available =
        __builtin_cpu_supports("avx2") && __builtin_cpu_supports("pclmul");
    return available;
#else
    return false;
#endif
}

bool avx512_available() noexcept
{
#if DESCEND_HAVE_AVX512_KERNELS
    static const bool available =
        __builtin_cpu_supports("avx512f") && __builtin_cpu_supports("avx512bw") &&
        __builtin_cpu_supports("avx512vl") && __builtin_cpu_supports("avx512dq") &&
        __builtin_cpu_supports("vpclmulqdq") && __builtin_cpu_supports("pclmul");
    return available;
#else
    return false;
#endif
}

const Kernels& avx2_kernels() noexcept
{
#if DESCEND_HAVE_AVX2_KERNELS
    if (avx2_available()) {
        return avx2_kernel_table();
    }
#endif
    return scalar_kernels();
}

const Kernels& avx512_kernels() noexcept
{
#if DESCEND_HAVE_AVX512_KERNELS
    if (avx512_available()) {
        return avx512_kernel_table();
    }
#endif
    return scalar_kernels();
}

const char* level_name(Level level) noexcept
{
    switch (level) {
        case Level::scalar:
            return "scalar";
        case Level::avx2:
            return "avx2";
        case Level::avx512:
            return "avx512";
    }
    return "unknown";
}

bool parse_level(const char* text, Level& out) noexcept
{
    if (text == nullptr) {
        return false;
    }
    if (std::strcmp(text, "scalar") == 0) {
        out = Level::scalar;
        return true;
    }
    if (std::strcmp(text, "avx2") == 0) {
        out = Level::avx2;
        return true;
    }
    if (std::strcmp(text, "avx512") == 0) {
        out = Level::avx512;
        return true;
    }
    return false;
}

namespace {

/** Highest tier DESCEND_SIMD_LEVEL allows; avx512 (no cap) when unset. */
Level env_level_cap() noexcept
{
    static const Level cap = [] {
        Level parsed = Level::avx512;
        parse_level(std::getenv("DESCEND_SIMD_LEVEL"), parsed);
        return parsed;
    }();
    return cap;
}

/** Best hardware tier at or below @p level (ignores the env cap). */
const Kernels& hardware_kernels_for(Level level) noexcept
{
    if (level == Level::avx512 && avx512_available()) {
        return avx512_kernels();
    }
    if (level >= Level::avx2 && avx2_available()) {
        return avx2_kernels();
    }
    return scalar_kernels();
}

}  // namespace

const Kernels& kernels_for(Level level) noexcept
{
    Level capped = level < env_level_cap() ? level : env_level_cap();
    return hardware_kernels_for(capped);
}

const Kernels& best_kernels() noexcept
{
    return kernels_for(Level::avx512);
}

Level default_level() noexcept
{
    return best_kernels().level;
}

}  // namespace descend::simd
