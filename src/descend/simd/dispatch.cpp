#include "descend/simd/dispatch.h"

namespace descend::simd {

#if DESCEND_HAVE_AVX2_KERNELS
// Implemented in kernels_avx2.cpp (compiled with -mavx2 -mpclmul).
const Kernels& avx2_kernel_table() noexcept;
#endif

bool avx2_available() noexcept
{
#if DESCEND_HAVE_AVX2_KERNELS
    static const bool available =
        __builtin_cpu_supports("avx2") && __builtin_cpu_supports("pclmul");
    return available;
#else
    return false;
#endif
}

const Kernels& avx2_kernels() noexcept
{
#if DESCEND_HAVE_AVX2_KERNELS
    if (avx2_available()) {
        return avx2_kernel_table();
    }
#endif
    return scalar_kernels();
}

const Kernels& kernels_for(Level level) noexcept
{
    if (level == Level::avx2) {
        return avx2_kernels();
    }
    return scalar_kernels();
}

const Kernels& best_kernels() noexcept
{
    return avx2_kernels();
}

}  // namespace descend::simd
