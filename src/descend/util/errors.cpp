#include "descend/util/errors.h"

namespace descend {
namespace {

std::string with_position(const std::string& message, std::size_t position)
{
    return message + " (at byte " + std::to_string(position) + ")";
}

}  // namespace

QueryError::QueryError(const std::string& message, std::size_t position)
    : Error(with_position(message, position)), position_(position)
{
}

ParseError::ParseError(const std::string& message, std::size_t position,
                       StatusCode code)
    : Error(with_position(message, position)), position_(position), code_(code)
{
}

ResourceLimitError::ResourceLimitError(const EngineStatus& status)
    : LimitError(to_string(status)), status_(status)
{
}

DocumentError::DocumentError(const EngineStatus& status)
    : Error(to_string(status)), status_(status)
{
}

void raise_status(const EngineStatus& status)
{
    if (status.ok()) {
        return;
    }
    if (status.is_limit()) {
        throw ResourceLimitError(status);
    }
    throw DocumentError(status);
}

}  // namespace descend
