#include "descend/util/errors.h"

namespace descend {
namespace {

std::string with_position(const std::string& message, std::size_t position)
{
    return message + " (at byte " + std::to_string(position) + ")";
}

}  // namespace

QueryError::QueryError(const std::string& message, std::size_t position)
    : Error(with_position(message, position)), position_(position)
{
}

ParseError::ParseError(const std::string& message, std::size_t position)
    : Error(with_position(message, position)), position_(position)
{
}

}  // namespace descend
