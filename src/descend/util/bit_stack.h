/**
 * @file
 * A stack of single bits, one per currently open JSON element, packed 64 to
 * a word with inline storage for the first 64 * kInlineWords levels.
 *
 * The engine uses it to remember whether each open element is an object or
 * an array, which the comma/colon toggling of Section 3.4 needs after any
 * closing character — including closings that pop no depth-stack frame,
 * where the sparse depth-stack alone cannot answer the question (see the
 * "Deviations" section of DESIGN.md). Memory stays linear in document depth
 * at one bit per level, preserving the sparse-stack design goal.
 */
#pragma once

#include <cassert>
#include <cstdint>

#include "descend/util/inline_vector.h"

namespace descend {

class BitStack {
public:
    /** Inline capacity: 4 words = 256 nesting levels before heap spill. */
    static constexpr std::size_t kInlineWords = 4;

    BitStack() { words_.push_back(0); }

    bool empty() const noexcept { return size_ == 0; }
    std::size_t size() const noexcept { return size_; }

    void push(bool bit)
    {
        std::size_t word = size_ / 64;
        std::size_t offset = size_ % 64;
        if (word == words_.size()) {
            words_.push_back(0);
        }
        std::uint64_t mask = 1ULL << offset;
        if (bit) {
            words_[word] |= mask;
        } else {
            words_[word] &= ~mask;
        }
        ++size_;
    }

    void pop() noexcept
    {
        assert(size_ > 0);
        --size_;
    }

    /** The most recently pushed bit. */
    bool top() const noexcept
    {
        assert(size_ > 0);
        return bit_at(size_ - 1);
    }

    /** The bit at @p index, counted from the bottom of the stack. */
    bool bit_at(std::size_t index) const noexcept
    {
        assert(index < size_);
        return (words_[index / 64] >> (index % 64)) & 1;
    }

    void clear() noexcept { size_ = 0; }

private:
    InlineVector<std::uint64_t, kInlineWords> words_;
    std::size_t size_ = 0;
};

}  // namespace descend
