/**
 * @file
 * Run governance: deadlines and cooperative cancellation.
 *
 * A RunBudget pairs a steady-clock deadline with an externally settable
 * CancelToken and travels through EngineOptions into every engine. The
 * batched engines check it exactly once per BatchedBlockStream refill —
 * one branch (plus, for an *active* budget, one clock read) per
 * simd::kBatchSize = 512 input bytes — so the detection latency is
 * bounded by one batch of classification work and the hot loop pays
 * nothing when no budget is set (the default RunBudget is inactive and
 * the stream never dereferences it). The scalar baselines poll through a
 * BudgetGate at an equivalent stride of their own event loops.
 *
 * A violated budget surfaces as a regular EngineStatus — kDeadlineExceeded
 * or kCancelled with the byte offset of the first unprocessed block — so
 * every caller's error handling (stream executors, CLI, tests) treats
 * governance like any other structured run outcome. See DESIGN.md
 * ("Run governance") for the taxonomy and determinism rules.
 */
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

#include "descend/util/status.h"

namespace descend {

/**
 * An externally settable cancellation flag. The owner keeps the token
 * alive for the duration of every run that references it; cancel() may be
 * called from any thread at any time (relaxed atomics — cancellation is a
 * latency hint, not a synchronization point).
 */
class CancelToken {
public:
    void cancel() noexcept { cancelled_.store(true, std::memory_order_relaxed); }
    void reset() noexcept { cancelled_.store(false, std::memory_order_relaxed); }
    bool cancelled() const noexcept
    {
        return cancelled_.load(std::memory_order_relaxed);
    }

private:
    std::atomic<bool> cancelled_{false};
};

/**
 * The budget of one run: an absolute steady-clock deadline plus an
 * optional CancelToken. Default-constructed means "no governance" —
 * active() is false and exceeded() never trips, which is how every
 * pre-existing call site behaves unchanged.
 */
struct RunBudget {
    using Clock = std::chrono::steady_clock;

    /** Sentinel for "no deadline". */
    static constexpr Clock::time_point kNoDeadline = Clock::time_point::max();

    Clock::time_point deadline = kNoDeadline;
    /** Not owned; must outlive every run using this budget. */
    const CancelToken* cancel = nullptr;

    /** A budget expiring @p ms milliseconds from now. */
    static RunBudget within_ms(std::uint64_t ms,
                               const CancelToken* token = nullptr)
    {
        return {Clock::now() + std::chrono::milliseconds(ms), token};
    }

    /** A budget with no deadline, governed by @p token alone. */
    static RunBudget with_cancel(const CancelToken* token)
    {
        return {kNoDeadline, token};
    }

    /** True when any governance is configured at all. */
    bool active() const noexcept
    {
        return cancel != nullptr || deadline != kNoDeadline;
    }

    /**
     * Polls the budget: kOk while within it, otherwise the violated
     * dimension. Cancellation is checked first (it is cheaper and the
     * stronger, explicit signal).
     */
    StatusCode exceeded() const noexcept
    {
        if (cancel != nullptr && cancel->cancelled()) {
            return StatusCode::kCancelled;
        }
        if (deadline != kNoDeadline && Clock::now() > deadline) {
            return StatusCode::kDeadlineExceeded;
        }
        return StatusCode::kOk;
    }

    /** This budget with its deadline capped at @p other_deadline (keeps
     *  the cancel token) — how a per-record budget nests inside a stream
     *  budget. */
    RunBudget tightened(Clock::time_point other_deadline) const noexcept
    {
        return {other_deadline < deadline ? other_deadline : deadline, cancel};
    }
};

/**
 * Stride-amortized polling for scalar, event-at-a-time engines (the
 * DOM/surfer baselines): poll() costs one decrement per call and samples
 * the clock once every @p stride calls. An inactive budget reduces to the
 * single branch.
 */
class BudgetGate {
public:
    explicit BudgetGate(const RunBudget& budget,
                        std::uint32_t stride = 256) noexcept
        : budget_(budget),
          stride_(budget.active() ? stride : 0),
          left_(stride)
    {
    }

    /** kOk, or the violated dimension (sampled at stride granularity). */
    StatusCode poll() noexcept
    {
        if (stride_ == 0 || --left_ != 0) {
            return StatusCode::kOk;
        }
        left_ = stride_;
        return budget_.exceeded();
    }

private:
    RunBudget budget_;
    std::uint32_t stride_;
    std::uint32_t left_;
};

}  // namespace descend
