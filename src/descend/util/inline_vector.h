/**
 * @file
 * A vector with inline storage for its first N elements, equivalent to the
 * Rust SmallVec the paper relies on (Section 3.2): the depth-stack lives on
 * the machine stack as long as it stays shallow (the paper bounds this at
 * 128 frames / 512 bytes) and spills to the heap only in the rare deeply
 * nested cases.
 *
 * Restricted to trivially copyable element types, which is all the engine
 * needs (stack frames are PODs) and keeps growth a memcpy.
 */
#pragma once

#include <cassert>
#include <cstddef>
#include <cstring>
#include <memory>
#include <type_traits>

namespace descend {

template <typename T, std::size_t N>
class InlineVector {
    static_assert(std::is_trivially_copyable_v<T>,
                  "InlineVector is restricted to trivially copyable types");
    static_assert(N > 0, "inline capacity must be positive");

public:
    InlineVector() noexcept = default;

    InlineVector(const InlineVector& other) { copy_from(other); }

    InlineVector& operator=(const InlineVector& other)
    {
        if (this != &other) {
            release();
            copy_from(other);
        }
        return *this;
    }

    InlineVector(InlineVector&& other) noexcept { move_from(std::move(other)); }

    InlineVector& operator=(InlineVector&& other) noexcept
    {
        if (this != &other) {
            release();
            move_from(std::move(other));
        }
        return *this;
    }

    ~InlineVector() { release(); }

    bool empty() const noexcept { return size_ == 0; }
    std::size_t size() const noexcept { return size_; }
    std::size_t capacity() const noexcept { return capacity_; }

    /** True while the elements still live in the inline buffer. */
    bool is_inline() const noexcept { return data_ == inline_data(); }

    void push_back(const T& value)
    {
        if (size_ == capacity_) {
            grow();
        }
        data_[size_++] = value;
    }

    void pop_back() noexcept
    {
        assert(size_ > 0);
        --size_;
    }

    void clear() noexcept { size_ = 0; }

    T& back() noexcept
    {
        assert(size_ > 0);
        return data_[size_ - 1];
    }

    const T& back() const noexcept
    {
        assert(size_ > 0);
        return data_[size_ - 1];
    }

    T& operator[](std::size_t index) noexcept
    {
        assert(index < size_);
        return data_[index];
    }

    const T& operator[](std::size_t index) const noexcept
    {
        assert(index < size_);
        return data_[index];
    }

    const T* data() const noexcept { return data_; }

private:
    T* inline_data() noexcept { return reinterpret_cast<T*>(inline_storage_); }
    const T* inline_data() const noexcept
    {
        return reinterpret_cast<const T*>(inline_storage_);
    }

    void grow()
    {
        std::size_t new_capacity = capacity_ * 2;
        T* new_data = new T[new_capacity];
        std::memcpy(new_data, data_, size_ * sizeof(T));
        if (!is_inline()) {
            delete[] data_;
        }
        data_ = new_data;
        capacity_ = new_capacity;
    }

    void release() noexcept
    {
        if (!is_inline()) {
            delete[] data_;
        }
        data_ = inline_data();
        capacity_ = N;
        size_ = 0;
    }

    void copy_from(const InlineVector& other)
    {
        if (other.size_ > N) {
            data_ = new T[other.capacity_];
            capacity_ = other.capacity_;
        }
        size_ = other.size_;
        std::memcpy(data_, other.data_, size_ * sizeof(T));
    }

    void move_from(InlineVector&& other) noexcept
    {
        if (other.is_inline()) {
            size_ = other.size_;
            std::memcpy(data_, other.data_, size_ * sizeof(T));
        } else {
            data_ = other.data_;
            capacity_ = other.capacity_;
            size_ = other.size_;
            other.data_ = other.inline_data();
            other.capacity_ = N;
        }
        other.size_ = 0;
    }

    alignas(T) unsigned char inline_storage_[N * sizeof(T)];
    T* data_ = inline_data();
    std::size_t capacity_ = N;
    std::size_t size_ = 0;
};

}  // namespace descend
