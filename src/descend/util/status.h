/**
 * @file
 * Structured run outcomes and resource limits shared by every engine.
 *
 * The streaming engines historically assumed well-formed JSON and bailed
 * silently on malformed input, returning a truncated match set with no
 * signal to the caller. EngineStatus replaces that: every engine's run()
 * reports a status code plus the byte offset at which the problem was
 * detected, so garbage-in produces a diagnosable error instead of a
 * silently-wrong answer. EngineLimits bounds the resources a single run
 * may consume (nesting depth, document size, match count), turning
 * adversarial inputs into clean limit errors instead of overflows.
 *
 * See DESIGN.md ("Error handling & limits") for the taxonomy, the
 * detection guarantees of each engine, and the defaults' rationale.
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <ostream>
#include <string>

namespace descend {

/** Classification of a single engine run's outcome. */
enum class StatusCode : std::uint8_t {
    kOk = 0,
    /** The document holds no non-whitespace content at all. */
    kEmptyDocument,
    /** Grammar-level problem: BOM prefix, bad literal/number/escape
     *  (reported by the strict DOM parser; streaming engines are
     *  deliberately permissive about token grammar). */
    kInvalidDocument,
    /** Stray closer, mismatched closer kind, or input ended while
     *  containers were still open. */
    kUnbalancedStructure,
    /** Input ended inside a string (includes a lone '\\' at EOF). */
    kTruncatedString,
    /** Non-whitespace content after the root value closed. */
    kTrailingContent,
    /** An object member label is not valid UTF-8. */
    kInvalidUtf8InLabel,
    /** EngineLimits::max_depth exceeded. */
    kDepthLimit,
    /** EngineLimits::max_document_size exceeded. */
    kSizeLimit,
    /** EngineLimits::max_match_count exceeded. */
    kMatchLimit,
    /** RunBudget::deadline passed before the run completed (offset: the
     *  first byte not fully processed). */
    kDeadlineExceeded,
    /** The run's CancelToken was cancelled (offset as above). */
    kCancelled,
};

/** Number of StatusCode values — sizes per-status tally arrays (the
 *  stream executor's per-record error tallies; obs/report.h). */
inline constexpr std::size_t kStatusCodeCount =
    static_cast<std::size_t>(StatusCode::kCancelled) + 1;

/** Human-readable name of a status code. */
constexpr const char* status_name(StatusCode code) noexcept
{
    switch (code) {
        case StatusCode::kOk: return "ok";
        case StatusCode::kEmptyDocument: return "empty document";
        case StatusCode::kInvalidDocument: return "invalid document";
        case StatusCode::kUnbalancedStructure: return "unbalanced structure";
        case StatusCode::kTruncatedString: return "truncated string";
        case StatusCode::kTrailingContent: return "trailing content";
        case StatusCode::kInvalidUtf8InLabel: return "invalid UTF-8 in label";
        case StatusCode::kDepthLimit: return "depth limit exceeded";
        case StatusCode::kSizeLimit: return "document size limit exceeded";
        case StatusCode::kMatchLimit: return "match count limit exceeded";
        case StatusCode::kDeadlineExceeded: return "deadline exceeded";
        case StatusCode::kCancelled: return "cancelled";
    }
    return "unknown";
}

/** True for run-governance outcomes (deadline/cancellation): the input may
 *  be perfectly fine — the run was stopped from outside, not by content. */
constexpr bool is_governance(StatusCode code) noexcept
{
    return code == StatusCode::kDeadlineExceeded ||
           code == StatusCode::kCancelled;
}

/**
 * The Result-style outcome of one engine run: a code plus the byte offset
 * into the document at which the problem was detected (the document size
 * for end-of-input conditions). Default-constructed means success.
 */
struct EngineStatus {
    StatusCode code = StatusCode::kOk;
    std::size_t offset = 0;

    constexpr bool ok() const noexcept { return code == StatusCode::kOk; }

    /** True for resource-limit outcomes (vs. malformed-input outcomes). */
    constexpr bool is_limit() const noexcept
    {
        return code == StatusCode::kDepthLimit || code == StatusCode::kSizeLimit ||
               code == StatusCode::kMatchLimit;
    }

    /** True for deadline/cancellation outcomes (see is_governance above). */
    constexpr bool is_governance() const noexcept
    {
        return descend::is_governance(code);
    }

    friend constexpr bool operator==(const EngineStatus& a,
                                     const EngineStatus& b) noexcept
    {
        return a.code == b.code && a.offset == b.offset;
    }
    friend constexpr bool operator!=(const EngineStatus& a,
                                     const EngineStatus& b) noexcept
    {
        return !(a == b);
    }
};

/** "<name> at byte <offset>", for logs and error messages. */
inline std::string to_string(const EngineStatus& status)
{
    std::string text = status_name(status.code);
    if (!status.ok()) {
        text += " at byte " + std::to_string(status.offset);
    }
    return text;
}

inline std::ostream& operator<<(std::ostream& out, const EngineStatus& status)
{
    return out << to_string(status);
}

/**
 * Resource limits enforced by every engine. Defaults are generous enough
 * for all benchmark workloads while keeping adversarial inputs (10k-deep
 * nesting, unbounded match floods) from exhausting stack or memory.
 */
struct EngineLimits {
    static constexpr std::size_t kUnlimited =
        std::numeric_limits<std::size_t>::max();

    /** Maximum container nesting depth (matches json::ParseOptions and
     *  simdjson's default). Kept low enough that the recursive DOM parser
     *  can reach the limit without exhausting the thread stack, even with
     *  sanitizer-inflated frames. */
    std::size_t max_depth = 1024;
    /** Maximum document size in bytes accepted by run(). */
    std::size_t max_document_size = kUnlimited;
    /** Maximum number of matches reported to the sink. */
    std::size_t max_match_count = kUnlimited;
};

}  // namespace descend
