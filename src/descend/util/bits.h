/**
 * @file
 * Word-level bit manipulation primitives shared by the SIMD kernels and the
 * classifiers: trailing/leading zero counts, popcount, prefix-XOR, and the
 * add-carry propagation used to find characters escaped by backslash runs
 * (Langdale & Lemire's technique, paper Section 4.2).
 *
 * Everything here is branch-free, constexpr-friendly and portable; the SIMD
 * layer provides accelerated equivalents where the hardware offers them.
 */
#pragma once

#include <bit>
#include <cstdint>

namespace descend::bits {

/** All bits at even positions (0, 2, 4, ...) set. */
inline constexpr std::uint64_t kEvenBits = 0x5555555555555555ULL;
/** All bits at odd positions (1, 3, 5, ...) set. */
inline constexpr std::uint64_t kOddBits = 0xAAAAAAAAAAAAAAAAULL;

/** Index of the lowest set bit; 64 when no bit is set. */
inline int trailing_zeros(std::uint64_t mask) noexcept
{
    return std::countr_zero(mask);
}

/** Number of set bits. */
inline int popcount(std::uint64_t mask) noexcept
{
    return std::popcount(mask);
}

/** Clears the lowest set bit. Mask must be non-zero for a meaningful call. */
inline std::uint64_t clear_lowest_bit(std::uint64_t mask) noexcept
{
    return mask & (mask - 1);
}

/** Mask with all bits strictly below @p index set. @p index may be 64. */
inline std::uint64_t mask_below(int index) noexcept
{
    // (1 << 64) is undefined; split the shift to keep index == 64 legal.
    return index >= 64 ? ~0ULL : (1ULL << index) - 1;
}

/** Mask with all bits at or above @p index set. @p index may be 64. */
inline std::uint64_t mask_from(int index) noexcept
{
    return ~mask_below(index);
}

/**
 * Prefix XOR: bit i of the result is the XOR of bits [0, i] of the input.
 *
 * This turns a mask of unescaped quote characters into an "inside string"
 * mask: bits between an opening quote (inclusive) and its closing quote
 * (exclusive) are set. The SIMD layer implements the same function with a
 * single carry-less multiplication (CLMUL) by an all-ones vector; this SWAR
 * ladder is the portable fallback and the differential-test reference.
 */
inline constexpr std::uint64_t prefix_xor(std::uint64_t mask) noexcept
{
    mask ^= mask << 1;
    mask ^= mask << 2;
    mask ^= mask << 4;
    mask ^= mask << 8;
    mask ^= mask << 16;
    mask ^= mask << 32;
    return mask;
}

/** Result of add_overflow: the wrapped sum plus the carry-out flag. */
struct SumWithCarry {
    std::uint64_t sum;
    bool carry;
};

/** 64-bit addition with carry-out, used by the escape analysis. */
inline constexpr SumWithCarry add_overflow(std::uint64_t a, std::uint64_t b) noexcept
{
    std::uint64_t sum = a + b;
    return {sum, sum < a};
}

/**
 * Positions of characters escaped by a backslash sequence of odd length.
 *
 * Given the mask of backslash characters in a 64-byte block and the
 * carried-in flag saying whether the previous block ended with an active
 * (odd-run) backslash, computes the mask of character positions that are
 * escaped (i.e. preceded by an odd-length run of backslashes). The escaped
 * position can be one past the block, which is returned through
 * @p carry_out so the next block's analysis can consume it.
 *
 * This is the add-carry propagation of paper Section 4.2 (after simdjson).
 */
inline constexpr std::uint64_t find_escaped(std::uint64_t backslashes, bool carry_in,
                                            bool& carry_out) noexcept
{
    if (backslashes == 0) {
        carry_out = false;
        return carry_in ? 1ULL : 0ULL;
    }
    // A backslash whose position is escaped by the carried-in run is not the
    // start of a new escape itself.
    backslashes &= ~(carry_in ? 1ULL : 0ULL);
    std::uint64_t follows_escape = (backslashes << 1) | (carry_in ? 1ULL : 0ULL);
    std::uint64_t odd_sequence_starts = backslashes & kOddBits & ~follows_escape;
    auto [sequences_starting_on_even_bits, carry] =
        add_overflow(odd_sequence_starts, backslashes);
    carry_out = carry;
    std::uint64_t invert_mask = sequences_starting_on_even_bits << 1;
    return (kEvenBits ^ invert_mask) & follows_escape;
}

/**
 * Iterates over set bits of a mask in ascending position order.
 *
 * Usage: for (BitIter it(mask); !it.done(); it.advance()) use(it.index());
 */
class BitIter {
public:
    explicit BitIter(std::uint64_t mask) noexcept : mask_(mask) {}

    bool done() const noexcept { return mask_ == 0; }
    int index() const noexcept { return trailing_zeros(mask_); }
    void advance() noexcept { mask_ = clear_lowest_bit(mask_); }

private:
    std::uint64_t mask_;
};

}  // namespace descend::bits
