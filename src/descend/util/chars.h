/**
 * @file
 * Shared character predicates. JSON insignificant whitespace (RFC 8259 §2)
 * is exactly these four bytes; every component that needs to step over
 * whitespace uses this one definition.
 */
#pragma once

#include <cstdint>

namespace descend::chars {

/** True for the four JSON whitespace bytes: space, tab, LF, CR. */
inline constexpr bool is_ws_byte(std::uint8_t byte) noexcept
{
    return byte == ' ' || byte == '\t' || byte == '\n' || byte == '\r';
}

}  // namespace descend::chars
