/**
 * @file
 * Scalar UTF-8 validation for object member labels.
 *
 * The engines compare labels in their raw (still escaped) form, which is
 * ASCII except for raw multi-byte sequences the document author embedded.
 * Validation rejects the classic pitfalls: continuation bytes out of
 * place, truncated sequences, overlong encodings, UTF-16 surrogates, and
 * code points above U+10FFFF. Labels are short, so a byte-at-a-time check
 * with an ASCII fast path is cheap relative to the label comparison the
 * engine performs anyway.
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace descend::util {

inline bool is_valid_utf8(const std::uint8_t* data, std::size_t size) noexcept
{
    std::size_t i = 0;
    while (i < size) {
        std::uint8_t byte = data[i];
        if (byte < 0x80) {
            ++i;
            continue;
        }
        std::size_t length;
        std::uint32_t code;
        if ((byte & 0xe0) == 0xc0) {
            length = 2;
            code = byte & 0x1f;
        } else if ((byte & 0xf0) == 0xe0) {
            length = 3;
            code = byte & 0x0f;
        } else if ((byte & 0xf8) == 0xf0) {
            length = 4;
            code = byte & 0x07;
        } else {
            return false;  // lone continuation byte or 0xFE/0xFF
        }
        if (i + length > size) {
            return false;  // truncated sequence
        }
        for (std::size_t k = 1; k < length; ++k) {
            std::uint8_t continuation = data[i + k];
            if ((continuation & 0xc0) != 0x80) {
                return false;
            }
            code = (code << 6) | (continuation & 0x3f);
        }
        if (length == 2 && code < 0x80) {
            return false;  // overlong
        }
        if (length == 3 && code < 0x800) {
            return false;  // overlong
        }
        if (length == 4 && code < 0x10000) {
            return false;  // overlong
        }
        if (code >= 0xd800 && code <= 0xdfff) {
            return false;  // UTF-16 surrogate
        }
        if (code > 0x10ffff) {
            return false;  // beyond Unicode
        }
        i += length;
    }
    return true;
}

inline bool is_valid_utf8(std::string_view text) noexcept
{
    return is_valid_utf8(reinterpret_cast<const std::uint8_t*>(text.data()),
                         text.size());
}

}  // namespace descend::util
