/**
 * @file
 * Exception hierarchy shared across the descend library.
 *
 * Policy (see DESIGN.md): user-facing inputs that can be malformed — the
 * JSONPath query text and JSON documents fed to the strict DOM parser —
 * report problems via exceptions carrying a byte offset. The streaming
 * engine itself assumes well-formed JSON (as rsonpath does) and never
 * throws on document content.
 */
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>

namespace descend {

/** Base class of all descend exceptions. */
class Error : public std::runtime_error {
public:
    explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/** Raised when a JSONPath expression cannot be parsed or compiled. */
class QueryError : public Error {
public:
    QueryError(const std::string& message, std::size_t position);

    /** Byte offset into the query string where the problem was detected. */
    std::size_t position() const noexcept { return position_; }

private:
    std::size_t position_;
};

/** Raised by the strict DOM parser on malformed JSON. */
class ParseError : public Error {
public:
    ParseError(const std::string& message, std::size_t position);

    /** Byte offset into the document where the problem was detected. */
    std::size_t position() const noexcept { return position_; }

private:
    std::size_t position_;
};

/** Raised when a query exceeds implementation limits (e.g. DFA blowup). */
class LimitError : public Error {
public:
    explicit LimitError(const std::string& message) : Error(message) {}
};

}  // namespace descend
