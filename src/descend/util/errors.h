/**
 * @file
 * Exception hierarchy shared across the descend library.
 *
 * Policy (see DESIGN.md, "Error handling & limits"): user-facing inputs
 * that can be malformed report problems in two ways.
 *
 *  - The JSONPath query text and the strict DOM parser throw exceptions
 *    carrying a byte offset (QueryError, ParseError) — these are
 *    construction-time errors the caller must handle once.
 *  - Engine runs never throw on document content: run() returns a
 *    structured EngineStatus (code + byte offset), so the streaming hot
 *    path stays exception-free and differential tests can compare error
 *    classifications across engines. Callers that prefer exceptions wrap
 *    the status with raise_status().
 *
 * Resource limits (nesting depth, document size, match count) surface as
 * limit-class EngineStatus codes; raise_status() maps them onto the
 * LimitError family.
 */
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>

#include "descend/util/status.h"

namespace descend {

/** Base class of all descend exceptions. */
class Error : public std::runtime_error {
public:
    explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/** Raised when a JSONPath expression cannot be parsed or compiled. */
class QueryError : public Error {
public:
    QueryError(const std::string& message, std::size_t position);

    /** Byte offset into the query string where the problem was detected. */
    std::size_t position() const noexcept { return position_; }

private:
    std::size_t position_;
};

/** Raised by the strict DOM parser on malformed JSON. */
class ParseError : public Error {
public:
    ParseError(const std::string& message, std::size_t position,
               StatusCode code = StatusCode::kInvalidDocument);

    /** Byte offset into the document where the problem was detected. */
    std::size_t position() const noexcept { return position_; }

    /** The status-taxonomy classification of this parse failure. */
    StatusCode code() const noexcept { return code_; }

private:
    std::size_t position_;
    StatusCode code_;
};

/** Raised when a query exceeds implementation limits (e.g. DFA blowup). */
class LimitError : public Error {
public:
    explicit LimitError(const std::string& message) : Error(message) {}
};

/** Raised by raise_status() for limit-class run outcomes. */
class ResourceLimitError : public LimitError {
public:
    explicit ResourceLimitError(const EngineStatus& status);

    const EngineStatus& status() const noexcept { return status_; }

private:
    EngineStatus status_;
};

/** Raised by raise_status() for malformed-document run outcomes. */
class DocumentError : public Error {
public:
    explicit DocumentError(const EngineStatus& status);

    const EngineStatus& status() const noexcept { return status_; }

private:
    EngineStatus status_;
};

/**
 * Exception bridge for the Result-style engine API: no-op for ok
 * statuses, throws ResourceLimitError for limit-class outcomes and
 * DocumentError for malformed-document outcomes.
 */
void raise_status(const EngineStatus& status);

}  // namespace descend
