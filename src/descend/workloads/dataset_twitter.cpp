/**
 * @file
 * Twitter dataset generators.
 *
 * generate_twitter_large: the JSONSki benchmark dump — a top-level array
 * of tweets (queries T1, T2). About 60% of tweets carry one or two urls
 * in entities.urls; every tweet has a text field; some tweets embed a
 * retweeted_status (one level of tweet nesting), giving depth ~12.
 *
 * generate_twitter_small: the twitter.json from simdjson's quickstart —
 * one API response object with a statuses array first and search_metadata
 * *last* (crucial: Ts must stream past all statuses to find it, which is
 * exactly what makes the Ts / Ts^p / Ts^r comparison interesting).
 */
#include "descend/workloads/builder.h"
#include "descend/workloads/datasets.h"

namespace descend::workloads {
namespace {

void emit_user(JsonBuilder& b, Rng& rng)
{
    b.begin_object();
    b.key("id");
    b.number(std::uint64_t(rng.next() % 4000000000ULL));
    b.key("name");
    b.string_value(random_sentence(rng, 2));
    b.key("screen_name");
    b.string_value(random_word(rng, 8 + rng.below(6)));
    b.key("location");
    b.string_value(rng.chance(50) ? random_sentence(rng, 2) : "");
    b.key("description");
    b.string_value(random_sentence(rng, 6 + rng.below(10)));
    b.key("followers_count");
    b.number(rng.below(100000));
    b.key("friends_count");
    b.number(rng.below(5000));
    b.key("statuses_count");
    b.number(rng.below(200000));
    b.key("profile_image_url");
    b.string_value("https://pbs.twimg.test/profile_images/" +
                   std::to_string(rng.next() % 1000000000) + "/photo.jpg");
    b.key("verified");
    b.boolean(rng.chance(3));
    b.end_object();
}

void emit_entities(JsonBuilder& b, Rng& rng)
{
    b.begin_object();
    b.key("hashtags");
    b.begin_array();
    std::uint64_t hashtags = rng.chance(40) ? rng.between(1, 3) : 0;
    for (std::uint64_t h = 0; h < hashtags; ++h) {
        b.begin_object();
        b.key("text");
        b.string_value(random_word(rng, 5 + rng.below(8)));
        b.key("indices");
        b.begin_array();
        b.number(rng.below(100));
        b.number(rng.below(140));
        b.end_array();
        b.end_object();
    }
    b.end_array();
    b.key("urls");
    b.begin_array();
    std::uint64_t urls = rng.chance(60) ? rng.between(1, 2) : 0;
    for (std::uint64_t u = 0; u < urls; ++u) {
        b.begin_object();
        b.key("url");
        b.string_value("https://t.test/" + random_word(rng, 10));
        b.key("expanded_url");
        b.string_value("https://" + random_word(rng, 8) + ".test/" +
                       random_word(rng, 12));
        b.key("display_url");
        b.string_value(random_word(rng, 14));
        b.end_object();
    }
    b.end_array();
    b.key("user_mentions");
    b.begin_array();
    b.end_array();
    b.end_object();
}

void emit_tweet(JsonBuilder& b, Rng& rng, bool allow_retweet)
{
    b.begin_object();
    b.key("created_at");
    b.string_value("Sun Jul 05 12:00:00 +0000 2026");
    b.key("id");
    b.number(std::uint64_t(rng.next() % 1000000000000ULL));
    b.key("text");
    b.string_value(random_sentence(rng, 8 + rng.below(12)));
    b.key("truncated");
    b.boolean(false);
    b.key("entities");
    emit_entities(b, rng);
    b.key("source");
    b.string_value("<a href=\\\"https://twitter.test\\\">Twitter Web App</a>");
    b.key("user");
    emit_user(b, rng);
    if (allow_retweet && rng.chance(25)) {
        b.key("retweeted_status");
        emit_tweet(b, rng, /*allow_retweet=*/false);
    }
    b.key("retweet_count");
    b.number(rng.below(10000));
    b.key("favorite_count");
    b.number(rng.below(50000));
    b.key("lang");
    b.string_value(rng.chance(70) ? "en" : "ja");
    b.end_object();
}

}  // namespace

std::string generate_twitter_large(std::size_t target_bytes)
{
    Rng rng(0x7217eb16ULL);
    JsonBuilder b(target_bytes + (target_bytes >> 3));
    b.begin_array();
    while (b.size() < target_bytes) {
        emit_tweet(b, rng, /*allow_retweet=*/true);
    }
    b.end_array();
    return b.take();
}

std::string generate_twitter_small(std::size_t target_bytes)
{
    Rng rng(0x7217e25ULL);
    JsonBuilder b(target_bytes + (target_bytes >> 3));
    b.begin_object();
    b.key("statuses");
    b.begin_array();
    std::uint64_t statuses = 0;
    // search_metadata must come after the statuses; leave room for it.
    while (b.size() + 256 < target_bytes) {
        emit_tweet(b, rng, /*allow_retweet=*/true);
        ++statuses;
    }
    b.end_array();
    b.key("search_metadata");
    b.begin_object();
    b.key("completed_in");
    b.number(0.087);
    b.key("max_id");
    b.number(std::uint64_t(rng.next() % 1000000000000ULL));
    b.key("query");
    b.string_value(random_word(rng, 6));
    b.key("count");
    b.number(statuses);
    b.end_object();
    b.end_object();
    return b.take();
}

}  // namespace descend::workloads
