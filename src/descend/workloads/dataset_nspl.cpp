/**
 * @file
 * NSPL (National Statistics Postcode Lookup) generator (queries N1, N2).
 *
 * A Socrata-style export: a meta.view header describing 44 columns (N1),
 * followed by a huge data array of row arrays whose cells are themselves
 * small arrays — so `$.data.*.*.*` (N2) touches millions of atoms and is
 * dominated by raw event throughput, with verbosity ~14 bytes/node (the
 * densest dataset in Table 3, matching the paper).
 */
#include "descend/workloads/builder.h"
#include "descend/workloads/datasets.h"

namespace descend::workloads {

std::string generate_nspl(std::size_t target_bytes)
{
    Rng rng(0x4e5e1ULL);
    JsonBuilder b(target_bytes + (target_bytes >> 3));
    b.begin_object();
    b.key("meta");
    b.begin_object();
    b.key("view");
    b.begin_object();
    b.key("id");
    b.string_value(random_word(rng, 9));
    b.key("name");
    b.string_value("National Statistics Postcode Lookup");
    b.key("averageRating");
    b.number(std::uint64_t{0});
    b.key("columns");
    b.begin_array();
    for (int c = 0; c < 44; ++c) {
        b.begin_object();
        b.key("id");
        b.number(static_cast<std::uint64_t>(c + 1));
        b.key("name");
        b.string_value("col_" + random_word(rng, 6));
        b.key("dataTypeName");
        b.string_value(c % 3 == 0 ? "number" : "text");
        b.key("fieldName");
        b.string_value(random_word(rng, 8));
        b.key("position");
        b.number(static_cast<std::uint64_t>(c));
        b.end_object();
    }
    b.end_array();
    b.key("rights");
    b.begin_array();
    b.string_value("read");
    b.end_array();
    b.end_object();
    b.end_object();
    b.key("data");
    b.begin_array();
    while (b.size() < target_bytes) {
        // One row: an array of cell arrays, as in the paper's N2 query
        // $.data[*][*][*] which steps three levels below data.
        b.begin_array();
        std::uint64_t cells = rng.between(6, 10);
        for (std::uint64_t c = 0; c < cells; ++c) {
            b.begin_array();
            std::uint64_t entries = rng.between(2, 4);
            for (std::uint64_t e = 0; e < entries; ++e) {
                if (rng.chance(40)) {
                    b.number(rng.below(1000000));
                } else if (rng.chance(10)) {
                    b.null();
                } else {
                    b.string_value(random_word(rng, 2 + rng.below(9)));
                }
            }
            b.end_array();
        }
        b.end_array();
    }
    b.end_array();
    b.end_object();
    return b.take();
}

}  // namespace descend::workloads
