/**
 * @file
 * Google Maps directions dump generator (queries G1, G2).
 *
 * Top-level array of direction responses; each carries routes -> legs ->
 * steps chains with distance/duration objects and long instruction
 * strings. available_travel_modes appears in roughly 1 in 300 responses,
 * making G2 highly selective (and its descendant rewriting G2r a prime
 * head-skipping beneficiary) while still yielding matches at the scaled-down
 * default dataset size.
 */
#include "descend/workloads/builder.h"
#include "descend/workloads/datasets.h"

namespace descend::workloads {
namespace {

void emit_text_value(JsonBuilder& b, Rng& rng, const char* unit, std::uint64_t scale)
{
    b.begin_object();
    std::uint64_t value = rng.between(50, 50000);
    b.key("text");
    b.string_value(std::to_string(value / scale) + " " + unit);
    b.key("value");
    b.number(value);
    b.end_object();
}

void emit_location(JsonBuilder& b, Rng& rng)
{
    b.begin_object();
    b.key("lat");
    b.number(rng.unit() * 180.0 - 90.0);
    b.key("lng");
    b.number(rng.unit() * 360.0 - 180.0);
    b.end_object();
}

}  // namespace

std::string generate_googlemap(std::size_t target_bytes)
{
    Rng rng(0x600613ULL);
    JsonBuilder b(target_bytes + (target_bytes >> 3));
    b.begin_array();
    while (b.size() < target_bytes) {
        b.begin_object();
        b.key("geocoded_waypoints");
        b.begin_array();
        for (int w = 0; w < 2; ++w) {
            b.begin_object();
            b.key("geocoder_status");
            b.string_value("OK");
            b.key("place_id");
            b.string_value(random_word(rng, 27));
            b.end_object();
        }
        b.end_array();
        b.key("routes");
        b.begin_array();
        std::uint64_t routes = rng.between(1, 3);
        for (std::uint64_t r = 0; r < routes; ++r) {
            b.begin_object();
            b.key("summary");
            b.string_value(random_sentence(rng, 2));
            b.key("legs");
            b.begin_array();
            std::uint64_t legs = rng.between(1, 2);
            for (std::uint64_t l = 0; l < legs; ++l) {
                b.begin_object();
                b.key("distance");
                emit_text_value(b, rng, "km", 1000);
                b.key("duration");
                emit_text_value(b, rng, "mins", 60);
                b.key("start_address");
                b.string_value(random_sentence(rng, 5));
                b.key("end_address");
                b.string_value(random_sentence(rng, 5));
                b.key("steps");
                b.begin_array();
                std::uint64_t steps = rng.between(4, 14);
                for (std::uint64_t s = 0; s < steps; ++s) {
                    b.begin_object();
                    b.key("distance");
                    emit_text_value(b, rng, "m", 1);
                    b.key("duration");
                    emit_text_value(b, rng, "mins", 60);
                    b.key("start_location");
                    emit_location(b, rng);
                    b.key("end_location");
                    emit_location(b, rng);
                    b.key("html_instructions");
                    b.string_value(random_sentence(rng, 8 + rng.below(10)));
                    b.key("travel_mode");
                    b.string_value("DRIVING");
                    b.end_object();
                }
                b.end_array();
                b.end_object();
            }
            b.end_array();
            b.key("overview_polyline");
            b.begin_object();
            b.key("points");
            b.string_value(random_word(rng, 120 + rng.below(200)));
            b.end_object();
            b.end_object();
        }
        b.end_array();
        if (rng.chance(1, 300)) {
            b.key("available_travel_modes");
            b.begin_array();
            b.string_value("DRIVING");
            b.string_value("WALKING");
            b.string_value("TRANSIT");
            b.end_array();
        }
        b.key("status");
        b.string_value("OK");
        b.end_object();
    }
    b.end_array();
    return b.take();
}

}  // namespace descend::workloads
