/**
 * @file
 * BestBuy-style product dump generator (queries B1, B2, B3).
 *
 * Profile reproduced from the paper: shallow (depth ~8), verbosity ~25
 * bytes/node; every product has a categoryPath array (B1 matches many);
 * about 1 in 90 products has videoChapters (B2 matches ~11x B3's count,
 * B3 counts the arrays themselves); products otherwise carry wide flat
 * string/number fields, so leaf-skipping pays off.
 */
#include "descend/workloads/builder.h"
#include "descend/workloads/datasets.h"

namespace descend::workloads {

std::string generate_bestbuy(std::size_t target_bytes)
{
    Rng rng(0xbe57b0ULL);
    JsonBuilder b(target_bytes + (target_bytes >> 3));
    b.begin_object();
    b.key("products");
    b.begin_array();
    std::uint64_t sku = 1000000;
    while (b.size() < target_bytes) {
        b.begin_object();
        b.key("sku");
        b.number(sku++);
        b.key("productId");
        b.number(rng.next() % 100000000);
        b.key("name");
        b.string_value(random_sentence(rng, 4 + rng.below(5)));
        b.key("type");
        b.string_value("HardGood");
        b.key("regularPrice");
        b.number(static_cast<double>(rng.between(5, 2000)) + 0.99);
        b.key("salePrice");
        b.number(static_cast<double>(rng.between(5, 1900)) + 0.99);
        b.key("onSale");
        b.boolean(rng.chance(30));
        b.key("url");
        b.string_value("https://api.bestbuy.test/v1/products/" +
                       std::to_string(sku) + ".json");
        b.key("categoryPath");
        b.begin_array();
        std::uint64_t path_length = rng.between(3, 6);
        for (std::uint64_t i = 0; i < path_length; ++i) {
            b.begin_object();
            b.key("id");
            b.string_value("cat" + std::to_string(rng.next() % 100000));
            b.key("name");
            b.string_value(random_sentence(rng, 2));
            b.end_object();
        }
        b.end_array();
        if (rng.chance(1, 90)) {
            // Rare videoChapters: B3 counts these arrays, B2 their chapters.
            b.key("videoChapters");
            b.begin_array();
            std::uint64_t chapters = rng.between(4, 18);
            for (std::uint64_t i = 0; i < chapters; ++i) {
                b.begin_object();
                b.key("chapter");
                b.string_value(random_sentence(rng, 3));
                b.key("start");
                b.number(i * 30);
                b.end_object();
            }
            b.end_array();
        }
        b.key("customerReviewCount");
        b.number(rng.below(5000));
        b.key("customerReviewAverage");
        b.number(static_cast<double>(rng.between(10, 50)) / 10.0);
        b.key("longDescription");
        b.string_value(random_sentence(rng, 12 + rng.below(20)));
        b.key("manufacturer");
        b.string_value(random_word(rng, 6 + rng.below(6)));
        b.key("modelNumber");
        b.string_value(random_word(rng, 8));
        b.key("shippingCost");
        b.number(static_cast<double>(rng.below(20)));
        b.end_object();
    }
    b.end_array();
    b.end_object();
    return b.take();
}

}  // namespace descend::workloads
