#include "descend/workloads/datasets.h"

#include "descend/util/errors.h"

namespace descend::workloads {

std::vector<std::string> dataset_names()
{
    return {"ast",      "bestbuy", "crossref",      "googlemap", "nspl",
            "openfood", "twitter", "twitter_small", "walmart",   "wikimedia"};
}

std::string generate(const std::string& name, std::size_t target_bytes)
{
    if (name == "ast") return generate_ast(target_bytes);
    if (name == "bestbuy") return generate_bestbuy(target_bytes);
    if (name == "crossref") return generate_crossref(target_bytes);
    if (name == "googlemap") return generate_googlemap(target_bytes);
    if (name == "nspl") return generate_nspl(target_bytes);
    if (name == "openfood") return generate_openfood(target_bytes);
    if (name == "twitter") return generate_twitter_large(target_bytes);
    if (name == "twitter_small") return generate_twitter_small(target_bytes);
    if (name == "walmart") return generate_walmart(target_bytes);
    if (name == "wikimedia") return generate_wikimedia(target_bytes);
    throw Error("unknown dataset: " + name);
}

}  // namespace descend::workloads
