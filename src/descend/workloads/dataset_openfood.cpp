/**
 * @file
 * OpenFoodFacts products dump generator (queries O1, O2, O3).
 *
 * Products are wide objects dominated by *_tags string arrays and a
 * nutriments object. The three queried members are all rare:
 * vitamins_tags and added_countries_tags in ~1 in 2000 products,
 * specific_ingredients (objects with an "ingredient") in ~1 in 4000 —
 * making their descendant rewritings the paper's biggest head-skipping
 * wins (20-35 GB/s in Appendix C).
 */
#include "descend/workloads/builder.h"
#include "descend/workloads/datasets.h"

namespace descend::workloads {
namespace {

void emit_tags(JsonBuilder& b, Rng& rng, const char* prefix, std::uint64_t count)
{
    b.begin_array();
    for (std::uint64_t i = 0; i < count; ++i) {
        b.string_value(std::string(prefix) + ":" + random_word(rng, 4 + rng.below(8)));
    }
    b.end_array();
}

}  // namespace

std::string generate_openfood(std::size_t target_bytes)
{
    Rng rng(0x0f00dULL);
    JsonBuilder b(target_bytes + (target_bytes >> 3));
    b.begin_object();
    b.key("count");
    b.number(std::uint64_t{0});
    b.key("products");
    b.begin_array();
    std::uint64_t code = 3000000000000ULL;
    while (b.size() < target_bytes) {
        b.begin_object();
        b.key("code");
        b.string_value(std::to_string(code++));
        b.key("product_name");
        b.string_value(random_sentence(rng, 3 + rng.below(4)));
        b.key("brands");
        b.string_value(random_word(rng, 5 + rng.below(7)));
        b.key("categories_tags");
        emit_tags(b, rng, "en", rng.between(3, 9));
        b.key("labels_tags");
        emit_tags(b, rng, "en", rng.between(0, 5));
        b.key("countries_tags");
        emit_tags(b, rng, "en", rng.between(1, 4));
        b.key("ingredients_tags");
        emit_tags(b, rng, "en", rng.between(4, 20));
        b.key("additives_tags");
        emit_tags(b, rng, "en", rng.between(0, 6));
        b.key("allergens_tags");
        emit_tags(b, rng, "en", rng.between(0, 3));
        if (rng.chance(1, 2000)) {
            b.key("vitamins_tags");
            emit_tags(b, rng, "en", rng.between(1, 4));
        }
        if (rng.chance(1, 2000)) {
            b.key("added_countries_tags");
            emit_tags(b, rng, "en", rng.between(1, 2));
        }
        if (rng.chance(1, 4000)) {
            b.key("specific_ingredients");
            b.begin_array();
            std::uint64_t entries = rng.between(1, 3);
            for (std::uint64_t i = 0; i < entries; ++i) {
                b.begin_object();
                b.key("id");
                b.string_value("en:" + random_word(rng, 6));
                b.key("ingredient");
                b.string_value(random_word(rng, 6 + rng.below(8)));
                b.key("text");
                b.string_value(random_sentence(rng, 4));
                b.end_object();
            }
            b.end_array();
        }
        b.key("nutriments");
        b.begin_object();
        for (const char* nutrient :
             {"energy", "fat", "saturated-fat", "carbohydrates", "sugars",
              "proteins", "salt", "sodium"}) {
            b.key(nutrient);
            b.number(static_cast<double>(rng.below(10000)) / 100.0);
            b.key((std::string(nutrient) + "_unit").c_str());
            b.string_value("g");
        }
        b.end_object();
        b.key("nutriscore_grade");
        b.string_value(std::string(1, static_cast<char>('a' + rng.below(5))));
        b.key("last_modified_t");
        b.number(1600000000 + rng.below(120000000));
        b.end_object();
    }
    b.end_array();
    b.end_object();
    return b.take();
}

}  // namespace descend::workloads
