/**
 * @file
 * Dataset characteristics as reported in the paper's Table 3: size,
 * maximum depth, and verbosity (bytes per tree node — lower verbosity
 * means denser structure and harder-to-achieve throughput).
 */
#pragma once

#include <cstddef>
#include <string>
#include <string_view>

namespace descend::workloads {

struct DatasetStats {
    std::size_t size_bytes = 0;
    std::size_t nodes = 0;
    std::size_t depth = 0;
    /** size_bytes / nodes. */
    double verbosity = 0.0;
};

/** Parses the document (strictly) and computes its Table 3 row. */
DatasetStats compute_stats(std::string_view json_text);

/** Formats one row: name, size [MB], depth, verbosity. */
std::string format_stats_row(const std::string& name, const DatasetStats& stats);

}  // namespace descend::workloads
