/**
 * @file
 * Shared utilities for the synthetic dataset generators: a deterministic
 * RNG (SplitMix64) and a direct-to-string JSON builder.
 *
 * The generators substitute for the paper's real datasets (see DESIGN.md):
 * they reproduce each dataset's *structural* profile — nesting depth,
 * verbosity, label vocabulary and per-query selectivity — which is what
 * drives streaming-engine performance.
 */
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace descend::workloads {

/** SplitMix64: tiny, deterministic, good-enough distribution. */
class Rng {
public:
    explicit Rng(std::uint64_t seed) : state_(seed) {}

    std::uint64_t next()
    {
        std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    /** Uniform integer in [0, bound). @p bound must be positive. */
    std::uint64_t below(std::uint64_t bound) { return next() % bound; }

    /** Uniform integer in [lo, hi]. */
    std::uint64_t between(std::uint64_t lo, std::uint64_t hi)
    {
        return lo + below(hi - lo + 1);
    }

    /** True with probability @p percent / 100. */
    bool chance(unsigned percent) { return below(100) < percent; }

    /** True with probability @p numerator / @p denominator. */
    bool chance(std::uint64_t numerator, std::uint64_t denominator)
    {
        return below(denominator) < numerator;
    }

    double unit() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

private:
    std::uint64_t state_;
};

/**
 * Append-only JSON writer. Tracks separators so call sites stay terse:
 *
 *     JsonBuilder b;
 *     b.begin_object();
 *     b.key("name"); b.string_value("x");
 *     b.key("tags"); b.begin_array(); b.number(1); b.number(2); b.end_array();
 *     b.end_object();
 */
class JsonBuilder {
public:
    explicit JsonBuilder(std::size_t reserve = 1 << 20) { out_.reserve(reserve); }

    void begin_object()
    {
        separator();
        out_.push_back('{');
        fresh_ = true;
    }

    void end_object()
    {
        out_.push_back('}');
        fresh_ = false;
    }

    void begin_array()
    {
        separator();
        out_.push_back('[');
        fresh_ = true;
    }

    void end_array()
    {
        out_.push_back(']');
        fresh_ = false;
    }

    /** Object key; the value call must follow. @p key must need no escaping. */
    void key(std::string_view key)
    {
        separator();
        out_.push_back('"');
        out_.append(key);
        out_.append("\":");
        fresh_ = true;
    }

    /** String value; @p text must need no escaping (generator-controlled). */
    void string_value(std::string_view text)
    {
        separator();
        out_.push_back('"');
        out_.append(text);
        out_.push_back('"');
        fresh_ = false;
    }

    void raw_value(std::string_view json)
    {
        separator();
        out_.append(json);
        fresh_ = false;
    }

    void number(std::uint64_t value)
    {
        separator();
        out_.append(std::to_string(value));
        fresh_ = false;
    }

    void number(double value)
    {
        separator();
        out_.append(std::to_string(value));
        fresh_ = false;
    }

    void boolean(bool value)
    {
        separator();
        out_.append(value ? "true" : "false");
        fresh_ = false;
    }

    void null()
    {
        separator();
        out_.append("null");
        fresh_ = false;
    }

    std::size_t size() const noexcept { return out_.size(); }
    std::string take() { return std::move(out_); }

private:
    void separator()
    {
        if (!fresh_ && !out_.empty()) {
            char last = out_.back();
            if (last != '{' && last != '[' && last != ':') {
                out_.push_back(',');
            }
        }
        fresh_ = false;
    }

    std::string out_;
    bool fresh_ = true;
};

/** A pseudo-random lowercase word of the given length. */
inline std::string random_word(Rng& rng, std::size_t length)
{
    std::string word;
    word.reserve(length);
    for (std::size_t i = 0; i < length; ++i) {
        word.push_back(static_cast<char>('a' + rng.below(26)));
    }
    return word;
}

/** A pseudo-random sentence of @p words space-separated words. */
inline std::string random_sentence(Rng& rng, std::size_t words)
{
    std::string sentence;
    for (std::size_t i = 0; i < words; ++i) {
        if (i > 0) {
            sentence.push_back(' ');
        }
        sentence += random_word(rng, 3 + rng.below(8));
    }
    return sentence;
}

}  // namespace descend::workloads
