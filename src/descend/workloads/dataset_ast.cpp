/**
 * @file
 * clang `-ast-dump=json` style generator (queries A1, A2, A3).
 *
 * The code-as-data scenario from the paper's introduction: deep (~100
 * levels of `inner` nesting), highly irregular, dense (verbosity ~14
 * bytes/node). Reproduced features:
 *  - recursive `inner` arrays nest nodes within nodes, so the descendant
 *    query A2 ($..inner..inner..type.qualType) is highly ambiguous and
 *    grows the depth-stack — the paper's hardest case;
 *  - rare `decl` member objects carrying a `name` (A1, 35-ish matches);
 *  - occasional loc.includedFrom.file chains (A3).
 */
#include "descend/workloads/builder.h"
#include "descend/workloads/datasets.h"

namespace descend::workloads {
namespace {

const char* const kKinds[] = {
    "FunctionDecl",   "CompoundStmt",   "DeclStmt",     "VarDecl",
    "BinaryOperator", "ImplicitCastExpr", "DeclRefExpr", "CallExpr",
    "IfStmt",         "ReturnStmt",     "ForStmt",      "UnaryOperator",
    "ParenExpr",      "IntegerLiteral", "ParmVarDecl",  "TypedefDecl",
};

const char* const kTypes[] = {
    "int", "char *", "unsigned long", "void", "double", "const char *",
    "size_t", "struct node *", "int (*)(void *, void *)", "unsigned char",
};

class AstGenerator {
public:
    AstGenerator(Rng& rng, JsonBuilder& b, std::size_t target)
        : rng_(rng), b_(b), target_(target)
    {
    }

    void emit_node(int depth)
    {
        b_.begin_object();
        b_.key("id");
        b_.string_value("0x" + std::to_string(rng_.next() % 0xffffffffULL));
        b_.key("kind");
        b_.string_value(kKinds[rng_.below(std::size(kKinds))]);
        if (rng_.chance(60)) {
            b_.key("range");
            emit_range();
        }
        if (rng_.chance(40)) {
            b_.key("loc");
            b_.begin_object();
            b_.key("offset");
            b_.number(rng_.below(800000));
            b_.key("line");
            b_.number(rng_.below(23000));
            b_.key("col");
            b_.number(rng_.between(1, 120));
            if (rng_.chance(1, 110)) {
                b_.key("includedFrom");
                b_.begin_object();
                b_.key("file");
                b_.string_value("/usr/include/" + random_word(rng_, 6) + ".h");
                b_.end_object();
            }
            b_.end_object();
        }
        if (rng_.chance(55)) {
            b_.key("type");
            b_.begin_object();
            b_.key("qualType");
            b_.string_value(kTypes[rng_.below(std::size(kTypes))]);
            b_.end_object();
        }
        if (rng_.chance(30)) {
            b_.key("valueCategory");
            b_.string_value(rng_.chance(50) ? "prvalue" : "lvalue");
        }
        if (rng_.chance(25)) {
            b_.key("name");
            b_.string_value(random_word(rng_, 4 + rng_.below(10)));
        }
        if (rng_.chance(1, 2500)) {
            // Rare referenced-declaration stubs: A1's $..decl.name target.
            b_.key("decl");
            b_.begin_object();
            b_.key("name");
            b_.string_value(random_word(rng_, 5 + rng_.below(8)));
            b_.key("id");
            b_.string_value("0x" + std::to_string(rng_.next() % 0xffffffffULL));
            b_.end_object();
        }
        // Recursive inner nodes: deep chains are common (expressions). Each
        // AST level is two JSON levels (object + inner array), so the cap
        // of 48 yields document depth ~100 as in the paper's Table 3.
        bool want_children = depth < 4 || (b_.size() < target_ && depth < 48);
        if (want_children && rng_.chance(depth < 8 ? 95 : 78)) {
            b_.key("inner");
            b_.begin_array();
            std::uint64_t children =
                depth < 6 ? rng_.between(2, 5) : rng_.between(1, 3);
            for (std::uint64_t c = 0; c < children; ++c) {
                emit_node(depth + 1);
            }
            b_.end_array();
        }
        b_.end_object();
    }

private:
    void emit_range()
    {
        b_.begin_object();
        b_.key("begin");
        b_.begin_object();
        b_.key("offset");
        b_.number(rng_.below(800000));
        b_.key("col");
        b_.number(rng_.between(1, 120));
        b_.end_object();
        b_.key("end");
        b_.begin_object();
        b_.key("offset");
        b_.number(rng_.below(800000));
        b_.key("col");
        b_.number(rng_.between(1, 120));
        b_.end_object();
        b_.end_object();
    }

    Rng& rng_;
    JsonBuilder& b_;
    std::size_t target_;
};

}  // namespace

std::string generate_ast(std::size_t target_bytes)
{
    Rng rng(0xa57d0cULL);
    JsonBuilder b(target_bytes + (target_bytes >> 3));
    // Root translation unit with top-level declarations appended until the
    // target size is reached.
    b.begin_object();
    b.key("id");
    b.string_value("0x7f0000000000");
    b.key("kind");
    b.string_value("TranslationUnitDecl");
    b.key("inner");
    b.begin_array();
    AstGenerator generator(rng, b, target_bytes);
    while (b.size() < target_bytes) {
        generator.emit_node(1);
    }
    b.end_array();
    b.end_object();
    return b.take();
}

}  // namespace descend::workloads
