/**
 * @file
 * Synthetic dataset generators standing in for the paper's benchmark data
 * (Table 3). Each generator is deterministic and reproduces the structural
 * profile of its namesake — nesting depth, verbosity, label vocabulary,
 * and the selectivity of the benchmark queries that run against it. See
 * DESIGN.md ("Substitutions") for the per-dataset rationale.
 *
 * @p target_bytes controls the output size: record-oriented generators
 * append records until the target is reached, so actual size lands within
 * one record of the target.
 */
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace descend::workloads {

/** clang -ast-dump=json style AST: deep (~100 levels), highly irregular. */
std::string generate_ast(std::size_t target_bytes);

/** BestBuy product dump: {"products": [...]} with categoryPath arrays and
 *  rare videoChapters (queries B1-B3). */
std::string generate_bestbuy(std::size_t target_bytes);

/** Crossref metadata: {"items": [...]} with authors/affiliations, rare
 *  editors, DOIs everywhere incl. references (queries C1-C5, S0-S4). */
std::string generate_crossref(std::size_t target_bytes);

/** Google Maps directions: top-level array of route responses with
 *  routes/legs/steps chains and rare available_travel_modes (G1-G2). */
std::string generate_googlemap(std::size_t target_bytes);

/** NSPL open-data export: {"meta": {"view": ...}, "data": [[...], ...]}
 *  with row arrays of cell arrays (N1-N2). */
std::string generate_nspl(std::size_t target_bytes);

/** OpenFoodFacts products: tag-array-heavy objects with rare vitamins_tags
 *  / added_countries_tags / specific_ingredients (O1-O3). */
std::string generate_openfood(std::size_t target_bytes);

/** Twitter API dump: top-level array of tweets with entities.urls and
 *  occasional retweeted_status nesting (T1-T2). */
std::string generate_twitter_large(std::size_t target_bytes);

/** The small twitter.json from simdjson's quickstart: statuses first,
 *  search_metadata (with count) at the end (Ts, Ts^r, Ts^p, Ts4, Ts5). */
std::string generate_twitter_small(std::size_t target_bytes);

/** Walmart items: {"items": [...]} with rare bestMarketplacePrice
 *  sub-objects (W1-W2). */
std::string generate_walmart(std::size_t target_bytes);

/** Wikidata entities: top-level array with claims objects keyed by
 *  property ids, rare P150 (Wi). */
std::string generate_wikimedia(std::size_t target_bytes);

/** All generator names usable with generate(). */
std::vector<std::string> dataset_names();

/** Dispatches by name ("ast", "bestbuy", "crossref", "googlemap", "nspl",
 *  "openfood", "twitter", "twitter_small", "walmart", "wikimedia").
 *  Throws Error for unknown names. */
std::string generate(const std::string& name, std::size_t target_bytes);

}  // namespace descend::workloads
