/**
 * @file
 * Crossref metadata dump generator (queries C1-C5, S0-S4, scalability).
 *
 * Highly regular: {"items": [...]} of similar-shaped publication records.
 * Reproduced selectivity features from the paper's Experiment C:
 *  - DOIs appear everywhere, including inside reference lists, so $..DOI
 *    (C1) has very low selectivity — memmem head-skipping degenerates to
 *    many short fast-forwards;
 *  - "author" occurs both as item-level arrays of author objects (with
 *    affiliations) and ~12x more often as plain string fields inside
 *    references, so the C2 rewriting $..author..affiliation..name forces
 *    the engine through many useless author nodes;
 *  - editors are rare (C3's rewriting is a big win);
 *  - affiliations are arrays of {"name": ...} objects.
 */
#include "descend/workloads/builder.h"
#include "descend/workloads/datasets.h"

namespace descend::workloads {
namespace {

std::string random_doi(Rng& rng)
{
    return "10." + std::to_string(rng.between(1000, 9999)) + "/" +
           random_word(rng, 8) + "." + std::to_string(rng.below(100000));
}

void emit_person(JsonBuilder& b, Rng& rng, bool with_affiliation_bias)
{
    b.begin_object();
    b.key("given");
    b.string_value(random_word(rng, 5 + rng.below(5)));
    b.key("family");
    b.string_value(random_word(rng, 6 + rng.below(6)));
    b.key("sequence");
    b.string_value(rng.chance(30) ? "first" : "additional");
    if (rng.chance(20)) {
        b.key("ORCID");
        b.string_value("http://orcid.test/0000-000" + std::to_string(rng.below(10)) +
                       "-" + std::to_string(rng.between(1000, 9999)) + "-" +
                       std::to_string(rng.between(1000, 9999)));
    }
    b.key("affiliation");
    b.begin_array();
    std::uint64_t affiliations =
        with_affiliation_bias && rng.chance(55) ? rng.between(1, 2) : 0;
    for (std::uint64_t a = 0; a < affiliations; ++a) {
        b.begin_object();
        b.key("name");
        b.string_value(random_sentence(rng, 4 + rng.below(4)));
        b.end_object();
    }
    b.end_array();
    b.end_object();
}

}  // namespace

std::string generate_crossref(std::size_t target_bytes)
{
    Rng rng(0xc2055ef5ULL);
    JsonBuilder b(target_bytes + (target_bytes >> 3));
    b.begin_object();
    b.key("items");
    b.begin_array();
    while (b.size() < target_bytes) {
        b.begin_object();
        b.key("DOI");
        b.string_value(random_doi(rng));
        b.key("type");
        b.string_value("journal-article");
        b.key("title");
        b.begin_array();
        b.string_value(random_sentence(rng, 8 + rng.below(8)));
        b.end_array();
        b.key("publisher");
        b.string_value(random_sentence(rng, 3));
        b.key("author");
        b.begin_array();
        std::uint64_t authors = rng.between(1, 5);
        for (std::uint64_t a = 0; a < authors; ++a) {
            emit_person(b, rng, /*with_affiliation_bias=*/true);
        }
        b.end_array();
        if (rng.chance(1, 600)) {
            // Rare editors (C3): a handful in the whole dump.
            b.key("editor");
            b.begin_array();
            emit_person(b, rng, /*with_affiliation_bias=*/true);
            b.end_array();
        }
        b.key("issued");
        b.begin_object();
        b.key("date-parts");
        b.begin_array();
        b.begin_array();
        b.number(rng.between(1990, 2026));
        b.number(rng.between(1, 12));
        b.end_array();
        b.end_array();
        b.end_object();
        b.key("member");
        b.string_value(std::to_string(rng.between(10, 20000)));
        b.key("reference-count");
        std::uint64_t references = rng.between(8, 20);
        b.number(references);
        b.key("reference");
        b.begin_array();
        for (std::uint64_t r = 0; r < references; ++r) {
            b.begin_object();
            b.key("key");
            b.string_value("ref" + std::to_string(r));
            if (rng.chance(60)) {
                // References cite by DOI too: C1's low selectivity.
                b.key("DOI");
                b.string_value(random_doi(rng));
            }
            if (rng.chance(70)) {
                // Plain-string author fields: the extra "author" nodes that
                // make the C2 rewriting hard for descendant engines.
                b.key("author");
                b.string_value(random_word(rng, 7));
            }
            b.key("year");
            b.string_value(std::to_string(rng.between(1970, 2025)));
            b.key("unstructured");
            b.string_value(random_sentence(rng, 10 + rng.below(10)));
            b.end_object();
        }
        b.end_array();
        b.key("URL");
        b.string_value("https://doi.test/" + random_doi(rng));
        b.key("ISSN");
        b.begin_array();
        b.string_value(std::to_string(rng.between(1000, 9999)) + "-" +
                       std::to_string(rng.between(1000, 9999)));
        b.end_array();
        b.end_object();
    }
    b.end_array();
    b.end_object();
    return b.take();
}

}  // namespace descend::workloads
