/**
 * @file
 * Random document and query generation for the differential property
 * tests: every engine (main engine in every skipping configuration and at
 * every SIMD level, the surfer baseline, and the DOM oracle) must agree
 * on the full match set for any (document, query) pair drawn here.
 *
 * Shape profiles stress different engine paths: deep nesting (depth-stack
 * growth), wide containers (sibling iteration), escape-heavy strings
 * (quote classifier), whitespace padding (block-boundary straddles), and
 * atom-only arrays (leaf matching via commas).
 */
#pragma once

#include <cstdint>
#include <string>

namespace descend::workloads {

struct RandomJsonOptions {
    std::uint64_t seed = 1;
    /** Maximum container nesting. */
    int max_depth = 8;
    /** Maximum members/elements per container. */
    int max_width = 6;
    /** Percent chance that a value is a container (halved per level). */
    unsigned container_chance = 70;
    /** Percent chance of extra whitespace around tokens. */
    unsigned whitespace_chance = 20;
    /** Percent chance that a string contains escapes/quotes/braces. */
    unsigned nasty_string_chance = 25;
    /** Size of the label vocabulary (labels "a", "b", ...). */
    int label_pool = 5;
};

/** Generates a random valid JSON document. Keys are unique per object
 *  (the engines' sibling skipping assumes non-repeated labels; see
 *  README "Limitations"). */
std::string random_json(const RandomJsonOptions& options);

/** Generates a random query over the same label vocabulary, mixing child,
 *  descendant, wildcard and (when @p allow_indices) index selectors. With
 *  @p extended_selectors the mix additionally draws slices, quoted-label
 *  unions, bracket-quoted spellings of plain children, and (with some
 *  probability) a trailing filter predicate — always within the supported
 *  grammar, so every generated query parses. */
std::string random_query(std::uint64_t seed, int label_pool, int max_selectors,
                         bool allow_indices, bool extended_selectors = false);

}  // namespace descend::workloads
