/**
 * @file
 * Wikidata entity dump generator (query Wi).
 *
 * A top-level array of entity objects whose claims objects are keyed by
 * property ids (P31, P279, ...). P150 ("contains administrative
 * territorial entity") appears in roughly 1 in 40 entities with a dozen
 * claims each, reproducing Wi's selectivity. Claims nest
 * mainsnak/datavalue chains, giving depth ~13.
 */
#include "descend/workloads/builder.h"
#include "descend/workloads/datasets.h"

namespace descend::workloads {
namespace {

void emit_claim(JsonBuilder& b, Rng& rng, const std::string& property)
{
    b.begin_object();
    b.key("mainsnak");
    b.begin_object();
    b.key("snaktype");
    b.string_value("value");
    b.key("property");
    b.string_value(property);
    b.key("datavalue");
    b.begin_object();
    b.key("value");
    b.begin_object();
    b.key("entity-type");
    b.string_value("item");
    b.key("numeric-id");
    b.number(rng.below(100000000));
    b.key("id");
    b.string_value("Q" + std::to_string(rng.below(100000000)));
    b.end_object();
    b.key("type");
    b.string_value("wikibase-entityid");
    b.end_object();
    b.key("datatype");
    b.string_value("wikibase-item");
    b.end_object();
    b.key("type");
    b.string_value("statement");
    b.key("id");
    b.string_value("Q" + std::to_string(rng.below(1000000)) + "$" +
                   random_word(rng, 24));
    b.key("rank");
    b.string_value("normal");
    b.end_object();
}

}  // namespace

std::string generate_wikimedia(std::size_t target_bytes)
{
    Rng rng(0x31c1ed1aULL);
    JsonBuilder b(target_bytes + (target_bytes >> 3));
    b.begin_array();
    std::uint64_t entity = 1;
    while (b.size() < target_bytes) {
        b.begin_object();
        b.key("type");
        b.string_value("item");
        b.key("id");
        b.string_value("Q" + std::to_string(entity++));
        b.key("labels");
        b.begin_object();
        for (const char* lang : {"en", "de", "fr"}) {
            b.key(lang);
            b.begin_object();
            b.key("language");
            b.string_value(lang);
            b.key("value");
            b.string_value(random_sentence(rng, 2));
            b.end_object();
        }
        b.end_object();
        b.key("descriptions");
        b.begin_object();
        b.key("en");
        b.begin_object();
        b.key("language");
        b.string_value("en");
        b.key("value");
        b.string_value(random_sentence(rng, 5));
        b.end_object();
        b.end_object();
        b.key("claims");
        b.begin_object();
        std::uint64_t properties = rng.between(2, 6);
        for (std::uint64_t p = 0; p < properties; ++p) {
            std::string property = "P" + std::to_string(rng.between(17, 5000));
            if (property == "P150") {
                property = "P151";  // keep P150 under explicit control below
            }
            b.key(property);
            b.begin_array();
            std::uint64_t claims = rng.between(1, 3);
            for (std::uint64_t c = 0; c < claims; ++c) {
                emit_claim(b, rng, property);
            }
            b.end_array();
        }
        if (rng.chance(1, 40)) {
            b.key("P150");
            b.begin_array();
            std::uint64_t claims = rng.between(6, 18);
            for (std::uint64_t c = 0; c < claims; ++c) {
                emit_claim(b, rng, "P150");
            }
            b.end_array();
        }
        b.end_object();
        b.key("sitelinks");
        b.begin_object();
        b.key("enwiki");
        b.begin_object();
        b.key("site");
        b.string_value("enwiki");
        b.key("title");
        b.string_value(random_sentence(rng, 2));
        b.end_object();
        b.end_object();
        b.end_object();
    }
    b.end_array();
    return b.take();
}

}  // namespace descend::workloads
