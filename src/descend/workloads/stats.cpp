#include "descend/workloads/stats.h"

#include <cstdio>

#include "descend/json/dom.h"

namespace descend::workloads {

DatasetStats compute_stats(std::string_view json_text)
{
    json::Document document = json::parse(json_text);
    DatasetStats stats;
    stats.size_bytes = json_text.size();
    stats.nodes = document.root().subtree_size();
    stats.depth = document.root().subtree_depth();
    stats.verbosity = stats.nodes == 0
                          ? 0.0
                          : static_cast<double>(stats.size_bytes) /
                                static_cast<double>(stats.nodes);
    return stats;
}

std::string format_stats_row(const std::string& name, const DatasetStats& stats)
{
    char buffer[160];
    std::snprintf(buffer, sizeof(buffer), "%-15s %9.1f MB   depth %3zu   verbosity %5.1f",
                  name.c_str(), static_cast<double>(stats.size_bytes) / 1e6,
                  stats.depth, stats.verbosity);
    return buffer;
}

}  // namespace descend::workloads
