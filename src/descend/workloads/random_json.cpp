#include "descend/workloads/random_json.h"
#include <vector>

#include <algorithm>

#include "descend/workloads/builder.h"

namespace descend::workloads {
namespace {

class Generator {
public:
    explicit Generator(const RandomJsonOptions& options)
        : options_(options), rng_(options.seed)
    {
        out_.reserve(4096);
    }

    std::string run()
    {
        ws();
        value(0);
        ws();
        return std::move(out_);
    }

private:
    void ws()
    {
        while (rng_.chance(options_.whitespace_chance)) {
            static const char kWs[] = {' ', '\n', '\t', ' ', ' '};
            out_.push_back(kWs[rng_.below(std::size(kWs))]);
        }
    }

    std::string label(int index) const
    {
        return std::string(1, static_cast<char>('a' + index));
    }

    void string_literal()
    {
        out_.push_back('"');
        if (rng_.chance(options_.nasty_string_chance)) {
            // Adversarial contents: structural characters, quotes and
            // backslash runs that the quote classifier must neutralize.
            static const char* const kNasty[] = {
                "{",      "}",        "[",    "]",     ",",       ":",
                "\\\"",   "\\\\",     "\\\\\\\"", "\\n",  "\\u0041", "a\\\"b",
                "{\\\"x\\\":1}", ",,,::{}[]", "\\\\\\\\", "end\\\\",
            };
            std::uint64_t pieces = rng_.between(1, 4);
            for (std::uint64_t i = 0; i < pieces; ++i) {
                out_.append(kNasty[rng_.below(std::size(kNasty))]);
            }
        } else {
            out_.append(random_word(rng_, rng_.between(0, 10)));
        }
        out_.push_back('"');
    }

    void atom()
    {
        switch (rng_.below(5)) {
            // Small integers are drawn often enough that filter equality
            // predicates over the 0..3 literal range actually fire.
            case 0:
                out_.append(std::to_string(
                    rng_.below(rng_.chance(40) ? 5 : 100000)));
                break;
            case 1: out_.append("-").append(std::to_string(rng_.below(1000)));
                    out_.append(".5"); break;
            case 2: out_.append(rng_.chance(50) ? "true" : "false"); break;
            case 3: out_.append("null"); break;
            default: string_literal(); break;
        }
    }

    void value(int depth)
    {
        unsigned chance = options_.container_chance >> std::min(depth, 6);
        if (depth < options_.max_depth && rng_.chance(chance)) {
            if (rng_.chance(50)) {
                object(depth);
            } else {
                array(depth);
            }
        } else {
            atom();
        }
    }

    void object(int depth)
    {
        out_.push_back('{');
        int width = static_cast<int>(rng_.below(options_.max_width + 1));
        // Unique keys per object: shuffle the label pool (plus a few keys
        // outside the query vocabulary).
        std::vector<int> keys;
        for (int i = 0; i < options_.label_pool + 3; ++i) {
            keys.push_back(i);
        }
        for (std::size_t i = keys.size(); i > 1; --i) {
            std::swap(keys[i - 1], keys[rng_.below(i)]);
        }
        width = std::min<int>(width, static_cast<int>(keys.size()));
        for (int m = 0; m < width; ++m) {
            if (m > 0) {
                out_.push_back(',');
            }
            ws();
            out_.push_back('"');
            out_.append(label(keys[static_cast<std::size_t>(m)]));
            out_.push_back('"');
            ws();
            out_.push_back(':');
            ws();
            value(depth + 1);
            ws();
        }
        out_.push_back('}');
    }

    void array(int depth)
    {
        out_.push_back('[');
        int width = static_cast<int>(rng_.below(options_.max_width + 1));
        for (int e = 0; e < width; ++e) {
            if (e > 0) {
                out_.push_back(',');
            }
            ws();
            value(depth + 1);
            ws();
        }
        out_.push_back(']');
    }

    RandomJsonOptions options_;
    Rng rng_;
    std::string out_;
};

}  // namespace

std::string random_json(const RandomJsonOptions& options)
{
    return Generator(options).run();
}

std::string random_query(std::uint64_t seed, int label_pool, int max_selectors,
                         bool allow_indices, bool extended_selectors)
{
    Rng rng(seed);
    auto label = [&] {
        return std::string(1,
                           static_cast<char>('a' + rng.below(label_pool)));
    };
    std::string query = "$";
    std::uint64_t selectors = rng.between(1, static_cast<std::uint64_t>(max_selectors));
    for (std::uint64_t s = 0; s < selectors; ++s) {
        std::uint64_t arms = allow_indices ? (extended_selectors ? 9 : 6) : 5;
        switch (rng.below(arms)) {
            case 0:
            case 1: query += "." + label(); break;
            case 2: query += ".." + label(); break;
            case 3: query += ".*"; break;
            case 4:
                if (rng.chance(35)) {
                    query += "..*";
                } else {
                    query += ".." + label();
                }
                break;
            case 5: query += "[" + std::to_string(rng.below(4)) + "]"; break;
            case 6: {
                // Slice; sometimes open-ended, sometimes empty (hi <= lo).
                std::uint64_t lo = rng.below(4);
                query += "[" + std::to_string(lo) + ":";
                if (!rng.chance(30)) {
                    query += std::to_string(rng.below(6));
                }
                query += "]";
                break;
            }
            case 7: {
                // Union of 2..3 quoted labels; duplicates allowed (the
                // parser dedups, exercising canonicalization).
                query += "['" + label() + "'";
                std::uint64_t extra = rng.between(1, 2);
                for (std::uint64_t m = 0; m < extra; ++m) {
                    query += ",'" + label() + "'";
                }
                query += "]";
                break;
            }
            default:
                // Bracket-quoted spelling of a plain child: same
                // semantics as the dot form, distinct surface syntax.
                query += "['" + label() + "']";
                break;
        }
    }
    if (extended_selectors && rng.chance(30)) {
        // Trailing filter (the grammar allows filters only in final
        // position): existence, numeric and string comparisons.
        query += "[?(@." + label();
        if (rng.chance(20)) {
            query += "." + label();
        }
        switch (rng.below(6)) {
            case 0: break;
            case 1: query += "==" + std::to_string(rng.below(4)); break;
            case 2: query += "!='s" + std::to_string(rng.below(3)) + "'"; break;
            case 3: query += "<" + std::to_string(rng.below(4)) + ".5"; break;
            case 4: query += "<=" + std::to_string(rng.below(4)) + "e0"; break;
            default: query += ">=" + std::to_string(rng.below(4)); break;
        }
        query += ")]";
    }
    return query;
}

}  // namespace descend::workloads
