/**
 * @file
 * Walmart items dump generator (queries W1, W2).
 *
 * The flattest, most verbose dataset (depth 5, ~97 bytes/node in the
 * paper): wide item objects full of long strings. Every item has a name
 * (W2 matches all items); about 6% carry a bestMarketplacePrice object
 * (W1 selective).
 */
#include "descend/workloads/builder.h"
#include "descend/workloads/datasets.h"

namespace descend::workloads {

std::string generate_walmart(std::size_t target_bytes)
{
    Rng rng(0x3a13a27ULL);
    JsonBuilder b(target_bytes + (target_bytes >> 3));
    b.begin_object();
    b.key("items");
    b.begin_array();
    std::uint64_t item_id = 500000;
    while (b.size() < target_bytes) {
        b.begin_object();
        b.key("itemId");
        b.number(item_id++);
        b.key("parentItemId");
        b.number(item_id - 1);
        b.key("name");
        b.string_value(random_sentence(rng, 5 + rng.below(7)));
        b.key("msrp");
        b.number(static_cast<double>(rng.between(10, 900)) + 0.99);
        b.key("salePrice");
        b.number(static_cast<double>(rng.between(8, 850)) + 0.49);
        b.key("upc");
        b.string_value(std::to_string(rng.next() % 1000000000000ULL));
        b.key("categoryPath");
        b.string_value(random_sentence(rng, 3) + "/" + random_sentence(rng, 2));
        b.key("shortDescription");
        b.string_value(random_sentence(rng, 25 + rng.below(20)));
        b.key("longDescription");
        b.string_value(random_sentence(rng, 60 + rng.below(60)));
        b.key("brandName");
        b.string_value(random_word(rng, 5 + rng.below(8)));
        b.key("thumbnailImage");
        b.string_value("https://i5.walmartimages.test/asr/" + random_word(rng, 32) +
                       ".jpeg");
        b.key("productTrackingUrl");
        b.string_value("https://goto.walmart.test/c/" + random_word(rng, 40));
        if (rng.chance(6)) {
            b.key("bestMarketplacePrice");
            b.begin_object();
            b.key("price");
            b.number(static_cast<double>(rng.between(5, 800)) + 0.95);
            b.key("sellerInfo");
            b.string_value(random_sentence(rng, 3));
            b.key("standardShipRate");
            b.number(static_cast<double>(rng.below(15)));
            b.key("availableOnline");
            b.boolean(true);
            b.end_object();
        }
        b.key("stock");
        b.string_value(rng.chance(80) ? "Available" : "Limited");
        b.key("customerRating");
        b.string_value(std::to_string(rng.between(20, 50) / 10.0).substr(0, 3));
        b.key("availableOnline");
        b.boolean(rng.chance(90));
        b.end_object();
    }
    b.end_array();
    b.end_object();
    return b.take();
}

}  // namespace descend::workloads
