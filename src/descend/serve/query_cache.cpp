#include "descend/serve/query_cache.h"

#include <functional>
#include <utility>

#include "descend/query/query.h"
#include "descend/util/errors.h"

namespace descend::serve {
namespace {

/**
 * Canonical text of a kMulti query field: per line parse → re-serialize,
 * joined back with '\n' in request order. Unparseable lines keep their
 * raw text — canonicalization must never turn a kBadQuery response into
 * a cache-key exception; build() reports the QueryError on the miss path.
 */
std::string canonical_query_set(const std::string& queries)
{
    std::string canonical;
    canonical.reserve(queries.size());
    for (const std::string& line : split_query_set(queries)) {
        if (!canonical.empty()) {
            canonical += '\n';
        }
        try {
            canonical += query::Query::parse(line).to_string();
        } catch (const QueryError&) {
            canonical += line;
        }
    }
    return canonical;
}

}  // namespace

QueryCache::QueryCache(std::size_t capacity, std::size_t shards)
{
    if (capacity == 0) {
        capacity = 1;
    }
    if (shards == 0) {
        shards = 1;
    }
    if (shards > capacity) {
        shards = capacity;
    }
    // Ceiling division: total capacity is honoured within one entry per
    // shard, which is the precision sharded LRU can offer without a
    // global lock.
    shard_capacity_ = (capacity + shards - 1) / shards;
    shards_.reserve(shards);
    for (std::size_t i = 0; i < shards; ++i) {
        shards_.push_back(std::make_unique<Shard>());
    }
}

std::string QueryCache::make_key(RequestMode mode, const std::string& query,
                                 const EngineLimits& limits,
                                 multi::FusedBackend backend)
{
    // Mode classes that share compiled artifacts share keys: single and
    // NDJSON both use the single-query artifact; multi is its own class,
    // further split by the fused backend and canonicalized so spelling
    // variants of one set share an entry.
    const bool is_multi = mode == RequestMode::kMulti;
    const char mode_class = is_multi ? 'm' : 's';
    std::string key;
    key.reserve(query.size() + 64);
    key += mode_class;
    if (is_multi) {
        key += fused_backend_name(backend).front();
    }
    key += '\x1f';
    key += std::to_string(limits.max_depth);
    key += '\x1f';
    key += std::to_string(limits.max_document_size);
    key += '\x1f';
    key += std::to_string(limits.max_match_count);
    key += '\x1f';
    if (is_multi) {
        key += canonical_query_set(query);
    } else {
        // Same canonicalization (and same unparseable-text fallback) for
        // the single-query classes: $.a, $['a'] and $["a"] are one entry.
        try {
            key += query::Query::parse(query).to_string();
        } catch (const QueryError&) {
            key += query;
        }
    }
    return key;
}

CachedQueryPtr QueryCache::build(RequestMode mode, const std::string& query,
                                 const EngineOptions& options,
                                 multi::FusedBackend backend)
{
    auto entry = std::make_shared<CachedQuery>();
    if (mode == RequestMode::kMulti) {
        entry->multi_engine = multi::make_fused_engine(
            multi::MultiQuery::compile(split_query_set(query)), options,
            backend);
    } else {
        entry->engine = std::make_unique<DescendEngine>(
            automaton::CompiledQuery::compile(query), options);
    }
    return entry;
}

CachedQueryPtr QueryCache::lookup(RequestMode mode, const std::string& query,
                                  const EngineOptions& options, bool& hit,
                                  multi::FusedBackend backend)
{
    const std::string key = make_key(mode, query, options.limits, backend);
    Shard& shard =
        *shards_[std::hash<std::string>{}(key) % shards_.size()];
    {
        std::lock_guard<std::mutex> lock(shard.mutex);
        auto found = shard.index.find(key);
        if (found != shard.index.end()) {
            // Refresh LRU position.
            shard.order.splice(shard.order.begin(), shard.order,
                               found->second);
            hit = true;
            hits_.fetch_add(1, std::memory_order_relaxed);
            return found->second->second;
        }
    }
    // Compile outside the shard lock: a slow compilation must not block
    // hits on unrelated queries that hash to the same shard. Two racing
    // misses may both compile; the insert below keeps whichever lands
    // last and both callers run on a valid entry.
    hit = false;
    misses_.fetch_add(1, std::memory_order_relaxed);
    CachedQueryPtr entry = build(mode, query, options, backend);
    {
        std::lock_guard<std::mutex> lock(shard.mutex);
        auto found = shard.index.find(key);
        if (found != shard.index.end()) {
            // The racing compiler won; adopt its entry.
            shard.order.splice(shard.order.begin(), shard.order,
                               found->second);
            return found->second->second;
        }
        shard.order.emplace_front(key, entry);
        shard.index.emplace(key, shard.order.begin());
        entries_.fetch_add(1, std::memory_order_relaxed);
        while (shard.order.size() > shard_capacity_) {
            shard.index.erase(shard.order.back().first);
            shard.order.pop_back();
            evictions_.fetch_add(1, std::memory_order_relaxed);
            entries_.fetch_sub(1, std::memory_order_relaxed);
        }
    }
    return entry;
}

CacheStats QueryCache::stats() const
{
    CacheStats stats;
    stats.hits = hits_.load(std::memory_order_relaxed);
    stats.misses = misses_.load(std::memory_order_relaxed);
    stats.evictions = evictions_.load(std::memory_order_relaxed);
    stats.entries = entries_.load(std::memory_order_relaxed);
    return stats;
}

void QueryCache::clear()
{
    for (std::unique_ptr<Shard>& shard : shards_) {
        std::lock_guard<std::mutex> lock(shard->mutex);
        std::size_t dropped = shard->order.size();
        shard->order.clear();
        shard->index.clear();
        entries_.fetch_sub(dropped, std::memory_order_relaxed);
    }
}

std::vector<std::string> split_query_set(const std::string& queries)
{
    std::vector<std::string> set;
    std::size_t begin = 0;
    while (begin <= queries.size()) {
        std::size_t end = queries.find('\n', begin);
        if (end == std::string::npos) {
            end = queries.size();
        }
        std::string line = queries.substr(begin, end - begin);
        if (!line.empty() && line.back() == '\r') {
            line.pop_back();
        }
        if (!line.empty()) {
            set.push_back(std::move(line));
        }
        begin = end + 1;
    }
    return set;
}

}  // namespace descend::serve
