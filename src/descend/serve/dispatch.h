/**
 * @file
 * Request dispatch: the one path every decoded frame takes to an engine,
 * shared by the daemon's worker pool, the bench smoke checks, the serve
 * test suite, and the frame fuzzer (which all call handle() in-process,
 * no sockets involved).
 *
 * A RequestMode routes to the matching execution substrate:
 *
 *   kSingle → the cached DescendEngine's run_with_stats
 *   kMulti  → the cached MultiDescendEngine (fused single pass)
 *   kNdjson → a per-request StreamExecutor built from the cached
 *             CompiledQuery (a table copy, not a recompilation), run
 *             inline with one worker — the daemon's parallelism is
 *             across requests, so nesting a second thread pool inside a
 *             request worker would only oversubscribe the host
 *
 * Tenant governance: request-supplied limits may only *tighten* the
 * server defaults (effective = request == 0 ? default : min(request,
 * default)), so no tenant can exceed the operator's EngineLimits.
 * Deadlines clamp the same way against max_deadline_ms and are measured
 * from handle() entry (service time); the server's drain CancelToken
 * rides every request budget, which is how SIGTERM cuts in-flight runs
 * short.
 *
 * Match offsets in responses are absolute body positions in every mode
 * (the NDJSON path adds each record's span begin); kMulti responses
 * interleave (query_index, offset) pairs in the offsets array — see
 * protocol.h.
 */
#pragma once

#include <string>

#include "descend/engine/scratch.h"
#include "descend/serve/protocol.h"
#include "descend/serve/query_cache.h"
#include "descend/util/budget.h"

namespace descend::serve {

/** Server-side execution policy applied to every request. */
struct ServePolicy {
    /**
     * Engine configuration template: SIMD tier, skipping toggles, and the
     * *default* EngineLimits (also the per-tenant ceiling — requests can
     * only tighten them). The budget member is ignored; governance comes
     * from the per-request deadline and the server's drain token.
     */
    EngineOptions engine;
    /** Deadline applied when a request specifies none; 0 = none. */
    std::uint32_t default_deadline_ms = 0;
    /** Ceiling on any request's deadline; 0 = uncapped. */
    std::uint32_t max_deadline_ms = 0;
    /** Fused backend for kMulti requests: kAuto compiles the query set
     *  into one product automaton and falls back to per-query lanes only
     *  when the set trips the product state cap. */
    multi::FusedBackend fused_backend = multi::FusedBackend::kAuto;
    /**
     * Cap on the total projected payload of one kWantValues response.
     * Overlapping descendant matches can make the value set quadratic in
     * the document ($..a over deep nesting re-ships every enclosing
     * subtree), so an uncapped response would let a small request frame
     * command an arbitrarily large reply. At the cap the values body is
     * cut (document-order prefix) and kValuesTruncated is set;
     * match_count and offsets are unaffected. 0 = uncapped.
     */
    std::size_t max_projected_bytes = std::size_t{64} << 20;
};

/** Routes decoded requests to engines. Stateless apart from the shared
 *  cache reference: one dispatcher serves every worker thread. */
class Dispatcher {
public:
    Dispatcher(ServePolicy policy, QueryCache& cache)
        : policy_(policy), cache_(&cache)
    {
    }

    /**
     * Executes @p request and builds the response. Never throws on
     * request content: compile failures become kBadQuery, anything
     * unexpected kInternal. @p scratch is the calling worker's reusable
     * state; @p drain_cancel (optional) is the server's drain token,
     * threaded into the run budget.
     */
    Response handle(const Request& request, RunScratch& scratch,
                    const CancelToken* drain_cancel = nullptr) const;

    const ServePolicy& policy() const noexcept { return policy_; }

private:
    Response dispatch(const Request& request, RunScratch& scratch,
                      const CancelToken* drain_cancel) const;

    /** The request's effective limits: defaults tightened by the frame. */
    EngineLimits effective_limits(const Request& request) const;

    /** The request's run budget (deadline from handle() entry + drain
     *  token); inactive when neither is configured. */
    RunBudget effective_budget(const Request& request,
                               const CancelToken* drain_cancel) const;

    ServePolicy policy_;
    QueryCache* cache_;
};

}  // namespace descend::serve
