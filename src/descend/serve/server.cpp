#include "descend/serve/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <iterator>
#include <utility>

namespace descend::serve {
namespace {

// epoll user-data ids of the non-connection fds (connections start at 16).
constexpr std::uint64_t kListenId = 1;
constexpr std::uint64_t kWakeId = 2;
constexpr std::uint64_t kShutdownId = 3;

void set_nonblocking(int fd)
{
    int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags >= 0) {
        ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
    }
}

/** Clears an eventfd's counter (level-triggered epoll would spin else). */
void drain_eventfd(int fd)
{
    std::uint64_t value = 0;
    while (::read(fd, &value, sizeof(value)) == sizeof(value)) {
    }
}

}  // namespace

/** Event-thread-owned per-connection state. */
struct Server::Connection {
    int fd = -1;
    std::uint64_t id = 0;
    FrameReader reader;
    /** Response bytes queued for flushing ([out_pos, end) unsent). */
    std::vector<std::uint8_t> out;
    std::size_t out_pos = 0;
    /** A request of this connection is with the workers. */
    bool busy = false;
    /** Close once `out` is flushed (poisoned, or drain rejection). */
    bool close_after_flush = false;
    /** Read side disarmed (busy backpressure or poisoned). */
    bool reading = true;
    /** What the epoll registration currently asks for. */
    std::uint32_t armed_events = 0;
};

Server::Server(ServerConfig config)
    : config_(std::move(config)),
      cache_(config_.cache_capacity, config_.cache_shards),
      dispatcher_(config_.policy, cache_)
{
}

Server::~Server()
{
    shutdown();
    wait();
    if (epoll_fd_ >= 0) {
        ::close(epoll_fd_);
    }
    if (wake_fd_ >= 0) {
        ::close(wake_fd_);
    }
    if (shutdown_fd_ >= 0) {
        ::close(shutdown_fd_);
    }
    if (listen_fd_ >= 0) {
        ::close(listen_fd_);
    }
    if (!config_.unix_path.empty()) {
        ::unlink(config_.unix_path.c_str());
    }
}

bool Server::open_listener(std::string& error)
{
    if (!config_.unix_path.empty()) {
        if (config_.unix_path.size() >= sizeof(sockaddr_un{}.sun_path)) {
            error = "unix socket path too long: " + config_.unix_path;
            return false;
        }
        listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
        if (listen_fd_ < 0) {
            error = std::string("socket: ") + std::strerror(errno);
            return false;
        }
        ::unlink(config_.unix_path.c_str());
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        std::memcpy(addr.sun_path, config_.unix_path.c_str(),
                    config_.unix_path.size() + 1);
        if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                   sizeof(addr)) != 0) {
            error = "bind " + config_.unix_path + ": " + std::strerror(errno);
            return false;
        }
    } else {
        listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
        if (listen_fd_ < 0) {
            error = std::string("socket: ") + std::strerror(errno);
            return false;
        }
        int one = 1;
        ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_port = htons(config_.tcp_port);
        if (::inet_pton(AF_INET, config_.tcp_host.c_str(), &addr.sin_addr) !=
            1) {
            error = "bad listen address: " + config_.tcp_host;
            return false;
        }
        if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                   sizeof(addr)) != 0) {
            error = "bind " + config_.tcp_host + ":" +
                    std::to_string(config_.tcp_port) + ": " +
                    std::strerror(errno);
            return false;
        }
        sockaddr_in bound{};
        socklen_t bound_len = sizeof(bound);
        if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                          &bound_len) == 0) {
            bound_port_ = ntohs(bound.sin_port);
        }
    }
    if (::listen(listen_fd_, 128) != 0) {
        error = std::string("listen: ") + std::strerror(errno);
        return false;
    }
    set_nonblocking(listen_fd_);
    return true;
}

bool Server::start(std::string& error)
{
    if (!open_listener(error)) {
        return false;
    }
    epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
    wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    shutdown_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    if (epoll_fd_ < 0 || wake_fd_ < 0 || shutdown_fd_ < 0) {
        error = std::string("epoll/eventfd: ") + std::strerror(errno);
        return false;
    }
    epoll_event event{};
    event.events = EPOLLIN;
    event.data.u64 = kListenId;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &event);
    event.data.u64 = kWakeId;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &event);
    event.data.u64 = kShutdownId;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, shutdown_fd_, &event);

    std::size_t workers = config_.workers;
    if (workers == 0) {
        workers = std::thread::hardware_concurrency();
        if (workers == 0) {
            workers = 2;
        }
    }
    running_.store(true, std::memory_order_release);
    workers_.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i) {
        workers_.emplace_back([this] { worker_loop(); });
    }
    event_thread_ = std::thread([this] { event_loop(); });
    return true;
}

void Server::shutdown() noexcept
{
    if (shutdown_fd_ < 0) {
        return;
    }
    // One write, no locks, no allocation: callable from a signal handler.
    std::uint64_t one = 1;
    [[maybe_unused]] ssize_t n =
        ::write(shutdown_fd_, &one, sizeof(one));
}

void Server::wait()
{
    if (event_thread_.joinable()) {
        event_thread_.join();
    }
}

ServerCounters Server::counters() const
{
    ServerCounters counters;
    counters.connections_accepted =
        accepted_.load(std::memory_order_relaxed);
    counters.requests_served = served_.load(std::memory_order_relaxed);
    counters.protocol_errors =
        protocol_errors_.load(std::memory_order_relaxed);
    counters.shutdown_rejections =
        shutdown_rejections_.load(std::memory_order_relaxed);
    return counters;
}

void Server::worker_loop()
{
    // The worker's whole point: one scratch (padded document arena +
    // offset sinks) reused across every request this thread ever serves.
    RunScratch scratch;
    for (;;) {
        Job job;
        {
            std::unique_lock<std::mutex> lock(jobs_mutex_);
            jobs_cv_.wait(lock,
                          [this] { return stop_workers_ || !jobs_.empty(); });
            if (jobs_.empty()) {
                return;  // stop requested and nothing left to serve
            }
            job = std::move(jobs_.front());
            jobs_.pop_front();
        }
        Response response =
            dispatcher_.handle(job.request, scratch, &drain_cancel_);
        Completion completion;
        completion.conn_id = job.conn_id;
        completion.bytes = encode_response(response);
        {
            std::lock_guard<std::mutex> lock(completions_mutex_);
            completions_.push_back(std::move(completion));
        }
        std::uint64_t one = 1;
        [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
    }
}

void Server::update_epoll(Connection& conn)
{
    std::uint32_t wanted = 0;
    if (conn.reading && !conn.busy) {
        wanted |= EPOLLIN;
    }
    if (conn.out_pos < conn.out.size()) {
        wanted |= EPOLLOUT;
    }
    if (wanted == conn.armed_events) {
        return;
    }
    epoll_event event{};
    event.events = wanted;
    event.data.u64 = conn.id;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.fd, &event);
    conn.armed_events = wanted;
}

void Server::close_connection(std::uint64_t conn_id)
{
    auto found = connections_.find(conn_id);
    if (found == connections_.end()) {
        return;
    }
    // A busy connection's completion may still be in flight; dropping the
    // entry is enough — drain_completions() tolerates a missing id (the
    // in_flight_ count is settled there either way).
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, found->second->fd, nullptr);
    ::close(found->second->fd);
    connections_.erase(found);
}

void Server::queue_response(Connection& conn, const Response& response)
{
    std::vector<std::uint8_t> bytes = encode_response(response);
    if (conn.out_pos == conn.out.size()) {
        conn.out = std::move(bytes);
        conn.out_pos = 0;
    } else {
        conn.out.insert(conn.out.end(), bytes.begin(), bytes.end());
    }
    update_epoll(conn);
}

void Server::launch_request(Connection& conn)
{
    Request request = conn.reader.take_request();
    if (draining_) {
        shutdown_rejections_.fetch_add(1, std::memory_order_relaxed);
        Response response;
        response.serve_status = ServeStatus::kShuttingDown;
        conn.close_after_flush = true;
        conn.reading = false;
        queue_response(conn, response);
        return;
    }
    conn.busy = true;
    ++in_flight_;
    {
        std::lock_guard<std::mutex> lock(jobs_mutex_);
        jobs_.push_back(Job{conn.id, std::move(request)});
    }
    jobs_cv_.notify_one();
    update_epoll(conn);
}

void Server::accept_ready()
{
    for (;;) {
        int fd = ::accept4(listen_fd_, nullptr, nullptr,
                           SOCK_NONBLOCK | SOCK_CLOEXEC);
        if (fd < 0) {
            return;  // EAGAIN (or a transient error; epoll retries us)
        }
        accepted_.fetch_add(1, std::memory_order_relaxed);
        auto conn = std::make_unique<Connection>();
        conn->fd = fd;
        conn->id = next_conn_id_++;
        conn->reader = FrameReader(config_.frame_limits);
        epoll_event event{};
        event.events = EPOLLIN;
        event.data.u64 = conn->id;
        ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &event);
        conn->armed_events = EPOLLIN;
        connections_.emplace(conn->id, std::move(conn));
    }
}

void Server::connection_readable(Connection& conn)
{
    std::uint8_t buffer[64 << 10];
    for (;;) {
        ssize_t n = ::recv(conn.fd, buffer, sizeof(buffer), 0);
        if (n > 0) {
            conn.reader.feed(buffer, static_cast<std::size_t>(n));
            if (conn.reader.state() == FrameReader::State::kError) {
                break;
            }
            if (conn.reader.state() == FrameReader::State::kReady) {
                break;  // one request at a time; leftover stays buffered
            }
            continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
            break;
        }
        if (n < 0 && errno == EINTR) {
            continue;
        }
        // EOF (or a hard error): a frame cut off mid-way still gets its
        // structured kTruncatedFrame response attempt; a clean boundary
        // just closes.
        conn.reader.finish();
        if (conn.reader.state() != FrameReader::State::kError &&
            !conn.busy && conn.out_pos == conn.out.size()) {
            close_connection(conn.id);
            return;
        }
        conn.reading = false;
        conn.close_after_flush = true;
        break;
    }
    if (conn.reader.state() == FrameReader::State::kError) {
        protocol_errors_.fetch_add(1, std::memory_order_relaxed);
        Response response;
        response.serve_status = conn.reader.error();
        conn.reading = false;
        conn.close_after_flush = true;
        queue_response(conn, response);
        return;
    }
    if (conn.reader.state() == FrameReader::State::kReady && !conn.busy) {
        launch_request(conn);
        return;
    }
    update_epoll(conn);
}

void Server::connection_writable(Connection& conn)
{
    while (conn.out_pos < conn.out.size()) {
        ssize_t n = ::send(conn.fd, conn.out.data() + conn.out_pos,
                           conn.out.size() - conn.out_pos, MSG_NOSIGNAL);
        if (n > 0) {
            conn.out_pos += static_cast<std::size_t>(n);
            continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
            update_epoll(conn);
            return;
        }
        if (n < 0 && errno == EINTR) {
            continue;
        }
        close_connection(conn.id);  // peer is gone; nothing to flush to
        return;
    }
    conn.out.clear();
    conn.out_pos = 0;
    if (conn.close_after_flush && !conn.busy) {
        close_connection(conn.id);
        return;
    }
    update_epoll(conn);
}

void Server::drain_completions()
{
    std::vector<Completion> batch;
    {
        std::lock_guard<std::mutex> lock(completions_mutex_);
        batch.swap(completions_);
    }
    for (Completion& completion : batch) {
        --in_flight_;
        served_.fetch_add(1, std::memory_order_relaxed);
        auto found = connections_.find(completion.conn_id);
        if (found == connections_.end()) {
            continue;  // the connection died while its request ran
        }
        Connection& conn = *found->second;
        conn.busy = false;
        if (conn.out_pos == conn.out.size()) {
            conn.out = std::move(completion.bytes);
            conn.out_pos = 0;
        } else {
            conn.out.insert(conn.out.end(), completion.bytes.begin(),
                            completion.bytes.end());
        }
        // Flush eagerly: the socket buffer is almost always writable, so
        // most responses never need an EPOLLOUT round-trip.
        connection_writable(conn);
        auto still = connections_.find(completion.conn_id);
        if (still == connections_.end()) {
            continue;
        }
        // The reader may already hold the client's next pipelined frame.
        if (still->second->reader.state() == FrameReader::State::kReady &&
            !still->second->busy) {
            launch_request(*still->second);
        } else {
            update_epoll(*still->second);
        }
    }
}

void Server::event_loop()
{
    using Clock = std::chrono::steady_clock;
    epoll_event events[64];
    for (;;) {
        int timeout_ms = -1;
        if (draining_) {
            Clock::time_point next =
                drain_cancelled_ ? hard_deadline_ : drain_deadline_;
            auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                            next - Clock::now())
                            .count();
            timeout_ms = left < 10 ? 10 : static_cast<int>(left);
        }
        int ready = ::epoll_wait(epoll_fd_, events,
                                 static_cast<int>(std::size(events)),
                                 timeout_ms);
        if (ready < 0 && errno != EINTR) {
            break;  // epoll itself failed; nothing sane left to do
        }
        for (int i = 0; i < ready; ++i) {
            const std::uint64_t id = events[i].data.u64;
            if (id == kListenId) {
                accept_ready();
                continue;
            }
            if (id == kWakeId) {
                drain_eventfd(wake_fd_);
                drain_completions();
                continue;
            }
            if (id == kShutdownId) {
                drain_eventfd(shutdown_fd_);
                if (!draining_) {
                    draining_ = true;
                    drain_deadline_ = Clock::now() + std::chrono::milliseconds(
                                                        config_.drain_ms);
                    hard_deadline_ =
                        drain_deadline_ + std::chrono::milliseconds(1000);
                    // Stop accepting: the listener goes away entirely.
                    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_,
                                nullptr);
                    ::close(listen_fd_);
                    listen_fd_ = -1;
                }
                continue;
            }
            auto found = connections_.find(id);
            if (found == connections_.end()) {
                continue;  // closed earlier in this batch
            }
            Connection& conn = *found->second;
            if ((events[i].events & (EPOLLHUP | EPOLLERR)) != 0 &&
                (events[i].events & EPOLLIN) == 0) {
                if (!conn.busy) {
                    close_connection(id);
                    continue;
                }
                conn.reading = false;
                conn.close_after_flush = true;
            }
            if ((events[i].events & EPOLLIN) != 0) {
                connection_readable(conn);
            }
            auto still = connections_.find(id);
            if (still != connections_.end() &&
                (events[i].events & EPOLLOUT) != 0) {
                connection_writable(*still->second);
            }
        }
        if (draining_) {
            const Clock::time_point now = Clock::now();
            if (!drain_cancelled_ && now >= drain_deadline_) {
                // Patience over: every in-flight engine run sees this at
                // its next batch refill and returns kCancelled.
                drain_cancel_.cancel();
                drain_cancelled_ = true;
            }
            bool flushed = true;
            for (const auto& [id, conn] : connections_) {
                if (conn->busy || conn->out_pos < conn->out.size()) {
                    flushed = false;
                    break;
                }
            }
            if ((in_flight_ == 0 && flushed) || now >= hard_deadline_) {
                break;
            }
        }
    }
    // Stop the workers (queue is empty by the drain condition; on the
    // hard-deadline path leftovers are abandoned deliberately).
    {
        std::lock_guard<std::mutex> lock(jobs_mutex_);
        stop_workers_ = true;
        jobs_.clear();
    }
    jobs_cv_.notify_all();
    for (std::thread& worker : workers_) {
        worker.join();
    }
    std::vector<std::uint64_t> open;
    open.reserve(connections_.size());
    for (const auto& [id, conn] : connections_) {
        open.push_back(id);
    }
    for (std::uint64_t id : open) {
        close_connection(id);
    }
    running_.store(false, std::memory_order_release);
}

}  // namespace descend::serve
