#include "descend/serve/protocol.h"

#include <cstring>

namespace descend::serve {
namespace {

// Little-endian field accessors. Byte-wise so the decoder is alignment-
// and endianness-agnostic (frames arrive at arbitrary buffer offsets).

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t value)
{
    out.push_back(static_cast<std::uint8_t>(value));
    out.push_back(static_cast<std::uint8_t>(value >> 8));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t value)
{
    for (int shift = 0; shift < 32; shift += 8) {
        out.push_back(static_cast<std::uint8_t>(value >> shift));
    }
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t value)
{
    for (int shift = 0; shift < 64; shift += 8) {
        out.push_back(static_cast<std::uint8_t>(value >> shift));
    }
}

std::uint16_t get_u16(const std::uint8_t* data)
{
    return static_cast<std::uint16_t>(data[0] |
                                      (static_cast<std::uint16_t>(data[1]) << 8));
}

std::uint32_t get_u32(const std::uint8_t* data)
{
    std::uint32_t value = 0;
    for (int i = 3; i >= 0; --i) {
        value = (value << 8) | data[i];
    }
    return value;
}

std::uint64_t get_u64(const std::uint8_t* data)
{
    std::uint64_t value = 0;
    for (int i = 7; i >= 0; --i) {
        value = (value << 8) | data[i];
    }
    return value;
}

}  // namespace

std::vector<std::uint8_t> encode_request(const Request& request)
{
    std::vector<std::uint8_t> out;
    out.reserve(kRequestHeaderSize + request.query.size() + request.body.size());
    put_u32(out, kRequestMagic);
    put_u16(out, kVersion);
    put_u16(out, static_cast<std::uint16_t>(request.mode));
    put_u32(out, request.flags);
    put_u32(out, request.deadline_ms);
    put_u32(out, request.max_depth);
    put_u64(out, request.max_matches);
    put_u32(out, static_cast<std::uint32_t>(request.query.size()));
    put_u32(out, 0);  // reserved
    put_u64(out, request.body.size());
    out.insert(out.end(), request.query.begin(), request.query.end());
    out.insert(out.end(), request.body.begin(), request.body.end());
    return out;
}

std::vector<std::uint8_t> encode_response(const Response& response)
{
    std::uint64_t values_len = 0;
    for (const std::string& value : response.values) {
        values_len += 4 + value.size();
    }
    std::vector<std::uint8_t> out;
    out.reserve(kResponseHeaderSize +
                (response.has_values() ? 8 + values_len : 0) +
                response.offsets.size() * 8 + response.stats_json.size());
    put_u32(out, kResponseMagic);
    put_u16(out, kVersion);
    put_u16(out, static_cast<std::uint16_t>(response.serve_status));
    put_u16(out, static_cast<std::uint16_t>(response.engine_status.code));
    put_u16(out, response.flags);
    put_u32(out, static_cast<std::uint32_t>(response.stats_json.size()));
    put_u64(out, response.engine_status.offset);
    put_u64(out, response.match_count);
    put_u64(out, response.offsets.size());
    if (response.has_values()) {
        put_u64(out, values_len);
        for (const std::string& value : response.values) {
            put_u32(out, static_cast<std::uint32_t>(value.size()));
            out.insert(out.end(), value.begin(), value.end());
        }
    }
    for (std::uint64_t offset : response.offsets) {
        put_u64(out, offset);
    }
    out.insert(out.end(), response.stats_json.begin(),
               response.stats_json.end());
    return out;
}

FrameReader::State FrameReader::feed(const std::uint8_t* data, std::size_t size)
{
    if (state_ == State::kError) {
        return state_;  // poisoned connection: discard everything further
    }
    if (size != 0) {
        buffer_.insert(buffer_.end(), data, data + size);
    }
    if (state_ == State::kReady) {
        return state_;  // a decoded request is waiting to be taken
    }
    parse();
    return state_;
}

FrameReader::State FrameReader::finish()
{
    if (state_ == State::kNeedMore && !buffer_.empty()) {
        return fail(ServeStatus::kTruncatedFrame);
    }
    return state_;
}

Request FrameReader::take_request()
{
    Request request = std::move(pending_);
    pending_ = Request{};
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(frame_size_));
    frame_size_ = 0;
    state_ = State::kNeedMore;
    parse();  // leftover bytes may already hold the next frame
    return request;
}

void FrameReader::parse()
{
    if (buffer_.size() < kRequestHeaderSize) {
        // Reject garbage as early as its first bytes allow: a stream that
        // cannot be the start of a frame should not be buffered until a
        // header's worth of junk has accumulated.
        if (!buffer_.empty()) {
            std::size_t check = buffer_.size() < 4 ? buffer_.size() : 4;
            const std::uint8_t magic_bytes[4] = {
                static_cast<std::uint8_t>(kRequestMagic),
                static_cast<std::uint8_t>(kRequestMagic >> 8),
                static_cast<std::uint8_t>(kRequestMagic >> 16),
                static_cast<std::uint8_t>(kRequestMagic >> 24)};
            if (std::memcmp(buffer_.data(), magic_bytes, check) != 0) {
                fail(ServeStatus::kBadMagic);
            }
        }
        return;
    }
    const std::uint8_t* header = buffer_.data();
    if (get_u32(header) != kRequestMagic) {
        fail(ServeStatus::kBadMagic);
        return;
    }
    if (get_u16(header + 4) != kVersion) {
        fail(ServeStatus::kBadVersion);
        return;
    }
    const std::uint16_t mode = get_u16(header + 6);
    if (mode > static_cast<std::uint16_t>(RequestMode::kNdjson)) {
        fail(ServeStatus::kBadMode);
        return;
    }
    const std::uint32_t query_len = get_u32(header + 28);
    if (get_u32(header + 32) != 0) {
        fail(ServeStatus::kBadReserved);
        return;
    }
    const std::uint64_t body_len = get_u64(header + 36);
    // Admission control from the header alone: an over-limit request is
    // rejected before its payload is ever buffered.
    if (query_len > limits_.max_query_bytes) {
        fail(ServeStatus::kQueryTooLarge);
        return;
    }
    if (body_len > limits_.max_body_bytes) {
        fail(ServeStatus::kBodyTooLarge);
        return;
    }
    const std::size_t total =
        kRequestHeaderSize + query_len + static_cast<std::size_t>(body_len);
    if (buffer_.size() < total) {
        return;  // kNeedMore
    }
    pending_.mode = static_cast<RequestMode>(mode);
    pending_.flags = get_u32(header + 8);
    pending_.deadline_ms = get_u32(header + 12);
    pending_.max_depth = get_u32(header + 16);
    pending_.max_matches = get_u64(header + 20);
    pending_.query.assign(
        reinterpret_cast<const char*>(header + kRequestHeaderSize), query_len);
    pending_.body.assign(reinterpret_cast<const char*>(header +
                                                       kRequestHeaderSize +
                                                       query_len),
                         static_cast<std::size_t>(body_len));
    frame_size_ = total;
    state_ = State::kReady;
}

bool decode_response(const std::uint8_t* data, std::size_t size,
                     Response& response, std::size_t& consumed,
                     const FrameLimits* limits)
{
    consumed = 0;
    if (size < kResponseHeaderSize) {
        return false;
    }
    if (get_u32(data) != kResponseMagic || get_u16(data + 4) != kVersion) {
        return false;
    }
    const std::uint16_t serve_status = get_u16(data + 6);
    if (serve_status >= kServeStatusCount) {
        return false;
    }
    const std::uint16_t engine_code = get_u16(data + 8);
    if (engine_code >= kStatusCodeCount) {
        return false;
    }
    const std::uint16_t flags = get_u16(data + 10);
    const std::uint32_t stats_len = get_u32(data + 12);
    const std::uint64_t offsets_count = get_u64(data + 32);

    // The values body sits between the header and the offsets; its length
    // prefix is admission-checked before a single value is buffered.
    std::size_t values_part = 0;
    std::uint64_t values_len = 0;
    if ((flags & kHasValues) != 0) {
        if (size - kResponseHeaderSize < 8) {
            return false;
        }
        values_len = get_u64(data + kResponseHeaderSize);
        if (limits != nullptr && values_len > limits->max_body_bytes) {
            return false;
        }
        if (values_len > size - kResponseHeaderSize - 8) {
            return false;
        }
        values_part = 8 + static_cast<std::size_t>(values_len);
    }
    // Overflow-safe total: the per-part bounds keep every product and sum
    // well under SIZE_MAX before they are combined.
    if (offsets_count > (size - kResponseHeaderSize - values_part) / 8) {
        return false;
    }
    const std::size_t total = kResponseHeaderSize + values_part +
                              static_cast<std::size_t>(offsets_count) * 8 +
                              stats_len;
    if (size < total) {
        return false;
    }
    response.serve_status = static_cast<ServeStatus>(serve_status);
    response.engine_status.code = static_cast<StatusCode>(engine_code);
    response.engine_status.offset = get_u64(data + 16);
    response.flags = flags;
    response.match_count = get_u64(data + 24);
    response.values.clear();
    const std::uint8_t* cursor = data + kResponseHeaderSize;
    if ((flags & kHasValues) != 0) {
        cursor += 8;
        const std::uint8_t* values_end =
            cursor + static_cast<std::size_t>(values_len);
        while (cursor < values_end) {
            if (values_end - cursor < 4) {
                return false;  // dangling length prefix
            }
            const std::uint32_t len = get_u32(cursor);
            cursor += 4;
            if (static_cast<std::size_t>(values_end - cursor) < len) {
                return false;  // value overruns the declared body
            }
            response.values.emplace_back(
                reinterpret_cast<const char*>(cursor), len);
            cursor += len;
        }
    }
    response.offsets.clear();
    response.offsets.reserve(static_cast<std::size_t>(offsets_count));
    for (std::uint64_t i = 0; i < offsets_count; ++i, cursor += 8) {
        response.offsets.push_back(get_u64(cursor));
    }
    response.stats_json.assign(reinterpret_cast<const char*>(cursor),
                               stats_len);
    consumed = total;
    return true;
}

}  // namespace descend::serve
