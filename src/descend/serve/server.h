/**
 * @file
 * The descend-serve daemon core: a long-lived query service over a Unix or
 * loopback TCP socket.
 *
 * Threading model — sockets and engines never share a thread:
 *
 *   - One *event thread* owns every fd. It epoll-waits (level-triggered)
 *     on the listener, the connections, and two eventfds (worker wakeup,
 *     shutdown), accepts, reads bytes into each connection's FrameReader,
 *     and writes queued response bytes back out. It never runs an engine.
 *   - N *worker threads* pop decoded requests from a queue, execute them
 *     through the shared Dispatcher (each worker owns one RunScratch, so
 *     padded document buffers and offset vectors are reused across every
 *     request the worker serves), encode the response bytes, and hand
 *     them back to the event thread through a completion queue + eventfd.
 *
 * Each connection has at most one request in flight: while a request is
 * with the workers the connection's read side is disarmed, so pipelining
 * clients are backpressured by the kernel socket buffer instead of
 * unbounded server-side buffering. A protocol violation poisons the
 * connection: the structured error response is flushed and the connection
 * closed — garbage never crashes the server (see protocol.h).
 *
 * Graceful drain: shutdown() is async-signal-safe (one eventfd write; the
 * daemon calls it straight from its SIGTERM handler). The event thread
 * then stops accepting, answers any *new* frame with kShuttingDown, and
 * lets in-flight requests finish until drain_ms elapses — at which point
 * the server's drain CancelToken (threaded by the dispatcher into every
 * request budget) fires and the engines return kCancelled at the next
 * batch boundary. Responses still flush; a final hard deadline bounds the
 * total drain regardless of client behaviour.
 */
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "descend/engine/scratch.h"
#include "descend/serve/dispatch.h"
#include "descend/serve/protocol.h"
#include "descend/serve/query_cache.h"
#include "descend/util/budget.h"

namespace descend::serve {

/** Everything the daemon needs to come up. */
struct ServerConfig {
    /** Non-empty: listen on this Unix socket path (existing file of the
     *  same name is replaced). Empty: listen on TCP tcp_host:tcp_port. */
    std::string unix_path;
    std::string tcp_host = "127.0.0.1";
    /** 0 picks an ephemeral port; tcp_port() reports the choice. */
    std::uint16_t tcp_port = 0;
    /** Worker threads; 0 = std::thread::hardware_concurrency(). */
    std::size_t workers = 0;
    /** Wire admission limits (checked from frame headers alone). */
    FrameLimits frame_limits;
    /** Engine defaults + tenant caps shared by every request. */
    ServePolicy policy;
    /** Compiled-automaton cache geometry. */
    std::size_t cache_capacity = 256;
    std::size_t cache_shards = 8;
    /** How long a drain lets in-flight requests finish before the drain
     *  CancelToken cuts them short. */
    std::uint32_t drain_ms = 5000;
};

/** Monotonic server-level tallies (the cache keeps its own). */
struct ServerCounters {
    std::uint64_t connections_accepted = 0;
    std::uint64_t requests_served = 0;
    /** Connections poisoned by a malformed frame. */
    std::uint64_t protocol_errors = 0;
    /** Frames answered kShuttingDown during a drain. */
    std::uint64_t shutdown_rejections = 0;
};

class Server {
public:
    explicit Server(ServerConfig config);
    ~Server();

    Server(const Server&) = delete;
    Server& operator=(const Server&) = delete;

    /**
     * Binds, listens, and spawns the event thread + workers. Returns false
     * with @p error set when the socket cannot be set up (nothing is
     * spawned then). Call at most once.
     */
    bool start(std::string& error);

    /**
     * Initiates the graceful drain. Async-signal-safe (a single eventfd
     * write) and idempotent; returns immediately — wait() observes the
     * actual termination.
     */
    void shutdown() noexcept;

    /** Joins the event thread (which joins the workers on its way out). */
    void wait();

    bool running() const noexcept
    {
        return running_.load(std::memory_order_acquire);
    }

    /** The bound TCP port (resolved when config asked for ephemeral 0);
     *  0 for Unix-socket servers. Valid after start(). */
    std::uint16_t tcp_port() const noexcept { return bound_port_; }

    ServerCounters counters() const;

    CacheStats cache_stats() const { return cache_.stats(); }

    const ServePolicy& policy() const noexcept
    {
        return dispatcher_.policy();
    }

private:
    struct Connection;

    struct Job {
        std::uint64_t conn_id = 0;
        Request request;
    };

    struct Completion {
        std::uint64_t conn_id = 0;
        std::vector<std::uint8_t> bytes;
    };

    bool open_listener(std::string& error);

    void event_loop();
    void worker_loop();

    void accept_ready();
    void connection_readable(Connection& conn);
    void connection_writable(Connection& conn);
    void drain_completions();
    /** Queues @p response's bytes on the connection for the event thread
     *  to flush. */
    void queue_response(Connection& conn, const Response& response);
    /** Hands the reader's ready request to the workers (or answers
     *  kShuttingDown during a drain). */
    void launch_request(Connection& conn);
    void update_epoll(Connection& conn);
    void close_connection(std::uint64_t conn_id);

    ServerConfig config_;
    QueryCache cache_;
    Dispatcher dispatcher_;
    /** Fired when the drain deadline passes; rides every request budget. */
    CancelToken drain_cancel_;

    int listen_fd_ = -1;
    int epoll_fd_ = -1;
    /** Worker → event thread doorbell (completions are ready). */
    int wake_fd_ = -1;
    /** shutdown() → event thread doorbell. */
    int shutdown_fd_ = -1;
    std::uint16_t bound_port_ = 0;

    std::thread event_thread_;
    std::vector<std::thread> workers_;

    std::mutex jobs_mutex_;
    std::condition_variable jobs_cv_;
    std::deque<Job> jobs_;
    bool stop_workers_ = false;

    std::mutex completions_mutex_;
    std::vector<Completion> completions_;

    std::atomic<bool> running_{false};
    std::atomic<std::uint64_t> accepted_{0};
    std::atomic<std::uint64_t> served_{0};
    std::atomic<std::uint64_t> protocol_errors_{0};
    std::atomic<std::uint64_t> shutdown_rejections_{0};

    // --- event-thread-only state (no locking; one owner) ---
    std::unordered_map<std::uint64_t, std::unique_ptr<Connection>> connections_;
    std::uint64_t next_conn_id_ = 16;
    bool draining_ = false;
    bool drain_cancelled_ = false;
    std::chrono::steady_clock::time_point drain_deadline_{};
    std::chrono::steady_clock::time_point hard_deadline_{};
    /** Requests queued or running with the workers. */
    std::size_t in_flight_ = 0;
};

}  // namespace descend::serve
