#include "descend/serve/dispatch.h"

#include <cstddef>
#include <exception>
#include <vector>

#include "descend/multi/fused.h"
#include "descend/obs/report.h"
#include "descend/project/span.h"
#include "descend/simd/dispatch.h"
#include "descend/stream/record_splitter.h"
#include "descend/stream/stream_executor.h"
#include "descend/stream/stream_sink.h"
#include "descend/util/errors.h"

namespace descend::serve {
namespace {

/** Folds the cache outcome into a run's counter registry, so per-request
 *  stats reports carry it (the cache's own atomics hold the aggregate). */
void tally_cache(obs::Counters& counters, bool hit)
{
    counters.add(hit ? obs::Counter::kServeCacheHits
                     : obs::Counter::kServeCacheMisses);
}

/**
 * Accumulates projected value slices into a response under the policy
 * cap. Once the cap trips, remaining matches are not even extended — the
 * truncation exists precisely so a small request cannot command
 * quadratic span-extension work plus an unbounded reply.
 */
struct ResponseValues {
    Response& response;
    std::size_t cap;  // 0 = uncapped
    std::size_t total = 0;
    bool truncated = false;

    void add(project::SpanExtender& extender, std::size_t offset)
    {
        if (truncated) {
            return;
        }
        const project::ValueSpan span = extender.extend(offset);
        const std::string_view slice = extender.slice(span);
        if (cap != 0 && slice.size() > cap - total) {
            truncated = true;
            response.flags |= kValuesTruncated;
            return;
        }
        total += slice.size();
        response.values.emplace_back(slice);
    }
};

}  // namespace

Response Dispatcher::handle(const Request& request, RunScratch& scratch,
                            const CancelToken* drain_cancel) const
{
    try {
        return dispatch(request, scratch, drain_cancel);
    } catch (const QueryError&) {
        // Compile failures (and set-level compile limits below) are the
        // tenant's problem, reported structurally; the connection and the
        // server outlive them.
        Response response;
        response.serve_status = ServeStatus::kBadQuery;
        return response;
    } catch (const LimitError&) {
        Response response;
        response.serve_status = ServeStatus::kBadQuery;
        return response;
    } catch (const std::exception&) {
        Response response;
        response.serve_status = ServeStatus::kInternal;
        return response;
    }
}

EngineLimits Dispatcher::effective_limits(const Request& request) const
{
    // Tenant governance: a request's limits may only tighten the server
    // defaults — 0 means "server default", anything else is clamped to it.
    EngineLimits limits = policy_.engine.limits;
    if (request.max_depth != 0 && request.max_depth < limits.max_depth) {
        limits.max_depth = request.max_depth;
    }
    if (request.max_matches != 0 &&
        request.max_matches < limits.max_match_count) {
        limits.max_match_count =
            static_cast<std::size_t>(request.max_matches);
    }
    return limits;
}

RunBudget Dispatcher::effective_budget(const Request& request,
                                       const CancelToken* drain_cancel) const
{
    // Same tightening rule for time: 0 falls back to the server default,
    // and the tenant cap bounds both (an uncapped request under a
    // configured cap gets exactly the cap).
    std::uint32_t ms = request.deadline_ms != 0 ? request.deadline_ms
                                                : policy_.default_deadline_ms;
    if (policy_.max_deadline_ms != 0 &&
        (ms == 0 || ms > policy_.max_deadline_ms)) {
        ms = policy_.max_deadline_ms;
    }
    if (ms != 0) {
        return RunBudget::within_ms(ms, drain_cancel);
    }
    if (drain_cancel != nullptr) {
        return RunBudget::with_cancel(drain_cancel);
    }
    return RunBudget{};
}

Response Dispatcher::dispatch(const Request& request, RunScratch& scratch,
                              const CancelToken* drain_cancel) const
{
    EngineOptions options = policy_.engine;
    options.limits = effective_limits(request);
    // Governance travels as an explicit per-run budget (below), never
    // through the cached engines' options — entries are shared across
    // requests with different deadlines.
    options.budget = RunBudget{};

    const RunBudget budget = effective_budget(request, drain_cancel);

    bool hit = false;
    CachedQueryPtr entry = cache_->lookup(request.mode, request.query,
                                          options, hit,
                                          policy_.fused_backend);

    Response response;
    if (hit) {
        response.flags |= kCacheHit;
    }

    const PaddedView document = scratch.document.assign(request.body);

    switch (request.mode) {
        case RequestMode::kSingle: {
            scratch.matches.reset();
            RunStats stats = entry->engine->run_with_stats(
                document, scratch.matches, budget);
            tally_cache(stats.counters, hit);
            response.engine_status = stats.status;
            response.match_count = scratch.matches.size();
            if (request.want_offsets()) {
                response.offsets.assign(scratch.matches.offsets().begin(),
                                        scratch.matches.offsets().end());
            }
            if (request.want_values()) {
                response.flags |= kHasValues;
                project::SpanExtender extender(
                    document, simd::kernels_for(options.simd),
                    &stats.counters);
                ResponseValues values{response, policy_.max_projected_bytes};
                for (std::size_t offset : scratch.matches.offsets()) {
                    values.add(extender, offset);
                }
            }
            if (request.want_stats()) {
                obs::RunReport report;
                report.engine = entry->engine->name();
                report.document_bytes = request.body.size();
                report.matches = scratch.matches.size();
                report.stats = stats;
                response.stats_json = obs::to_json(report);
            }
            break;
        }
        case RequestMode::kMulti: {
            const std::size_t num_queries =
                entry->multi_engine->query_set().size();
            if (request.want_offsets() || request.want_values()) {
                multi::CollectingMultiSink sink(num_queries);
                RunStats stats = entry->multi_engine->run_with_stats(
                    document, sink, budget);
                tally_cache(stats.counters, hit);
                response.engine_status = stats.status;
                for (std::size_t q = 0; q < num_queries; ++q) {
                    if (request.want_offsets()) {
                        for (std::size_t offset : sink.offsets(q)) {
                            response.offsets.push_back(q);
                            response.offsets.push_back(offset);
                        }
                    }
                    response.match_count += sink.offsets(q).size();
                }
                if (request.want_values()) {
                    // Per-owner fanout: values grouped per query in set
                    // order, document order within — the same convention
                    // as the (query, offset) pairs above.
                    response.flags |= kHasValues;
                    project::SpanExtender extender(
                        document, simd::kernels_for(options.simd),
                        &stats.counters);
                    ResponseValues values{response,
                                          policy_.max_projected_bytes};
                    for (std::size_t q = 0; q < num_queries; ++q) {
                        for (std::size_t offset : sink.offsets(q)) {
                            values.add(extender, offset);
                        }
                    }
                }
                if (request.want_stats()) {
                    obs::RunReport report;
                    report.engine = entry->multi_engine->name();
                    report.document_bytes = request.body.size();
                    report.matches =
                        static_cast<std::size_t>(response.match_count);
                    report.stats = stats;
                    response.stats_json = obs::to_json(report);
                }
            } else {
                multi::CountingMultiSink sink(num_queries);
                RunStats stats = entry->multi_engine->run_with_stats(
                    document, sink, budget);
                tally_cache(stats.counters, hit);
                response.engine_status = stats.status;
                response.match_count = sink.total();
                if (request.want_stats()) {
                    obs::RunReport report;
                    report.engine = entry->multi_engine->name();
                    report.document_bytes = request.body.size();
                    report.matches = sink.total();
                    report.stats = stats;
                    response.stats_json = obs::to_json(report);
                }
            }
            break;
        }
        case RequestMode::kNdjson: {
            // A per-request executor over the *cached* automaton (a table
            // copy, not a recompilation). One inline worker: the daemon
            // parallelizes across requests, not within one.
            stream::StreamOptions stream_options;
            stream_options.threads = 1;
            stream_options.engine = options;
            stream_options.policy = stream::ErrorPolicy::kSkipRecord;
            stream_options.stream_budget = budget;
            stream::StreamExecutor executor(entry->engine->compiled_query(),
                                            stream_options);
            const std::vector<stream::RecordSpan> records =
                stream::split_records(document,
                                      simd::kernels_for(options.simd));
            stream::CollectingStreamSink sink;
            stream::StreamResult result =
                executor.run_records(document, records, sink);
            if (result.first_error_record != stream::StreamResult::kNone) {
                // The protocol reports one engine status per request; for a
                // stream that is the first failing record, at its absolute
                // stream position.
                response.engine_status.code = result.first_error.code;
                response.engine_status.offset =
                    result.first_error_span_begin + result.first_error.offset;
            }
            response.match_count = result.matches;
            if (request.want_offsets()) {
                response.offsets.reserve(sink.matches().size());
                for (const auto& match : sink.matches()) {
                    response.offsets.push_back(records[match.record].begin +
                                               match.offset);
                }
            }
            obs::Counters projection_counters;
            if (request.want_values()) {
                // Extension runs over each record's SUBVIEW (the record-
                // boundary contract, project/span.h): a match at a
                // record's last byte cannot scan into the next record.
                response.flags |= kHasValues;
                ResponseValues values{response, policy_.max_projected_bytes};
                const simd::Kernels& kernels =
                    simd::kernels_for(options.simd);
                for (const auto& match : sink.matches()) {
                    const stream::RecordSpan& span = records[match.record];
                    project::SpanExtender extender(
                        document.subview(span.begin, span.end - span.begin),
                        kernels, &projection_counters);
                    values.add(extender, match.offset);
                }
            }
            if (request.want_stats()) {
                obs::StreamReport report;
                report.engine = executor.engine().name();
                report.document_bytes = request.body.size();
                report.records = result.records;
                report.matches = result.matches;
                report.failed_records = result.failed_records;
                report.record_blocks = result.record_blocks;
                report.counters = result.counters;
                report.counters.merge(projection_counters);
                tally_cache(report.counters, hit);
                report.timings = result.timings;
                report.error_tally = result.error_tally;
                response.stats_json = obs::to_json(report);
            }
            break;
        }
    }
    return response;
}

}  // namespace descend::serve
