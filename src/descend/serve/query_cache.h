/**
 * @file
 * The compiled-automaton cache: compile once, serve forever.
 *
 * Query compilation (parse → NFA → DFA → minimize → properties) costs
 * orders of magnitude more than a typical request's engine run, so a
 * long-lived service must never recompile a query it has already seen.
 * QueryCache is a sharded LRU keyed by the *request shape*: the query
 * text(s), the execution mode, and the effective EngineLimits (limits are
 * baked into engine construction, so two tenants with different limits
 * get distinct entries rather than shared, wrongly-limited ones).
 *
 * Multi-query keys are canonical: each line of the set is parsed and
 * re-serialized (query::Query::to_string), so subscriptions that differ
 * only in whitespace or selector spelling share one compiled product
 * automaton. Line order is preserved — response offsets are per input
 * index, so reordered sets are different request shapes — and a line
 * that does not parse keeps its raw text (the build step then reports
 * the QueryError; failed compilations are never cached). The fused
 * backend participates in the key too: an explicit lanes request must
 * not be served a product entry or vice versa.
 *
 * Entries are immutable once built and handed out as
 * shared_ptr<const CachedQuery>: an entry evicted while requests still
 * run on it stays alive until the last request drops its reference —
 * eviction never invalidates an in-flight run. The engines' const run
 * paths are stateless, so one entry serves any number of concurrent
 * requests.
 *
 * Sharding: the key hash picks one of N independently locked shards,
 * each with capacity/N, so concurrent workers rarely contend on one
 * mutex. Duplicate compilation is possible when two workers miss the
 * same key simultaneously (both compile, last insert wins) — accepted:
 * the duplicate work is bounded by one compile and the alternative, a
 * per-key in-flight latch, would serialize the common path.
 *
 * Hit/miss/eviction tallies are plain atomics (the cache is shared
 * across threads, so the per-run obs::Counters registry cannot hold
 * them); the server folds them into its stats report, and per-request
 * hits also ride the response's kCacheHit flag.
 */
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "descend/engine/main_engine.h"
#include "descend/multi/fused.h"
#include "descend/serve/protocol.h"

namespace descend::serve {

/**
 * One immutable cache entry: the compiled artifact for one request
 * shape. Exactly one of engine / multi_engine is set (single and NDJSON
 * requests share the single-query artifact; NDJSON requests additionally
 * copy engine->compiled_query() into a per-request StreamExecutor — a
 * table copy, not a recompilation).
 */
struct CachedQuery {
    /** Ready-to-run single-document engine (single-query shapes only). */
    std::unique_ptr<DescendEngine> engine;
    /** Ready-to-run fused engine (multi-query shapes only): the product
     *  backend unless the policy pinned lanes or the set tripped the
     *  product state cap. */
    std::unique_ptr<multi::FusedEngine> multi_engine;
};

using CachedQueryPtr = std::shared_ptr<const CachedQuery>;

/** Aggregate cache statistics (monotonic since construction). */
struct CacheStats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    /** Entries currently resident across all shards. */
    std::size_t entries = 0;
};

class QueryCache {
public:
    /**
     * @param capacity maximum resident entries across all shards (at
     *        least one per shard is always allowed).
     * @param shards   lock shards; clamped to [1, capacity].
     */
    explicit QueryCache(std::size_t capacity = 256, std::size_t shards = 8);

    /**
     * Returns the entry for (mode, query, options), compiling it on a
     * miss. @p hit reports whether a cached entry was reused. Throws
     * QueryError/LimitError when the query text does not compile (the
     * dispatcher maps that to ServeStatus::kBadQuery); failed
     * compilations are never cached.
     *
     * `options.limits` participates in the key; the rest of
     * EngineOptions is the server-wide configuration and is assumed
     * uniform across requests. @p backend selects the fused backend for
     * kMulti shapes (ignored otherwise).
     */
    CachedQueryPtr lookup(RequestMode mode, const std::string& query,
                          const EngineOptions& options, bool& hit,
                          multi::FusedBackend backend =
                              multi::FusedBackend::kAuto);

    CacheStats stats() const;

    /** Drops every entry (in-flight references stay valid). */
    void clear();

private:
    struct Shard {
        std::mutex mutex;
        /** LRU order, most recent at the front; pairs (key, entry). */
        std::list<std::pair<std::string, CachedQueryPtr>> order;
        std::unordered_map<std::string,
                           std::list<std::pair<std::string, CachedQueryPtr>>::
                               iterator>
            index;
    };

    static std::string make_key(RequestMode mode, const std::string& query,
                                const EngineLimits& limits,
                                multi::FusedBackend backend);

    static CachedQueryPtr build(RequestMode mode, const std::string& query,
                                const EngineOptions& options,
                                multi::FusedBackend backend);

    std::size_t shard_capacity_;
    std::vector<std::unique_ptr<Shard>> shards_;
    std::atomic<std::uint64_t> hits_{0};
    std::atomic<std::uint64_t> misses_{0};
    std::atomic<std::uint64_t> evictions_{0};
    std::atomic<std::size_t> entries_{0};
};

/** Splits a kMulti request's newline-separated query field into the set
 *  (blank lines are skipped; CR tolerated). Shared by cache and tests. */
std::vector<std::string> split_query_set(const std::string& queries);

}  // namespace descend::serve
