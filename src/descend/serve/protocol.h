/**
 * @file
 * The descend-serve wire protocol: length-prefixed binary frames carrying
 * one request (query text + document) or one response (status + match
 * count + optional offsets + optional obs stats) each.
 *
 * Design constraints, in order:
 *
 *  1. *Garbage never crashes the server.* Every field is range-checked
 *     before a single byte of payload is buffered; a malformed frame
 *     yields a structured ServeStatus, not an exception. The frame
 *     decoder is a pure incremental state machine (FrameReader) that is
 *     fuzzed directly (fuzz_engine --serve-frames).
 *  2. *Admission control before allocation.* The fixed header carries the
 *     query and body lengths, so over-limit requests are rejected from
 *     the 44 header bytes alone — an attacker cannot make the server
 *     buffer an oversized payload.
 *  3. *One dispatch path.* A 16-bit mode field selects single-document,
 *     fused multi-query, or NDJSON execution; everything else about the
 *     frame is identical, so the daemon, the bench client, the tests and
 *     the fuzzer share one encoder/decoder pair.
 *
 * All integers are little-endian. Layouts (offsets in bytes):
 *
 *   Request (header kRequestHeaderSize = 44):
 *     0  u32 magic        kRequestMagic
 *     4  u16 version      kVersion
 *     6  u16 mode         RequestMode
 *     8  u32 flags        RequestFlags bits
 *    12  u32 deadline_ms  0 = server default (clamped to the tenant cap)
 *    16  u32 max_depth    0 = server default   (EngineLimits::max_depth)
 *    20  u64 max_matches  0 = server default   (EngineLimits::max_match_count)
 *    28  u32 query_len    bytes of query text following the header
 *    32  u32 reserved     must be 0
 *    36  u64 body_len     bytes of document following the query
 *    44  query bytes, then body bytes
 *
 *   Response (header kResponseHeaderSize = 40):
 *     0  u32 magic        kResponseMagic
 *     4  u16 version      kVersion
 *     6  u16 serve_status ServeStatus
 *     8  u16 engine_code  StatusCode of the engine run (0 when not run)
 *    10  u16 flags        ResponseFlags bits (kCacheHit, kHasValues, ...)
 *    12  u32 stats_len    bytes of obs JSON after the offsets
 *    16  u64 engine_offset
 *    24  u64 match_count  total matches (across queries/records)
 *    32  u64 offsets_count  u64 offsets following the values body
 *    40  [values body — only when flags has kHasValues],
 *        then offsets (8 bytes each), then stats JSON bytes
 *
 * The values body (requested with kWantValues, announced with kHasValues)
 * carries the projected payloads — each match's complete subtree slice,
 * byte-verbatim (src/descend/project) — as one length-prefixed block
 * immediately after the 40-byte header:
 *
 *        ┌ 40 B header ─┐┌──────── values body ────────┐┌ offsets ┐┌ stats ┐
 *        │ ... flags ...││ u64 body_len                ││ u64 × n ││ JSON  │
 *        └──────────────┘│ ┌ u32 len ┐┌ value bytes  ┐ │└─────────┘└───────┘
 *                        │ └─────────┘└──────────────┘…│
 *                        └─────────────────────────────┘
 *
 * body_len counts only the (u32 len + bytes) entries, not itself. The
 * decoder admission-checks body_len against FrameLimits before buffering
 * a single value, mirroring the request side. A server whose per-response
 * projection cap (ServePolicy::max_projected_bytes) was hit sets
 * kValuesTruncated: the body holds a document-order prefix of the match
 * set's values, and match_count still reports the true total.
 *
 * Multi-query requests pack the set as newline-separated query texts in
 * the query field. NDJSON responses report offsets as *absolute* stream
 * positions (record span begin + intra-record offset), so one convention
 * serves all three modes. Multi-query values order matches the offsets
 * convention: grouped per query in set order (the per-owner fanout),
 * document order within a query.
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "descend/util/status.h"

namespace descend::serve {

inline constexpr std::uint32_t kRequestMagic = 0x76727344;   // "Dsrv"
inline constexpr std::uint32_t kResponseMagic = 0x73727344;  // "Dsrs"
inline constexpr std::uint16_t kVersion = 1;

inline constexpr std::size_t kRequestHeaderSize = 44;
inline constexpr std::size_t kResponseHeaderSize = 40;

/** Execution route of a request — the daemon's one dispatch switch. */
enum class RequestMode : std::uint16_t {
    /** One query over one JSON document (DescendEngine). */
    kSingle = 0,
    /** Newline-separated query set, fused (MultiDescendEngine). */
    kMulti = 1,
    /** One query over an NDJSON stream (StreamExecutor, inline). */
    kNdjson = 2,
};

/** Request flag bits. */
enum RequestFlags : std::uint32_t {
    /** Return the match offsets, not just the count. */
    kWantOffsets = 1u << 0,
    /** Return the obs JSON report as the response's stats payload. */
    kWantStats = 1u << 1,
    /** Return each match's projected value slice in the values body. */
    kWantValues = 1u << 2,
};

/** Response flag bits. */
enum ResponseFlags : std::uint16_t {
    /** The compiled automaton came from the cache (no compile ran). */
    kCacheHit = 1u << 0,
    /** A values body follows the header (the request set kWantValues). */
    kHasValues = 1u << 1,
    /** The values body was cut at the server's projection cap; it holds a
     *  document-order prefix of the match set's values. */
    kValuesTruncated = 1u << 2,
};

/**
 * Protocol-level outcome of one request. kOk means the frame was valid
 * and an engine run happened — its own outcome is the response's
 * engine_code/engine_offset (the EngineStatus taxonomy). Everything else
 * classifies why the request never reached an engine.
 */
enum class ServeStatus : std::uint16_t {
    kOk = 0,
    /** The frame did not start with kRequestMagic. */
    kBadMagic = 1,
    /** Unsupported protocol version. */
    kBadVersion = 2,
    /** Unknown RequestMode value. */
    kBadMode = 3,
    /** Nonzero reserved field (a future extension this version lacks). */
    kBadReserved = 4,
    /** query_len exceeds the server's query size cap. */
    kQueryTooLarge = 5,
    /** body_len exceeds the server's body size cap. */
    kBodyTooLarge = 6,
    /** The connection ended mid-frame. */
    kTruncatedFrame = 7,
    /** The query text failed to parse or compile. */
    kBadQuery = 8,
    /** The server is draining and no longer accepts work. */
    kShuttingDown = 9,
    /** Unexpected server-side failure. */
    kInternal = 10,
};

inline constexpr std::size_t kServeStatusCount =
    static_cast<std::size_t>(ServeStatus::kInternal) + 1;

/** Stable wire/report name of a serve status. */
constexpr const char* serve_status_name(ServeStatus status) noexcept
{
    switch (status) {
        case ServeStatus::kOk: return "ok";
        case ServeStatus::kBadMagic: return "bad magic";
        case ServeStatus::kBadVersion: return "bad version";
        case ServeStatus::kBadMode: return "bad mode";
        case ServeStatus::kBadReserved: return "bad reserved field";
        case ServeStatus::kQueryTooLarge: return "query too large";
        case ServeStatus::kBodyTooLarge: return "body too large";
        case ServeStatus::kTruncatedFrame: return "truncated frame";
        case ServeStatus::kBadQuery: return "bad query";
        case ServeStatus::kShuttingDown: return "shutting down";
        case ServeStatus::kInternal: return "internal error";
    }
    return "unknown";
}

/** One decoded request. Strings own their bytes — a Request outlives the
 *  connection buffer it was decoded from. */
struct Request {
    RequestMode mode = RequestMode::kSingle;
    std::uint32_t flags = 0;
    /** 0 = server default; otherwise clamped to the tenant cap. */
    std::uint32_t deadline_ms = 0;
    /** 0 = server default. */
    std::uint32_t max_depth = 0;
    /** 0 = server default. */
    std::uint64_t max_matches = 0;
    /** Query text; newline-separated set under RequestMode::kMulti. */
    std::string query;
    /** Document (or NDJSON stream) bytes. */
    std::string body;

    bool want_offsets() const noexcept { return (flags & kWantOffsets) != 0; }
    bool want_stats() const noexcept { return (flags & kWantStats) != 0; }
    bool want_values() const noexcept { return (flags & kWantValues) != 0; }
};

/** One decoded (or to-be-encoded) response. */
struct Response {
    ServeStatus serve_status = ServeStatus::kOk;
    /** Engine-run outcome; {kOk, 0} when no engine ran. */
    EngineStatus engine_status;
    std::uint16_t flags = 0;
    std::uint64_t match_count = 0;
    /** Present only when the request set kWantOffsets. */
    std::vector<std::uint64_t> offsets;
    /** Projected value slices (byte-verbatim subtrees), present only when
     *  the request set kWantValues; a document-order prefix when
     *  kValuesTruncated is set. */
    std::vector<std::string> values;
    /** Obs JSON; present only when the request set kWantStats. */
    std::string stats_json;

    bool cache_hit() const noexcept { return (flags & kCacheHit) != 0; }
    bool has_values() const noexcept { return (flags & kHasValues) != 0; }
    bool values_truncated() const noexcept
    {
        return (flags & kValuesTruncated) != 0;
    }
    bool ok() const noexcept
    {
        return serve_status == ServeStatus::kOk && engine_status.ok();
    }
};

/** Serializes @p request into wire bytes (header + query + body). */
std::vector<std::uint8_t> encode_request(const Request& request);

/** Serializes @p response into wire bytes. */
std::vector<std::uint8_t> encode_response(const Response& response);

/**
 * Size caps enforced while *decoding* (the server's admission limits;
 * the defaults are what loopback tests and the fuzzer use). Both caps
 * are checked from the fixed header before any payload is buffered.
 */
struct FrameLimits {
    std::size_t max_query_bytes = std::size_t{64} << 10;
    std::size_t max_body_bytes = std::size_t{64} << 20;
};

/**
 * Incremental request decoder: feed() bytes as they arrive (any chunking),
 * poll take_request() / error() after each feed. One FrameReader serves
 * one connection; after a frame completes, the reader resets itself and
 * decodes the next frame from any leftover bytes.
 *
 * Errors are sticky: once a frame violates the protocol the reader stays
 * in the error state (the connection is poisoned — the server responds
 * with the structured status and closes). finish() signals end-of-input,
 * turning an incomplete buffered frame into kTruncatedFrame.
 */
class FrameReader {
public:
    explicit FrameReader(FrameLimits limits = {}) : limits_(limits) {}

    /** State after a feed() / finish(). */
    enum class State : std::uint8_t {
        /** Mid-frame; feed more bytes. */
        kNeedMore,
        /** A full request is ready — collect it with take_request(). */
        kReady,
        /** Protocol violation; error() names it. Sticky. */
        kError,
    };

    /** Consumes @p size bytes from the wire. Returns the reader state. */
    State feed(const std::uint8_t* data, std::size_t size);

    /** Signals end-of-input: an incomplete frame becomes kTruncatedFrame;
     *  between frames this is a clean no-op (state stays kNeedMore). */
    State finish();

    State state() const noexcept { return state_; }

    /** The violation (valid only in the kError state). */
    ServeStatus error() const noexcept { return error_; }

    /**
     * Moves the decoded request out and starts decoding the next frame
     * from any already-buffered leftover bytes — after which the state is
     * kReady again if those bytes held another full frame.
     */
    Request take_request();

private:
    State fail(ServeStatus status) noexcept
    {
        state_ = State::kError;
        error_ = status;
        return state_;
    }

    /** Attempts to decode buffer_; advances state. */
    void parse();

    FrameLimits limits_;
    std::vector<std::uint8_t> buffer_;
    Request pending_;
    State state_ = State::kNeedMore;
    ServeStatus error_ = ServeStatus::kOk;
    /** Total frame size once the header is parsed; 0 before that. */
    std::size_t frame_size_ = 0;
};

/**
 * One-shot response decoder for clients (the bench load generator and the
 * tests). Returns false when @p data does not hold a complete, valid
 * response frame at @p consumed == 0; on success sets @p consumed to the
 * frame's size so pipelined responses can be decoded back-to-back.
 *
 * When @p limits is non-null, the values body is admission-checked from
 * its length prefix before any value is buffered: a body_len above
 * limits->max_body_bytes rejects the frame, mirroring the request-side
 * header checks.
 */
bool decode_response(const std::uint8_t* data, std::size_t size,
                     Response& response, std::size_t& consumed,
                     const FrameLimits* limits = nullptr);

}  // namespace descend::serve
