/**
 * @file
 * Product-automaton execution: the whole query set as ONE simulation.
 *
 * Where the lanes backend advances N depth stacks per structural event,
 * this engine advances a single product-state id over the set-compiled
 * automaton of product_query.h: one shared-alphabet label resolution, one
 * exception-list transition, one flags load — O(distinct automaton
 * states) of precomputation, O(1) work per event regardless of N.
 *
 * Skip decisions that lanes take by unanimous consensus are precomputed
 * here as per-state properties of the union automaton: `rejecting` IS
 * "nothing in the entire set can match below", so child skips need no
 * vote and can never be vetoed (fused_*_skip_suppressed does not exist in
 * this backend — a product state either certifies the skip for everyone
 * or takes the event). Matches fan out by iterating the target state's
 * subscriber bitset, then each distinct query's owner list — ascending,
 * so report order matches the lanes backend and N independent runs.
 */
#pragma once

#include <string>

#include "descend/multi/fused.h"
#include "descend/multi/product_query.h"
#include "descend/simd/dispatch.h"

namespace descend::multi {

class ProductDescendEngine final : public FusedEngine {
public:
    /** Compiles the product automaton for @p queries. @throws LimitError
     *  when subset construction exceeds @p max_states (see
     *  QuerySetCompiler::compile). */
    explicit ProductDescendEngine(MultiQuery queries, EngineOptions options = {},
                                  int max_states = 1 << 15);

    using FusedEngine::run;

    std::string name() const override;

    EngineStatus run(PaddedView document, MultiSink& sink) const override;
    RunStats run_with_stats(PaddedView document, MultiSink& sink) const override;
    RunStats run_with_stats(PaddedView document, MultiSink& sink,
                            const RunBudget& budget) const override;

    const MultiQuery& query_set() const noexcept override { return queries_; }
    const EngineOptions& options() const noexcept override { return options_; }

    const ProductAutomaton& automaton() const noexcept { return product_; }

private:
    RunStats dispatch(PaddedView document, MultiSink& sink,
                      const RunBudget& budget) const;

    MultiQuery queries_;
    ProductAutomaton product_;
    EngineOptions options_;
    const simd::Kernels* kernels_;
};

}  // namespace descend::multi
