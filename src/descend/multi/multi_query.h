/**
 * @file
 * A compiled JSONPath query *set* for fused single-pass execution.
 *
 * The set shares one union Alphabet (Alphabet::from_queries) across every
 * label and index the queries mention, while each query keeps its own
 * minimal CompiledQuery automaton. At runtime a structural event's label
 * is resolved against the shared alphabet exactly once; a per-query remap
 * table then translates the shared symbol into each automaton's private
 * symbol space in O(1) — labels absent from a query collapse to that
 * query's OTHER symbol, exactly as its standalone run would classify them.
 */
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "descend/automaton/compiled.h"
#include "descend/query/query.h"

namespace descend::multi {

class MultiQuery {
public:
    /** Compiles a parsed query set. @throws QueryError / LimitError as the
     *  single-query compiler does; an empty set is a LimitError. */
    static MultiQuery compile(const std::vector<query::Query>& queries);

    /** Convenience: parse + compile each text. */
    static MultiQuery compile(const std::vector<std::string>& query_texts);

    std::size_t size() const noexcept { return queries_.size(); }

    const automaton::Alphabet& alphabet() const noexcept { return shared_; }

    const automaton::CompiledQuery& query(std::size_t i) const
    {
        return queries_[i];
    }

    /** Translates a shared-alphabet symbol into query @p i's private
     *  alphabet (its OTHER symbol when the label/index is absent there). */
    int remap(std::size_t i, int shared_symbol) const
    {
        return remap_[i][static_cast<std::size_t>(shared_symbol)];
    }

    /** True when any query uses index selectors (the fused run then
     *  tracks array-entry counters for the set). */
    bool any_counting() const noexcept { return any_counting_; }

    /** True when every query is exactly `$`. */
    bool all_root_accepting() const noexcept { return all_root_accepting_; }

    /**
     * The head-skip label shared by the *entire* set: present iff every
     * query head-skips on the same label. Only then can the fused run use
     * the label-search pipeline — a single disagreeing query would need
     * the structural events head-skipping never produces.
     */
    const std::optional<std::string>& common_head_skip_label() const noexcept
    {
        return common_head_skip_label_;
    }

private:
    MultiQuery() = default;

    automaton::Alphabet shared_;
    std::vector<automaton::CompiledQuery> queries_;
    /** remap_[query][shared_symbol] -> that query's private symbol. */
    std::vector<std::vector<int>> remap_;
    bool any_counting_ = false;
    bool all_root_accepting_ = false;
    std::optional<std::string> common_head_skip_label_;
};

}  // namespace descend::multi
