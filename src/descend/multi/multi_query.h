/**
 * @file
 * A compiled JSONPath query *set* for fused single-pass execution.
 *
 * The set shares one union Alphabet (Alphabet::from_queries) across every
 * label and index the queries mention, while each query keeps its own
 * minimal CompiledQuery automaton. At runtime a structural event's label
 * is resolved against the shared alphabet exactly once; a per-query remap
 * table then translates the shared symbol into each automaton's private
 * symbol space in O(1) — labels absent from a query collapse to that
 * query's OTHER symbol, exactly as its standalone run would classify them.
 *
 * Duplicate queries are deduplicated at compile time: every input query is
 * canonicalized (parse → Query::to_string, so `$.a` and `$['a']` coincide)
 * and identical queries share one *distinct* compiled automaton. Execution
 * backends simulate distinct queries only and fan results out to the
 * owning input indices on report, so a 100×-duplicated subscription costs
 * one lane, not a hundred. The input indexing (size(), query(i), remap(i))
 * is preserved — duplicates resolve to their shared distinct artifact.
 */
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "descend/automaton/compiled.h"
#include "descend/query/query.h"

namespace descend::multi {

class MultiQuery {
public:
    /** Compiles a parsed query set. @throws QueryError / LimitError as the
     *  single-query compiler does; an empty set is a LimitError. */
    static MultiQuery compile(const std::vector<query::Query>& queries);

    /** Convenience: parse + compile each text. */
    static MultiQuery compile(const std::vector<std::string>& query_texts);

    /** Number of *input* queries (duplicates included). */
    std::size_t size() const noexcept { return input_to_distinct_.size(); }

    /** Number of distinct canonical queries actually compiled. */
    std::size_t num_distinct() const noexcept { return distinct_.size(); }

    const automaton::Alphabet& alphabet() const noexcept { return shared_; }

    /** The compiled automaton serving input query @p i (shared with every
     *  duplicate of it). */
    const automaton::CompiledQuery& query(std::size_t i) const
    {
        return distinct_[input_to_distinct_[i]];
    }

    /** The compiled automaton of distinct query @p d. */
    const automaton::CompiledQuery& distinct(std::size_t d) const
    {
        return distinct_[d];
    }

    /** Input indices owning distinct query @p d, ascending. */
    const std::vector<std::size_t>& owners(std::size_t d) const
    {
        return owners_[d];
    }

    /** Distinct index of input query @p i. */
    std::size_t distinct_index(std::size_t i) const
    {
        return input_to_distinct_[i];
    }

    /** The parsed source of input query @p i (for tier-degraded rebuilds
     *  and diagnostics; duplicates keep their own entry). */
    const query::Query& source(std::size_t i) const { return sources_[i]; }

    /** Translates a shared-alphabet symbol into input query @p i's private
     *  alphabet (its OTHER symbol when the label/index is absent there). */
    int remap(std::size_t i, int shared_symbol) const
    {
        return remap_distinct(input_to_distinct_[i], shared_symbol);
    }

    /** Translates a shared-alphabet symbol into distinct query @p d's
     *  private alphabet. */
    int remap_distinct(std::size_t d, int shared_symbol) const
    {
        return remap_[d][static_cast<std::size_t>(shared_symbol)];
    }

    /** True when any query uses index selectors (the fused run then
     *  tracks array-entry counters for the set). */
    bool any_counting() const noexcept { return any_counting_; }

    /** True when every query is exactly `$`. */
    bool all_root_accepting() const noexcept { return all_root_accepting_; }

    /**
     * The head-skip label shared by the *entire* set: present iff every
     * query head-skips on the same label. Only then can the fused run use
     * the label-search pipeline — a single disagreeing query would need
     * the structural events head-skipping never produces.
     */
    const std::optional<std::string>& common_head_skip_label() const noexcept
    {
        return common_head_skip_label_;
    }

private:
    MultiQuery() = default;

    automaton::Alphabet shared_;
    /** Parsed inputs, one per input index. */
    std::vector<query::Query> sources_;
    /** Distinct compiled automata, in first-occurrence order. */
    std::vector<automaton::CompiledQuery> distinct_;
    /** remap_[distinct][shared_symbol] -> that query's private symbol. */
    std::vector<std::vector<int>> remap_;
    /** distinct -> owning input indices (ascending). */
    std::vector<std::vector<std::size_t>> owners_;
    /** input -> distinct. */
    std::vector<std::size_t> input_to_distinct_;
    bool any_counting_ = false;
    bool all_root_accepting_ = false;
    std::optional<std::string> common_head_skip_label_;
};

}  // namespace descend::multi
