#include "descend/multi/multi_engine.h"

#include <memory>

#include "descend/engine/label_search.h"
#include "descend/engine/structural_iterator.h"
#include "descend/engine/validation.h"
#include "descend/project/filter_eval.h"
#include "descend/util/bit_stack.h"
#include "descend/util/inline_vector.h"
#include "descend/util/utf8.h"

namespace descend::multi {
namespace {

/** A sparse depth-stack frame, as in the single-query engine. */
struct Frame {
    int state;
    int depth;
};

using DepthStack = InlineVector<Frame, 128>;

/**
 * One query's independent simulation riding the shared event stream: its
 * automaton, the shared-to-private symbol remap, and the mutable
 * depth-stack state. Depth itself, the kind bit-stack and the array-entry
 * counters are shared across lanes (they describe the document, not the
 * query).
 */
struct Lane {
    const automaton::CompiledQuery* cq;
    int other;      ///< private OTHER symbol
    bool counting;  ///< query uses index selectors
    int state = 0;
    DepthStack stack;
    std::size_t matches = 0;
};

/**
 * The fused main algorithm: the single-query Simulation of main_engine.cpp
 * with the per-state work vectorized over lanes and every skip decision
 * replaced by the lane consensus described in multi_engine.h.
 */
class FusedSimulation {
public:
    /** @param budget the run's governance (null when inactive); threaded
     *  into every block stream the simulation constructs. */
    FusedSimulation(const MultiQuery& queries, const EngineOptions& options,
                    MultiSink& sink, RunStats& stats, PaddedView document,
                    const simd::Kernels& kernels,
                    const RunBudget* budget = nullptr)
        : queries_(queries),
          options_(options),
          sink_(sink),
          stats_(stats),
          budget_(budget)
    {
        // One lane per DISTINCT query: duplicates share the simulation and
        // fan out to their owners at report time. A lane with a trailing
        // filter gets a private predicate gate — candidates the automaton
        // surfaces for THAT lane are gated without disturbing the others.
        lanes_.reserve(queries.num_distinct());
        gates_.resize(queries.num_distinct());
        for (std::size_t d = 0; d < queries.num_distinct(); ++d) {
            const automaton::CompiledQuery& cq = queries.distinct(d);
            Lane lane;
            lane.cq = &cq;
            lane.other = cq.alphabet().other_symbol();
            lane.counting = cq.has_indices();
            lanes_.push_back(std::move(lane));
            if (const query::FilterExpr* filter = cq.filter()) {
                gates_[d] = std::make_unique<project::FilterGate>(
                    *filter, document, kernels, &stats.counters);
            }
        }
        targets_.resize(lanes_.size());
    }

    const EngineStatus& status() const noexcept { return status_; }

    /** Fused equivalent of Simulation::run_main_loop: every lane restarts
     *  at its initial state; the loop ends when the enclosing element
     *  closes or input ends. */
    void run_main_loop(StructuralIterator& iter, bool at_document_root)
    {
        using Kind = StructuralIterator::Kind;
        const automaton::Alphabet& shared = queries_.alphabet();
        const std::size_t n = lanes_.size();

        for (Lane& lane : lanes_) {
            lane.state = lane.cq->initial_state();
            lane.stack.clear();
        }
        int depth = 0;
        BitStack kinds;
        InlineVector<std::uint64_t, 64> counts;
        const bool counting = queries_.any_counting();

        if (at_document_root) {
            // Root-accepting lanes (`$`) select the whole document; the
            // root opening event fires no transition for them (and atomic
            // roots produce no event at all), so they report up front —
            // at the offset the standalone `$` fast path reports.
            std::size_t start = iter.first_non_ws(0);
            if (start < iter.size()) {
                for (std::size_t i = 0; i < n; ++i) {
                    if (lanes_[i].cq->root_accepting()) {
                        report(i, start);
                    }
                }
            }
        }

        if (!options_.leaf_skipping) {
            iter.set_commas(true);
            iter.set_colons(true);
        }
        // Leaf skipping by consensus: commas/colons stay enabled while ANY
        // lane's current state could accept through them in one step.
        auto toggle = [&](bool is_object) {
            if (!options_.leaf_skipping) {
                return;
            }
            bool colon = false;
            bool comma = false;
            for (const Lane& lane : lanes_) {
                const automaton::StateFlags& flags = lane.cq->flags(lane.state);
                colon = colon || flags.colon_toggle;
                comma = comma || flags.comma_toggle;
            }
            iter.set_colons(is_object && colon);
            iter.set_commas(!is_object && (comma || counting),
                            /*eager_disable=*/counting);
        };

        // The symbol of the current array entry in lane i's private
        // alphabet (index lookups bypass the shared remap: per-lane index
        // lists are tiny and typically empty).
        auto entry_symbol = [&](const Lane& lane, std::uint64_t entry_index) {
            return lane.counting ? lane.cq->alphabet().index_symbol(entry_index)
                                 : lane.other;
        };

        // Fused §4.5 within-element skip: sound only when EVERY lane is
        // waiting, non-accepting, on the SAME label — skipped events must
        // be invisible to all of them. Disagreement suppresses the skip.
        auto within_skip = [&](int& current_depth, BitStack& current_kinds) {
            if (counting) {
                return;  // entry counters would miss the skipped commas
            }
            const std::string* label = nullptr;
            bool any_waiting = false;
            bool all_agree = true;
            for (const Lane& lane : lanes_) {
                int symbol = lane.cq->waiting_symbol(lane.state);
                bool wants = symbol >= 0 && !lane.cq->flags(lane.state).accepting;
                any_waiting = any_waiting || wants;
                if (!wants) {
                    all_agree = false;
                    continue;
                }
                const std::string& own = lane.cq->alphabet().label(symbol);
                if (label == nullptr) {
                    label = &own;
                } else if (*label != own) {
                    all_agree = false;
                }
            }
            if (!all_agree || label == nullptr) {
                if (any_waiting) {
                    stats_.counters.add(obs::Counter::kFusedWithinSkipSuppressed);
                }
                return;
            }
            // Per lane: does an atom carrying the label accept?
            for (std::size_t i = 0; i < n; ++i) {
                const Lane& lane = lanes_[i];
                int symbol = lane.cq->waiting_symbol(lane.state);
                targets_[i] =
                    lane.cq->flags(lane.cq->transition(lane.state, symbol))
                            .accepting
                        ? 1
                        : 0;
            }
            BitStack opened;
            int relative_depth = 1;
            while (true) {
                StructuralIterator::WithinResult found =
                    iter.skip_to_label_within(
                        *label, opened, relative_depth,
                        static_cast<std::size_t>(current_depth) - 1);
                stats_.counters.add(obs::Counter::kWithinSkips);
                if (found.outcome !=
                    StructuralIterator::WithinResult::Outcome::kFoundLabel) {
                    return;
                }
                std::uint8_t first = found.value_pos < iter.size()
                                         ? iter.data()[found.value_pos]
                                         : 0;
                if (first == classify::kOpenBrace ||
                    first == classify::kOpenBracket) {
                    for (std::size_t i = 0; i < opened.size(); ++i) {
                        current_kinds.push(opened.bit_at(i));
                    }
                    current_depth += static_cast<int>(opened.size());
                    if (static_cast<std::size_t>(current_depth) >
                        options_.limits.max_depth) {
                        fail(StatusCode::kDepthLimit, found.value_pos);
                    }
                    return;
                }
                for (std::size_t i = 0; i < n; ++i) {
                    if (targets_[i] != 0) {
                        report(i, found.value_pos);
                        if (!status_.ok()) {
                            return;
                        }
                    }
                }
            }
        };

        // First item of an array: not preceded by a comma, so accepting
        // atom entries are matched here (per lane).
        auto try_match_first_item = [&](std::size_t open_pos) {
            bool any = false;
            for (std::size_t i = 0; i < n; ++i) {
                Lane& lane = lanes_[i];
                int target =
                    lane.cq->transition(lane.state, entry_symbol(lane, 0));
                targets_[i] = lane.cq->flags(target).accepting ? 1 : 0;
                any = any || targets_[i] != 0;
            }
            if (!any) {
                return;
            }
            StructuralIterator::Event following = iter.peek();
            if (following.kind == Kind::kOpening) {
                return;  // handled by the Opening case
            }
            std::size_t item = iter.first_non_ws(open_pos + 1);
            if (item >= following.pos) {
                return;  // empty array
            }
            for (std::size_t i = 0; i < n; ++i) {
                if (targets_[i] != 0) {
                    report(i, item);
                }
            }
        };

        // Resolves the label before @p pos against the SHARED alphabet —
        // the one per-event string scan; lanes remap the result in O(1).
        auto shared_label_symbol_before =
            [&](std::size_t pos) -> std::optional<int> {
            auto label = iter.label_before(pos);
            if (!label.has_value()) {
                return std::nullopt;
            }
            if (!util::is_valid_utf8(*label)) {
                fail(StatusCode::kInvalidUtf8InLabel,
                     static_cast<std::size_t>(
                         reinterpret_cast<const std::uint8_t*>(label->data()) -
                         iter.data()));
            }
            return shared.label_symbol(*label);
        };

        while (status_.ok()) {
            StructuralIterator::Event event = iter.next();
            if (event.kind == Kind::kNone) {
                if (!iter.status().ok()) {
                    fail(iter.status().code, iter.status().offset);
                } else if (depth > 0) {
                    fail(StatusCode::kUnbalancedStructure, iter.size());
                }
                return;
            }
            stats_.counters.add(obs::Counter::kStructuralEvents);
            switch (event.kind) {
                case Kind::kOpening: {
                    stats_.counters.add(obs::Counter::kOpeningEvents);
                    bool is_object = event.byte == classify::kOpenBrace;
                    bool root_opening = depth == 0 && at_document_root;
                    if (static_cast<std::size_t>(depth) >=
                        options_.limits.max_depth) {
                        fail(StatusCode::kDepthLimit, event.pos);
                        return;
                    }
                    if (!root_opening) {
                        std::optional<int> shared_symbol =
                            shared_label_symbol_before(event.pos);
                        if (!status_.ok()) {
                            return;
                        }
                        std::uint64_t entry_index =
                            counting && !counts.empty() ? counts.back() : 0;
                        bool all_rejecting = true;
                        bool any_rejecting = false;
                        for (std::size_t i = 0; i < n; ++i) {
                            Lane& lane = lanes_[i];
                            int symbol = shared_symbol.has_value()
                                             ? queries_.remap_distinct(i, *shared_symbol)
                                             : entry_symbol(lane, entry_index);
                            int target = lane.cq->transition(lane.state, symbol);
                            targets_[i] = target;
                            bool rejecting = lane.cq->flags(target).rejecting;
                            all_rejecting = all_rejecting && rejecting;
                            any_rejecting = any_rejecting || rejecting;
                        }
                        if (options_.child_skipping) {
                            if (all_rejecting) {
                                // Consensus: nothing below can match any
                                // lane — one fast-forward serves all N.
                                stats_.counters.add(obs::Counter::kChildSkips);
                                iter.skip_element(
                                    event.byte, static_cast<std::size_t>(depth));
                                continue;
                            }
                            if (any_rejecting) {
                                // A lane wanted the skip but a live lane
                                // vetoed: descend structurally; the trash
                                // lanes ride along inertly.
                                stats_.counters.add(
                                    obs::Counter::kFusedChildSkipSuppressed);
                            }
                        }
                        for (std::size_t i = 0; i < n; ++i) {
                            Lane& lane = lanes_[i];
                            int target = targets_[i];
                            if (target != lane.state) {
                                if (lane.cq->row_class(target) !=
                                    lane.cq->row_class(lane.state)) {
                                    lane.stack.push_back({lane.state, depth});
                                    stats_.counters.add(
                                        obs::Counter::kDepthStackPushes);
                                    stats_.counters.raise(
                                        obs::Counter::kDepthStackMax,
                                        lane.stack.size());
                                }
                                lane.state = target;
                            }
                        }
                    }
                    ++depth;
                    kinds.push(is_object);
                    if (counting && !is_object) {
                        counts.push_back(0);
                    }
                    for (std::size_t i = 0; i < n; ++i) {
                        Lane& lane = lanes_[i];
                        // Root-accepting lanes were pre-reported above.
                        if (lane.cq->flags(lane.state).accepting &&
                            !(root_opening && lane.cq->root_accepting())) {
                            report(i, event.pos);
                        }
                    }
                    toggle(is_object);
                    if (!is_object) {
                        try_match_first_item(event.pos);
                    }
                    if (options_.label_within_skipping) {
                        within_skip(depth, kinds);
                    }
                    break;
                }
                case Kind::kClosing: {
                    if (depth == 0) {
                        fail(StatusCode::kUnbalancedStructure, event.pos);
                        return;
                    }
                    bool closed_is_object = kinds.top();
                    if (closed_is_object !=
                        (event.byte == classify::kCloseBrace)) {
                        fail(StatusCode::kUnbalancedStructure, event.pos);
                        return;
                    }
                    --depth;
                    kinds.pop();
                    if (counting && !closed_is_object) {
                        counts.pop_back();
                    }
                    if (depth == 0) {
                        return;
                    }
                    bool any_wants_skip = false;
                    bool all_agree = true;
                    for (Lane& lane : lanes_) {
                        bool skippable = false;
                        if (!lane.stack.empty() &&
                            lane.stack.back().depth == depth) {
                            bool child_advanced =
                                !lane.cq->flags(lane.state).rejecting;
                            lane.state = lane.stack.back().state;
                            lane.stack.pop_back();
                            if (child_advanced &&
                                lane.cq->flags(lane.state).unitary) {
                                // This lane's unique live label was just
                                // consumed: its parent holds no more.
                                skippable = true;
                                any_wants_skip = true;
                            }
                        }
                        // A trash lane sees nothing in the siblings (its
                        // transitions loop in place and push no frames).
                        skippable =
                            skippable || lane.cq->flags(lane.state).rejecting;
                        all_agree = all_agree && skippable;
                    }
                    if (options_.sibling_skipping && any_wants_skip) {
                        if (all_agree) {
                            stats_.counters.add(obs::Counter::kSiblingSkips);
                            iter.skip_to_parent_close(
                                kinds.top(),
                                static_cast<std::size_t>(depth) - 1);
                            continue;
                        }
                        stats_.counters.add(
                            obs::Counter::kFusedSiblingSkipSuppressed);
                    }
                    toggle(kinds.top());
                    if (options_.label_within_skipping) {
                        within_skip(depth, kinds);
                    }
                    break;
                }
                case Kind::kColon: {
                    // An object member with an atomic value (container
                    // values are owned by the Opening case).
                    if (kinds.empty() || iter.peek().kind == Kind::kOpening) {
                        break;
                    }
                    std::optional<int> shared_symbol =
                        shared_label_symbol_before(event.pos);
                    if (!status_.ok()) {
                        return;
                    }
                    bool any_wants_skip = false;
                    bool all_agree = true;
                    bool any_accepting = false;
                    for (std::size_t i = 0; i < n; ++i) {
                        const Lane& lane = lanes_[i];
                        int symbol = shared_symbol.has_value()
                                         ? queries_.remap_distinct(i, *shared_symbol)
                                         : lane.other;
                        bool accepting =
                            lane.cq
                                ->flags(lane.cq->transition(lane.state, symbol))
                                .accepting;
                        targets_[i] = accepting ? 1 : 0;
                        any_accepting = any_accepting || accepting;
                        bool skippable =
                            (accepting && lane.cq->flags(lane.state).unitary) ||
                            lane.cq->flags(lane.state).rejecting;
                        any_wants_skip =
                            any_wants_skip ||
                            (accepting && lane.cq->flags(lane.state).unitary);
                        all_agree = all_agree && skippable;
                    }
                    if (any_accepting) {
                        std::size_t value = iter.first_non_ws(event.pos + 1);
                        for (std::size_t i = 0; i < n; ++i) {
                            if (targets_[i] != 0) {
                                report(i, value);
                            }
                        }
                        if (!status_.ok()) {
                            return;
                        }
                    }
                    if (options_.sibling_skipping && any_wants_skip) {
                        if (all_agree) {
                            stats_.counters.add(obs::Counter::kSiblingSkips);
                            iter.skip_to_parent_close(
                                kinds.top(),
                                static_cast<std::size_t>(depth) - 1);
                        } else {
                            stats_.counters.add(
                                obs::Counter::kFusedSiblingSkipSuppressed);
                        }
                    }
                    break;
                }
                case Kind::kComma: {
                    if (kinds.empty() || kinds.top()) {
                        break;  // object member separator (or malformed)
                    }
                    if (counting) {
                        ++counts.back();
                    }
                    StructuralIterator::Event following = iter.peek();
                    if (following.kind == Kind::kOpening ||
                        following.kind == Kind::kNone) {
                        break;
                    }
                    bool any = false;
                    for (std::size_t i = 0; i < n; ++i) {
                        Lane& lane = lanes_[i];
                        int target = lane.cq->transition(
                            lane.state,
                            entry_symbol(lane, counting ? counts.back() : 0));
                        targets_[i] = lane.cq->flags(target).accepting ? 1 : 0;
                        any = any || targets_[i] != 0;
                    }
                    if (any) {
                        std::size_t value = iter.first_non_ws(event.pos + 1);
                        for (std::size_t i = 0; i < n; ++i) {
                            if (targets_[i] != 0) {
                                report(i, value);
                            }
                        }
                    }
                    break;
                }
                case Kind::kNone:
                    return;
            }
        }
    }

    /** Fused head-skip: only reachable when every lane waits on the same
     *  head label (MultiQuery::common_head_skip_label), so one label
     *  search drives all N subruns. */
    void run_head_skip(PaddedView document, const simd::Kernels& kernels,
                       StructuralValidator* validator,
                       obs::BlockAccountant* accountant)
    {
        const std::string& label = *queries_.common_head_skip_label();
        const std::size_t n = lanes_.size();
        // Per lane: does an atomic value under the head label accept?
        for (std::size_t i = 0; i < n; ++i) {
            const automaton::CompiledQuery& cq = *lanes_[i].cq;
            int symbol = cq.alphabet().label_symbol(label);
            targets_[i] =
                cq.flags(cq.transition(cq.initial_state(), symbol)).accepting
                    ? 1
                    : 0;
        }

        LabelSearch search(document, kernels, label, validator, accountant,
                           budget_);
        StructuralIterator iter(document, kernels, validator,
                                options_.limits.max_depth, accountant, budget_);

        while (auto occurrence = search.next()) {
            stats_.counters.add(obs::Counter::kHeadSkipJumps);
            std::size_t value = iter.first_non_ws(occurrence->colon_pos + 1);
            if (value >= document.size()) {
                break;
            }
            std::uint8_t first = document.data()[value];
            if (first == classify::kOpenBrace ||
                first == classify::kOpenBracket) {
                iter.resume(search.resume_point_at(value));
                run_main_loop(iter, /*at_document_root=*/false);
                if (!status_.ok()) {
                    return;
                }
                // run_main_loop clobbers targets_; restore the per-lane
                // atom-acceptance bits for the next occurrence.
                for (std::size_t i = 0; i < n; ++i) {
                    const automaton::CompiledQuery& cq = *lanes_[i].cq;
                    int symbol = cq.alphabet().label_symbol(label);
                    targets_[i] = cq.flags(cq.transition(cq.initial_state(),
                                                         symbol))
                                          .accepting
                                      ? 1
                                      : 0;
                }
                search.resume(iter.resume_point());
            } else {
                for (std::size_t i = 0; i < n; ++i) {
                    if (targets_[i] != 0) {
                        report(i, value);
                        if (!status_.ok()) {
                            return;
                        }
                    }
                }
            }
        }
        // A budget violation inside either pipeline parks it silently
        // (next() runs dry); surface its status so the caller does not
        // mistake the park for a clean end of input. The search and the
        // iterator are separate block streams with independent latches.
        if (status_.ok() && !search.status().ok()) {
            fail(search.status().code, search.status().offset);
        }
        if (status_.ok() && !iter.status().ok()) {
            fail(iter.status().code, iter.status().offset);
        }
    }

private:
    void fail(StatusCode code, std::size_t offset)
    {
        if (status_.ok()) {
            status_ = {code, offset};
        }
    }

    /** Reports a match for distinct lane @p d, fanning out to every input
     *  query that owns it (ascending). max_match_count applies per lane —
     *  duplicates share the counter, so each trips exactly where its own
     *  independent run would. */
    void report(std::size_t d, std::size_t offset)
    {
        // A filter-rejected candidate is not a match: it neither reaches
        // the owners nor counts toward the lane's limit (the DOM oracle
        // never sees it either).
        if (gates_[d] != nullptr && !gates_[d]->admits(offset)) {
            return;
        }
        if (++lanes_[d].matches > options_.limits.max_match_count) {
            fail(StatusCode::kMatchLimit, offset);
            return;
        }
        for (std::size_t owner : queries_.owners(d)) {
            stats_.counters.add(obs::Counter::kSubscriberFanout);
            sink_.on_match(owner, offset);
        }
    }

    const MultiQuery& queries_;
    const EngineOptions& options_;
    MultiSink& sink_;
    RunStats& stats_;
    std::vector<Lane> lanes_;
    /** Per-distinct-lane filter gates; null for filter-free lanes. */
    std::vector<std::unique_ptr<project::FilterGate>> gates_;
    /** Per-lane scratch reused across events (targets / accept bits). */
    std::vector<int> targets_;
    const RunBudget* budget_ = nullptr;
    EngineStatus status_;
};

/** Tallies a governance outcome into the run's counters. */
void count_governance(RunStats& stats)
{
    if (stats.status.code == StatusCode::kDeadlineExceeded) {
        stats.counters.add(obs::Counter::kDeadlineHits);
    } else if (stats.status.code == StatusCode::kCancelled) {
        stats.counters.add(obs::Counter::kCancelHits);
    }
}

}  // namespace

MultiDescendEngine::MultiDescendEngine(MultiQuery queries, EngineOptions options)
    : queries_(std::move(queries)),
      options_(options),
      kernels_(&simd::kernels_for(options.simd))
{
}

std::string MultiDescendEngine::name() const
{
    return std::string("descend-multi-") + kernels_->name;
}

RunStats MultiDescendEngine::dispatch(PaddedView document, MultiSink& sink,
                                      const RunBudget& budget) const
{
    RunStats stats;
    obs::BlockAccountant accountant(&stats.counters);
    // Inactive budgets (the default) cost one null test per batch refill.
    const RunBudget* budget_ptr = budget.active() ? &budget : nullptr;
    stats.status = preflight_document(document, options_.limits);
    if (stats.status.ok() && budget_ptr != nullptr) {
        // An already-violated budget fails before any work, at offset 0 —
        // the deterministic anchor the stream executor's floor relies on.
        StatusCode over = budget.exceeded();
        if (over != StatusCode::kOk) {
            stats.status = {over, 0};
        }
    }
    if (!stats.status.ok()) {
        count_governance(stats);
        accountant.finish(document.size());
        return stats;
    }
    if (queries_.all_root_accepting()) {
        // Every query is `$`: mirror the standalone O(1) unvalidated path
        // (see DESIGN.md, "Error handling & limits").
        StructuralIterator iter(document, *kernels_, nullptr,
                                EngineLimits::kUnlimited, &accountant);
        std::size_t start = iter.first_non_ws(0);
        if (start < document.size()) {
            for (std::size_t i = 0; i < queries_.size(); ++i) {
                sink.on_match(i, start);
            }
        }
        accountant.finish(document.size());
        return stats;
    }
    StructuralValidator validator;
    StructuralValidator* vptr = options_.validate_structure ? &validator : nullptr;
    FusedSimulation simulation(queries_, options_, sink, stats, document,
                               *kernels_, budget_ptr);
    if (queries_.common_head_skip_label().has_value() && options_.head_skipping) {
        simulation.run_head_skip(document, *kernels_, vptr, &accountant);
        stats.status = simulation.status();
        if (stats.status.ok() && vptr != nullptr) {
            stats.status = validator.verdict(document.size());
        }
        count_governance(stats);
        accountant.finish(document.size());
        return stats;
    }
    StructuralIterator iter(document, *kernels_, vptr, options_.limits.max_depth,
                            &accountant, budget_ptr);
    simulation.run_main_loop(iter, /*at_document_root=*/true);
    stats.status = simulation.status();
    if (stats.status.ok()) {
        std::size_t after = iter.first_non_ws(iter.position());
        if (after < document.size()) {
            stats.status = {StatusCode::kTrailingContent, after};
        }
    }
    if (stats.status.ok() && vptr != nullptr) {
        stats.status = validator.verdict(document.size());
    }
    count_governance(stats);
    accountant.finish(document.size());
    return stats;
}

EngineStatus MultiDescendEngine::run(PaddedView document, MultiSink& sink) const
{
    return dispatch(document, sink, options_.budget).status;
}

RunStats MultiDescendEngine::run_with_stats(PaddedView document,
                                            MultiSink& sink) const
{
    return run_with_stats(document, sink, options_.budget);
}

RunStats MultiDescendEngine::run_with_stats(PaddedView document, MultiSink& sink,
                                            const RunBudget& budget) const
{
    obs::PhaseStopwatch watch;
    RunStats stats = dispatch(document, sink, budget);
    stats.timings.add(obs::Phase::kAutomaton, watch.elapsed_ns());
    return stats;
}

}  // namespace descend::multi
