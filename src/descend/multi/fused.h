/**
 * @file
 * The fused multi-query engine interface and its backends.
 *
 * Two backends execute a compiled query set in one document pass:
 *
 *  - `lanes` (multi_engine.h): N independent depth-stack simulations off
 *    one classification pass; skips by unanimous consensus. O(N) automaton
 *    work per structural event, but never fails to compile.
 *  - `product` (product_engine.h): ONE depth stack over the set-compiled
 *    product automaton (product_query.h); skips decided by a precomputed
 *    per-state bit, matches fanned out through subscriber bitsets. O(1)
 *    automaton work per event — the backend that scales to 1k+
 *    subscriptions — but subset construction is capped, so adversarial
 *    sets (many descendants × wildcards) can exceed the state budget.
 *
 * `auto` resolves the tradeoff: compile the product, fall back to lanes
 * when the cap trips. Both backends report through MultiSink with input
 * query indexing (duplicates deduplicated at compile time each receive
 * their own callbacks) and enforce per-query match limits exactly as N
 * independent runs would.
 */
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "descend/engine/api.h"
#include "descend/engine/padded_string.h"
#include "descend/multi/multi_query.h"
#include "descend/obs/run_stats.h"

namespace descend::multi {

/** Receiver of fused-run matches, tagged with the originating query. */
class MultiSink {
public:
    virtual ~MultiSink() = default;

    /** @param query_index position of the query in the compiled set. */
    virtual void on_match(std::size_t query_index, std::size_t offset) = 0;
};

/** Collects per-query match offsets (document order within each query). */
class CollectingMultiSink final : public MultiSink {
public:
    explicit CollectingMultiSink(std::size_t num_queries)
        : offsets_(num_queries)
    {
    }

    void on_match(std::size_t query_index, std::size_t offset) override
    {
        offsets_[query_index].push_back(offset);
    }

    const std::vector<std::size_t>& offsets(std::size_t query_index) const
    {
        return offsets_[query_index];
    }

    const std::vector<std::vector<std::size_t>>& all() const noexcept
    {
        return offsets_;
    }

private:
    std::vector<std::vector<std::size_t>> offsets_;
};

/** Counts matches per query — the benchmark sink. */
class CountingMultiSink final : public MultiSink {
public:
    explicit CountingMultiSink(std::size_t num_queries) : counts_(num_queries) {}

    void on_match(std::size_t query_index, std::size_t) override
    {
        ++counts_[query_index];
    }

    std::size_t count(std::size_t query_index) const
    {
        return counts_[query_index];
    }

    std::size_t total() const noexcept
    {
        std::size_t sum = 0;
        for (std::size_t c : counts_) {
            sum += c;
        }
        return sum;
    }

private:
    std::vector<std::size_t> counts_;
};

/**
 * A fused multi-query engine: executes its whole compiled set in one pass
 * over a document. Const run paths touch no mutable engine state — one
 * instance serves concurrent runs (the stream executor shares one).
 *
 * Status semantics: the document is a single byte stream, so the run has a
 * single EngineStatus — malformed input fails the set as a whole, and a
 * per-query limit violation (EngineLimits::max_match_count applies per
 * input query, mirroring N independent runs) fails the run at that offset.
 */
class FusedEngine {
public:
    virtual ~FusedEngine() = default;

    virtual std::string name() const = 0;

    EngineStatus run(const PaddedString& document, MultiSink& sink) const
    {
        return run(PaddedView(document), sink);
    }

    /** Zero-copy slice run (record of an NDJSON stream); offsets are
     *  relative to the slice start, as DescendEngine::run. */
    virtual EngineStatus run(PaddedView document, MultiSink& sink) const = 0;

    /** Like run(), additionally reporting what the fused pass did. */
    virtual RunStats run_with_stats(PaddedView document, MultiSink& sink) const = 0;

    /**
     * Budget-override run: governs this one run by @p budget instead of
     * options().budget — how the multi-stream executor gives each record
     * its own slice of a stream-level budget without rebuilding engines.
     */
    virtual RunStats run_with_stats(PaddedView document, MultiSink& sink,
                                    const RunBudget& budget) const = 0;

    virtual const MultiQuery& query_set() const noexcept = 0;
    virtual const EngineOptions& options() const noexcept = 0;
};

/** Which fused execution backend to build. */
enum class FusedBackend {
    kAuto,     ///< product when it compiles within the state cap, else lanes
    kLanes,    ///< per-query lanes with consensus skipping
    kProduct,  ///< set-compiled product automaton
};

/** Parses a --fused flag value ("auto" | "lanes" | "product"). */
std::optional<FusedBackend> parse_fused_backend(std::string_view text);

/** The flag spelling of @p backend. */
std::string_view fused_backend_name(FusedBackend backend) noexcept;

/** Builds the requested backend over an already-compiled set. @throws
 *  LimitError when `product` is requested explicitly and the set exceeds
 *  the product state cap (`auto` falls back to lanes instead). */
std::unique_ptr<FusedEngine> make_fused_engine(
    MultiQuery queries, EngineOptions options = {},
    FusedBackend backend = FusedBackend::kAuto);

/** Convenience: parse + compile + build. */
std::unique_ptr<FusedEngine> make_fused_engine(
    const std::vector<std::string>& query_texts, EngineOptions options = {},
    FusedBackend backend = FusedBackend::kAuto);

}  // namespace descend::multi
