/**
 * @file
 * SubscriberSet: a dynamic bitset over query ids.
 *
 * Product-automaton states carry one of these per accept set: the distinct
 * queries that match when the state is entered. Sets are tiny relative to
 * the automaton (most states accept nothing, and accept sets repeat — the
 * compiler interns them into a table), so the representation optimizes for
 * fast ascending iteration at report time, not for mutation.
 */
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace descend::multi {

class SubscriberSet {
public:
    SubscriberSet() = default;

    /** An empty set over @p universe query ids. */
    explicit SubscriberSet(std::size_t universe)
        : words_((universe + 63) / 64, 0)
    {
    }

    void set(std::size_t id) { words_[id >> 6] |= std::uint64_t{1} << (id & 63); }

    bool test(std::size_t id) const noexcept
    {
        return (words_[id >> 6] >> (id & 63)) & 1;
    }

    bool any() const noexcept
    {
        for (std::uint64_t word : words_) {
            if (word != 0) {
                return true;
            }
        }
        return false;
    }

    std::size_t count() const noexcept
    {
        std::size_t total = 0;
        for (std::uint64_t word : words_) {
            total += static_cast<std::size_t>(std::popcount(word));
        }
        return total;
    }

    /** Invokes @p fn with every member id, in ascending order. */
    template <typename Fn>
    void for_each(Fn&& fn) const
    {
        for (std::size_t w = 0; w < words_.size(); ++w) {
            std::uint64_t word = words_[w];
            while (word != 0) {
                std::size_t bit =
                    static_cast<std::size_t>(std::countr_zero(word));
                fn((w << 6) + bit);
                word &= word - 1;
            }
        }
    }

    friend bool operator==(const SubscriberSet& a,
                           const SubscriberSet& b) noexcept
    {
        return a.words_ == b.words_;
    }

    const std::vector<std::uint64_t>& words() const noexcept { return words_; }

private:
    std::vector<std::uint64_t> words_;
};

}  // namespace descend::multi
