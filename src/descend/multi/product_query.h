/**
 * @file
 * Set-compiled execution artifact: ONE automaton for the whole query set.
 *
 * The lanes backend (multi_engine.h) simulates N independent automata per
 * structural event — O(N) per event, with skips degrading to unanimous
 * consensus. QuerySetCompiler instead factors the deduplicated query set
 * into a *trie* of shared selector prefixes over the union Alphabet and
 * lowers that trie to a single deterministic product automaton:
 *
 *   - Trie nodes are selector prefixes; edges carry the selector kind
 *     (child label / child wildcard / child index / descendant label /
 *     descendant wildcard) keyed by shared-alphabet symbols, so `$.a.x`
 *     and `$.a..y` share the `$.a` prefix state.
 *   - Descendant recursion is modelled per-node with a companion *hub*
 *     state: a node with descendant edges contributes its hub to every
 *     successor (the "search goes on below" component), and the hub
 *     self-loops while firing only the node's descendant edges. Child
 *     edges never fire from hubs, which is exactly why merging prefixes
 *     of different queries stays sound.
 *   - Subset construction over trie nodes + hubs yields the product DFA;
 *     its states carry *subscriber bitsets* (SubscriberSet over distinct
 *     query ids — the accept set), interned into a table because accept
 *     sets repeat heavily. Moore minimization (initial partition: accept
 *     sets) then collapses equivalent states — among else re-establishing
 *     the waiting/head-skip shape of `$..label`-headed sets.
 *
 * Per-state properties mirror CompiledQuery exactly (automaton/compiled.h,
 * paper Section 3.3), but computed on the union automaton they become
 * set-level skip decisions: `rejecting` is the precomputed "can anything
 * in the whole set match below" bit, so one child-skip test replaces N
 * lane votes, and `unitary`/`waiting` certify sibling/within skips for
 * every subscriber at once. Per-event cost is O(distinct automaton
 * states) — one transition — instead of O(N) lanes.
 *
 * Transitions are stored as per-state exception lists over a fallback (the
 * OTHER successor): union alphabets of 1k-query sets have thousands of
 * symbols, so dense rows would waste megabytes while nearly every row is
 * "fallback everywhere except this prefix's few live symbols".
 */
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "descend/automaton/compiled.h"
#include "descend/multi/multi_query.h"
#include "descend/multi/subscriber_set.h"

namespace descend::multi {

class ProductAutomaton {
public:
    /** An empty automaton; meaningful instances come from the compiler. */
    ProductAutomaton() = default;

    int num_states() const noexcept { return num_states_; }
    int initial_state() const noexcept { return initial_; }

    /** Successor of @p state on @p symbol (shared-alphabet space). */
    int transition(int state, int symbol) const noexcept
    {
        const std::uint32_t begin = ex_begin_[static_cast<std::size_t>(state)];
        const std::uint32_t end = ex_begin_[static_cast<std::size_t>(state) + 1];
        // Exception lists are sorted by symbol and tiny (a prefix's live
        // labels); linear probing beats binary search at these sizes.
        for (std::uint32_t e = begin; e < end; ++e) {
            if (ex_symbols_[e] == symbol) {
                return ex_targets_[e];
            }
            if (ex_symbols_[e] > symbol) {
                break;
            }
        }
        return fallback_[static_cast<std::size_t>(state)];
    }

    /** The fallback transition (over the OTHER symbol). */
    int fallback(int state) const noexcept
    {
        return fallback_[static_cast<std::size_t>(state)];
    }

    const automaton::StateFlags& flags(int state) const noexcept
    {
        return flags_[static_cast<std::size_t>(state)];
    }

    /** See CompiledQuery::row_class: frame pushes happen only on class
     *  changes. */
    int row_class(int state) const noexcept
    {
        return row_class_[static_cast<std::size_t>(state)];
    }

    /** The unique live label a waiting state waits for; -1 otherwise. */
    int waiting_symbol(int state) const noexcept
    {
        return waiting_symbol_[static_cast<std::size_t>(state)];
    }

    /** Index into accept_set() of the state's subscribers; 0 is always the
     *  empty set, so `accept_set_id(s) != 0` iff the state accepts. */
    int accept_set_id(int state) const noexcept
    {
        return accept_id_[static_cast<std::size_t>(state)];
    }

    /** Interned subscriber bitset (over DISTINCT query ids). */
    const SubscriberSet& accept_set(int set_id) const
    {
        return accept_sets_[static_cast<std::size_t>(set_id)];
    }

    /** Set-level head-skip label: present iff the initial state waits on a
     *  concrete label and accepts nothing (so skipped lead-in is invisible
     *  to every subscriber). Escaped comparison form. */
    const std::optional<std::string>& head_skip_label() const noexcept
    {
        return head_skip_label_;
    }

private:
    friend class QuerySetCompiler;

    int num_states_ = 0;
    int initial_ = 0;
    /** CSR exception lists: state s owns [ex_begin_[s], ex_begin_[s+1]). */
    std::vector<std::uint32_t> ex_begin_;
    std::vector<std::int32_t> ex_symbols_;
    std::vector<std::int32_t> ex_targets_;
    std::vector<std::int32_t> fallback_;
    std::vector<automaton::StateFlags> flags_;
    std::vector<std::int32_t> row_class_;
    std::vector<std::int32_t> waiting_symbol_;
    std::vector<std::int32_t> accept_id_;
    std::vector<SubscriberSet> accept_sets_;
    std::optional<std::string> head_skip_label_;
};

class QuerySetCompiler {
public:
    /**
     * Lowers the deduplicated set to its product automaton. @p max_states
     * caps subset construction (the descendant-plus-wildcard blowup of
     * Section 3.1 compounds across queries); LimitError beyond it — the
     * `auto` backend then falls back to lanes, which have no such cap.
     */
    static ProductAutomaton compile(const MultiQuery& set,
                                    int max_states = 1 << 15);
};

}  // namespace descend::multi
