#include "descend/multi/multi_query.h"

#include <unordered_map>

#include "descend/util/errors.h"

namespace descend::multi {

MultiQuery MultiQuery::compile(const std::vector<query::Query>& queries)
{
    if (queries.empty()) {
        throw LimitError("a multi-query set needs at least one query");
    }
    MultiQuery set;
    set.shared_ = automaton::Alphabet::from_queries(queries);
    set.sources_ = queries;
    set.input_to_distinct_.reserve(queries.size());
    set.all_root_accepting_ = true;
    bool head_skip_possible = true;
    // Canonical rendering -> distinct slot: `$.a` and `$['a']` parse to the
    // same selectors and must share one lane/subscriber slot.
    std::unordered_map<std::string, std::size_t> canonical_ids;
    for (std::size_t input = 0; input < queries.size(); ++input) {
        const query::Query& query = queries[input];
        auto [found, inserted] =
            canonical_ids.emplace(query.to_string(), set.distinct_.size());
        if (!inserted) {
            set.input_to_distinct_.push_back(found->second);
            set.owners_[found->second].push_back(input);
            continue;
        }
        automaton::CompiledQuery compiled = automaton::CompiledQuery::compile(query);
        const automaton::Alphabet& own = compiled.alphabet();

        // Shared symbol -> private symbol. Labels and indices the query
        // does not mention fall through to its OTHER symbol — the same
        // classification its standalone run performs.
        std::vector<int> remap(
            static_cast<std::size_t>(set.shared_.total_symbols()), 0);
        for (int s = 0; s < set.shared_.num_labels(); ++s) {
            remap[static_cast<std::size_t>(s)] =
                own.label_symbol(set.shared_.label(s));
        }
        for (int s = set.shared_.num_labels(); s < set.shared_.num_concrete();
             ++s) {
            remap[static_cast<std::size_t>(s)] =
                own.index_symbol(set.shared_.index(s));
        }
        remap[static_cast<std::size_t>(set.shared_.other_symbol())] =
            own.other_symbol();

        set.any_counting_ = set.any_counting_ || compiled.has_indices();
        set.all_root_accepting_ =
            set.all_root_accepting_ && compiled.root_accepting();
        if (head_skip_possible) {
            const std::optional<std::string>& label = compiled.head_skip_label();
            if (!label.has_value() ||
                (set.common_head_skip_label_.has_value() &&
                 *set.common_head_skip_label_ != *label)) {
                head_skip_possible = false;
                set.common_head_skip_label_.reset();
            } else {
                set.common_head_skip_label_ = *label;
            }
        }

        set.input_to_distinct_.push_back(set.distinct_.size());
        set.owners_.push_back({input});
        set.distinct_.push_back(std::move(compiled));
        set.remap_.push_back(std::move(remap));
    }
    return set;
}

MultiQuery MultiQuery::compile(const std::vector<std::string>& query_texts)
{
    std::vector<query::Query> queries;
    queries.reserve(query_texts.size());
    for (const std::string& text : query_texts) {
        queries.push_back(query::Query::parse(text));
    }
    return compile(queries);
}

}  // namespace descend::multi
