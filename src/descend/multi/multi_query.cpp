#include "descend/multi/multi_query.h"

#include "descend/util/errors.h"

namespace descend::multi {

MultiQuery MultiQuery::compile(const std::vector<query::Query>& queries)
{
    if (queries.empty()) {
        throw LimitError("a multi-query set needs at least one query");
    }
    MultiQuery set;
    set.shared_ = automaton::Alphabet::from_queries(queries);
    set.queries_.reserve(queries.size());
    set.remap_.reserve(queries.size());
    set.all_root_accepting_ = true;
    bool head_skip_possible = true;
    for (const query::Query& query : queries) {
        automaton::CompiledQuery compiled = automaton::CompiledQuery::compile(query);
        const automaton::Alphabet& own = compiled.alphabet();

        // Shared symbol -> private symbol. Labels and indices the query
        // does not mention fall through to its OTHER symbol — the same
        // classification its standalone run performs.
        std::vector<int> remap(
            static_cast<std::size_t>(set.shared_.total_symbols()), 0);
        for (int s = 0; s < set.shared_.num_labels(); ++s) {
            remap[static_cast<std::size_t>(s)] =
                own.label_symbol(set.shared_.label(s));
        }
        for (int s = set.shared_.num_labels(); s < set.shared_.num_concrete();
             ++s) {
            remap[static_cast<std::size_t>(s)] =
                own.index_symbol(set.shared_.index(s));
        }
        remap[static_cast<std::size_t>(set.shared_.other_symbol())] =
            own.other_symbol();

        set.any_counting_ = set.any_counting_ || compiled.has_indices();
        set.all_root_accepting_ =
            set.all_root_accepting_ && compiled.root_accepting();
        if (head_skip_possible) {
            const std::optional<std::string>& label = compiled.head_skip_label();
            if (!label.has_value() ||
                (set.common_head_skip_label_.has_value() &&
                 *set.common_head_skip_label_ != *label)) {
                head_skip_possible = false;
                set.common_head_skip_label_.reset();
            } else {
                set.common_head_skip_label_ = *label;
            }
        }

        set.queries_.push_back(std::move(compiled));
        set.remap_.push_back(std::move(remap));
    }
    return set;
}

MultiQuery MultiQuery::compile(const std::vector<std::string>& query_texts)
{
    std::vector<query::Query> queries;
    queries.reserve(query_texts.size());
    for (const std::string& text : query_texts) {
        queries.push_back(query::Query::parse(text));
    }
    return compile(queries);
}

}  // namespace descend::multi
