/**
 * @file
 * The `lanes` fused backend: N compiled automata over ONE classification
 * pass of the batched block stream.
 *
 * A standalone engine run spends most of its time classifying blocks for
 * fast, selective queries (paper §4, Experiments B/C) — so N queries run
 * sequentially pay for N classification passes over identical bytes. The
 * fused engine advances one depth-stack simulation per DISTINCT query off
 * the same structural events: one block classification, one label
 * resolution per event (against the shared union alphabet), then an O(1)
 * automaton transition per lane; duplicate queries share a lane and fan
 * out to their owners at report time.
 *
 * Skipping degrades soundly to the set's consensus: a fast-forward
 * (children / siblings / within-element label / head-skip) is taken only
 * when *every* lane agrees the region is irrelevant to it — a lane parked
 * in its trash state agrees to anything; a live lane vetoes. Vetoed skips
 * fall back to structural iteration and are tallied in the obs counters
 * (fused_*_skip_suppressed), so the cost of disagreement is visible. The
 * `product` backend (product_engine.h) removes the per-lane loop and the
 * consensus entirely; this backend remains the uncapped fallback.
 */
#pragma once

#include <string>
#include <vector>

#include "descend/multi/fused.h"
#include "descend/simd/dispatch.h"

namespace descend::multi {

/** The lanes engine. See FusedEngine for the run/status contract. */
class MultiDescendEngine final : public FusedEngine {
public:
    explicit MultiDescendEngine(MultiQuery queries, EngineOptions options = {});

    /** Convenience: parse + compile + wrap. */
    static MultiDescendEngine for_queries(
        const std::vector<std::string>& query_texts, EngineOptions options = {})
    {
        return MultiDescendEngine(MultiQuery::compile(query_texts), options);
    }

    using FusedEngine::run;

    std::string name() const override;

    EngineStatus run(PaddedView document, MultiSink& sink) const override;
    RunStats run_with_stats(PaddedView document, MultiSink& sink) const override;
    RunStats run_with_stats(PaddedView document, MultiSink& sink,
                            const RunBudget& budget) const override;

    const MultiQuery& query_set() const noexcept override { return queries_; }
    const EngineOptions& options() const noexcept override { return options_; }

private:
    RunStats dispatch(PaddedView document, MultiSink& sink,
                      const RunBudget& budget) const;

    MultiQuery queries_;
    EngineOptions options_;
    const simd::Kernels* kernels_;
};

}  // namespace descend::multi
