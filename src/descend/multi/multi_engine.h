/**
 * @file
 * Fused multi-query execution: N compiled automata over ONE classification
 * pass of the batched block stream.
 *
 * A standalone engine run spends most of its time classifying blocks for
 * fast, selective queries (paper §4, Experiments B/C) — so N queries run
 * sequentially pay for N classification passes over identical bytes. The
 * fused engine advances N independent depth-stack simulations off the same
 * structural events: one block classification, one label resolution per
 * event (against the shared union alphabet), N O(1) automaton transitions.
 *
 * Skipping degrades soundly to the set's consensus: a fast-forward
 * (children / siblings / within-element label / head-skip) is taken only
 * when *every* lane agrees the region is irrelevant to it — a lane parked
 * in its trash state agrees to anything; a live lane vetoes. Vetoed skips
 * fall back to structural iteration and are tallied in the obs counters
 * (fused_*_skip_suppressed), so the cost of disagreement is visible.
 */
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "descend/engine/api.h"
#include "descend/engine/padded_string.h"
#include "descend/multi/multi_query.h"
#include "descend/obs/run_stats.h"
#include "descend/simd/dispatch.h"

namespace descend::multi {

/** Receiver of fused-run matches, tagged with the originating query. */
class MultiSink {
public:
    virtual ~MultiSink() = default;

    /** @param query_index position of the query in the compiled set. */
    virtual void on_match(std::size_t query_index, std::size_t offset) = 0;
};

/** Collects per-query match offsets (document order within each query). */
class CollectingMultiSink final : public MultiSink {
public:
    explicit CollectingMultiSink(std::size_t num_queries)
        : offsets_(num_queries)
    {
    }

    void on_match(std::size_t query_index, std::size_t offset) override
    {
        offsets_[query_index].push_back(offset);
    }

    const std::vector<std::size_t>& offsets(std::size_t query_index) const
    {
        return offsets_[query_index];
    }

    const std::vector<std::vector<std::size_t>>& all() const noexcept
    {
        return offsets_;
    }

private:
    std::vector<std::vector<std::size_t>> offsets_;
};

/** Counts matches per query — the benchmark sink. */
class CountingMultiSink final : public MultiSink {
public:
    explicit CountingMultiSink(std::size_t num_queries) : counts_(num_queries) {}

    void on_match(std::size_t query_index, std::size_t) override
    {
        ++counts_[query_index];
    }

    std::size_t count(std::size_t query_index) const
    {
        return counts_[query_index];
    }

    std::size_t total() const noexcept
    {
        std::size_t sum = 0;
        for (std::size_t c : counts_) {
            sum += c;
        }
        return sum;
    }

private:
    std::vector<std::size_t> counts_;
};

/**
 * The fused engine. Const run paths touch no mutable engine state — one
 * instance can serve concurrent runs (the stream executor shares one).
 *
 * Status semantics: the document is a single byte stream, so the run has a
 * single EngineStatus — malformed input fails the set as a whole, and a
 * per-query limit violation (EngineLimits::max_match_count is enforced per
 * lane, mirroring N independent runs) fails the run at that offset.
 */
class MultiDescendEngine {
public:
    explicit MultiDescendEngine(MultiQuery queries, EngineOptions options = {});

    /** Convenience: parse + compile + wrap. */
    static MultiDescendEngine for_queries(
        const std::vector<std::string>& query_texts, EngineOptions options = {})
    {
        return MultiDescendEngine(MultiQuery::compile(query_texts), options);
    }

    std::string name() const;

    EngineStatus run(const PaddedString& document, MultiSink& sink) const
    {
        return run(PaddedView(document), sink);
    }

    /** Zero-copy slice run (record of an NDJSON stream); offsets are
     *  relative to the slice start, as DescendEngine::run. */
    EngineStatus run(PaddedView document, MultiSink& sink) const;

    /** Like run(), additionally reporting what the fused pass did. */
    RunStats run_with_stats(PaddedView document, MultiSink& sink) const;

    /**
     * Budget-override run: governs this one run by @p budget instead of
     * options().budget — how the multi-stream executor gives each record
     * its own slice of a stream-level budget without rebuilding engines.
     */
    RunStats run_with_stats(PaddedView document, MultiSink& sink,
                            const RunBudget& budget) const;

    const MultiQuery& query_set() const noexcept { return queries_; }
    const EngineOptions& options() const noexcept { return options_; }

private:
    RunStats dispatch(PaddedView document, MultiSink& sink,
                      const RunBudget& budget) const;

    MultiQuery queries_;
    EngineOptions options_;
    const simd::Kernels* kernels_;
};

}  // namespace descend::multi
