#include "descend/multi/product_query.h"

#include <algorithm>
#include <map>
#include <queue>
#include <utility>

#include "descend/util/errors.h"

namespace descend::multi {
namespace {

/**
 * Trie over the distinct queries' selector sequences. Edges are keyed by
 * (selector kind, shared-alphabet symbol set); wildcards carry an empty
 * set. A slice or union selector owns ONE edge guarded by several symbols
 * (the interval symbols its range covers / its member labels), all leading
 * to the same target — the whole-symbol-guard invariant of the alphabet
 * (nfa.h) makes this exact. Two queries share a node exactly when their
 * selector prefixes coincide after canonicalization.
 */
struct TrieEdge {
    query::SelectorKind kind;
    std::vector<int> symbols;  // shared symbols; empty for wildcards
    int target;                // trie node id
};

struct TrieNode {
    std::vector<TrieEdge> edges;
    /** Distinct query ids whose last selector lands here. */
    std::vector<int> accepts;
    /** Companion hub NFA-state id when any edge is descendant-kind. */
    int hub = -1;
};

/**
 * One NFA state's contribution to subset successors, pre-factored into
 * the component fired on EVERY symbol (wildcard edges, hub entry, hub
 * self-loop) and the per-symbol concrete additions. A subset's fallback
 * row is the union of `always` parts; concrete symbols add on top.
 */
struct NfaRow {
    std::vector<int> always;
    std::vector<std::pair<int, int>> by_symbol;  // (shared symbol, target)
};

/** Raw (unminimized) product DFA rows, exceptions sorted by symbol. */
struct RawState {
    int fallback = 0;
    std::vector<std::pair<int, int>> exceptions;  // (symbol, target)
    int accept_id = 0;
};

std::vector<TrieNode> build_trie(const MultiQuery& set)
{
    std::vector<TrieNode> trie(1);
    for (std::size_t d = 0; d < set.num_distinct(); ++d) {
        const auto& selectors = set.distinct(d).source().selectors();
        int node = 0;
        for (const query::Selector& selector : selectors) {
            if (selector.kind == query::SelectorKind::kRoot) {
                continue;
            }
            std::vector<int> symbols;
            switch (selector.kind) {
                case query::SelectorKind::kChild:
                case query::SelectorKind::kDescendant:
                    symbols.push_back(
                        set.alphabet().label_symbol(selector.label_escaped));
                    break;
                case query::SelectorKind::kChildIndex:
                    symbols.push_back(
                        set.alphabet().index_symbol(selector.index));
                    break;
                case query::SelectorKind::kChildSlice:
                    // An empty range yields no symbols: the edge then fires
                    // on nothing and the suffix below it is unreachable —
                    // exactly the unsatisfiable-slice semantics.
                    symbols = set.alphabet().symbols_in_range(
                        selector.slice_lo, selector.slice_hi);
                    break;
                case query::SelectorKind::kChildUnion:
                    for (const query::LabelRef& member : selector.union_members) {
                        symbols.push_back(
                            set.alphabet().label_symbol(member.escaped));
                    }
                    break;
                case query::SelectorKind::kChildFilter:
                    // Predicates are evaluated per lane over the candidate
                    // value; the shared product automaton has no lane to
                    // hang that on. Refuse compilation — FusedBackend::kAuto
                    // catches this and falls back to per-query lanes.
                    throw LimitError(
                        "the product backend does not support filter "
                        "selectors; use per-query lanes");
                default:
                    break;
            }
            int next = -1;
            for (const TrieEdge& edge : trie[static_cast<std::size_t>(node)].edges) {
                if (edge.kind == selector.kind && edge.symbols == symbols) {
                    next = edge.target;
                    break;
                }
            }
            if (next < 0) {
                next = static_cast<int>(trie.size());
                trie[static_cast<std::size_t>(node)].edges.push_back(
                    {selector.kind, symbols, next});
                trie.emplace_back();
            }
            node = next;
        }
        trie[static_cast<std::size_t>(node)].accepts.push_back(static_cast<int>(d));
    }
    return trie;
}

std::vector<NfaRow> build_rows(std::vector<TrieNode>& trie)
{
    // Hubs get ids after the trie nodes. A hub models "some descendant
    // edge of this node keeps searching below": it persists through any
    // transition and fires only the node's descendant edges — child edges
    // stay pinned to their exact depth, which keeps prefix sharing sound.
    int next_id = static_cast<int>(trie.size());
    for (TrieNode& node : trie) {
        for (const TrieEdge& edge : node.edges) {
            if (edge.kind == query::SelectorKind::kDescendant ||
                edge.kind == query::SelectorKind::kDescendantWildcard) {
                node.hub = next_id++;
                break;
            }
        }
    }

    std::vector<NfaRow> rows(static_cast<std::size_t>(next_id));
    for (std::size_t u = 0; u < trie.size(); ++u) {
        const TrieNode& node = trie[u];
        NfaRow& row = rows[u];
        if (node.hub >= 0) {
            row.always.push_back(node.hub);
        }
        for (const TrieEdge& edge : node.edges) {
            switch (edge.kind) {
                case query::SelectorKind::kChildWildcard:
                case query::SelectorKind::kDescendantWildcard:
                    row.always.push_back(edge.target);
                    break;
                case query::SelectorKind::kChild:
                case query::SelectorKind::kDescendant:
                case query::SelectorKind::kChildIndex:
                case query::SelectorKind::kChildSlice:
                case query::SelectorKind::kChildUnion:
                    // One arc per guarding symbol, all into the same
                    // target: subset construction dissolves the fan-out.
                    for (int symbol : edge.symbols) {
                        row.by_symbol.emplace_back(symbol, edge.target);
                    }
                    break;
                default:
                    break;
            }
        }
        if (node.hub >= 0) {
            NfaRow& hub_row = rows[static_cast<std::size_t>(node.hub)];
            hub_row.always.push_back(node.hub);
            for (const TrieEdge& edge : node.edges) {
                if (edge.kind == query::SelectorKind::kDescendantWildcard) {
                    hub_row.always.push_back(edge.target);
                } else if (edge.kind == query::SelectorKind::kDescendant) {
                    for (int symbol : edge.symbols) {
                        hub_row.by_symbol.emplace_back(symbol, edge.target);
                    }
                }
            }
        }
    }
    return rows;
}

void sort_unique(std::vector<int>& v)
{
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
}

/** Moore minimization over the exception-list representation. Initial
 *  partition: accept-set ids. A (symbol -> block) pair is omitted from a
 *  state's signature when it coincides with the fallback block, so two
 *  states compare equal iff their full transition rows agree block-wise. */
std::vector<int> minimize_blocks(const std::vector<RawState>& states)
{
    std::size_t n = states.size();
    std::vector<int> block(n);
    {
        std::map<int, int> accept_blocks;
        for (std::size_t s = 0; s < n; ++s) {
            auto [it, inserted] = accept_blocks.emplace(
                states[s].accept_id, static_cast<int>(accept_blocks.size()));
            block[s] = it->second;
        }
    }
    bool changed = true;
    while (changed) {
        using Signature = std::vector<int>;
        std::map<Signature, int> next_ids;
        std::vector<int> next_block(n);
        for (std::size_t s = 0; s < n; ++s) {
            Signature sig;
            sig.push_back(block[s]);
            int fallback_block = block[static_cast<std::size_t>(states[s].fallback)];
            sig.push_back(fallback_block);
            for (const auto& [symbol, target] : states[s].exceptions) {
                int target_block = block[static_cast<std::size_t>(target)];
                if (target_block != fallback_block) {
                    sig.push_back(symbol);
                    sig.push_back(target_block);
                }
            }
            auto [it, inserted] =
                next_ids.emplace(std::move(sig), static_cast<int>(next_ids.size()));
            next_block[s] = it->second;
        }
        changed = next_block != block;
        block = std::move(next_block);
    }
    return block;
}

}  // namespace

ProductAutomaton QuerySetCompiler::compile(const MultiQuery& set, int max_states)
{
    std::vector<TrieNode> trie = build_trie(set);
    std::vector<NfaRow> rows = build_rows(trie);

    // Accept-set interning; id 0 is the empty set so `!= 0` means accepts.
    std::vector<SubscriberSet> accept_sets{SubscriberSet(set.num_distinct())};
    std::map<std::vector<std::uint64_t>, int> accept_ids{
        {accept_sets[0].words(), 0}};

    // Subset construction over trie nodes + hubs, worklist order.
    std::map<std::vector<int>, int> subset_ids;
    std::vector<std::vector<int>> subsets;
    std::vector<RawState> raw;
    std::queue<int> worklist;
    auto intern = [&](std::vector<int> subset) {
        auto [it, inserted] =
            subset_ids.emplace(std::move(subset), static_cast<int>(subsets.size()));
        if (inserted) {
            if (static_cast<int>(subsets.size()) >= max_states) {
                throw LimitError(
                    "product automaton exceeds the state cap for this query set");
            }
            subsets.push_back(it->first);
            worklist.push(it->second);
        }
        return it->second;
    };
    intern({0});

    while (!worklist.empty()) {
        int id = worklist.front();
        worklist.pop();
        std::vector<int> subset = subsets[static_cast<std::size_t>(id)];

        std::vector<int> base;
        std::map<int, std::vector<int>> symbol_adds;
        SubscriberSet accepts(set.num_distinct());
        for (int member : subset) {
            const NfaRow& row = rows[static_cast<std::size_t>(member)];
            base.insert(base.end(), row.always.begin(), row.always.end());
            for (const auto& [symbol, target] : row.by_symbol) {
                symbol_adds[symbol].push_back(target);
            }
            if (member < static_cast<int>(trie.size())) {
                for (int d : trie[static_cast<std::size_t>(member)].accepts) {
                    accepts.set(static_cast<std::size_t>(d));
                }
            }
        }
        sort_unique(base);

        RawState state;
        state.fallback = intern(base);
        for (auto& [symbol, adds] : symbol_adds) {
            std::vector<int> successor = base;
            successor.insert(successor.end(), adds.begin(), adds.end());
            sort_unique(successor);
            if (successor == base) {
                continue;  // additions already implied by the fallback row
            }
            state.exceptions.emplace_back(symbol, intern(std::move(successor)));
        }
        auto [it, inserted] = accept_ids.emplace(
            accepts.words(), static_cast<int>(accept_sets.size()));
        if (inserted) {
            accept_sets.push_back(std::move(accepts));
        }
        state.accept_id = it->second;
        if (static_cast<std::size_t>(id) >= raw.size()) {
            raw.resize(static_cast<std::size_t>(id) + 1);
        }
        raw[static_cast<std::size_t>(id)] = std::move(state);
    }
    raw.resize(subsets.size());

    // Minimize: collapses equal behaviours across the subset lattice — in
    // particular all dead subsets into one trash state, and `$..x`-headed
    // initial shapes back into self-looping waiting states.
    std::vector<int> block = minimize_blocks(raw);
    int num_blocks = 0;
    std::vector<int> representative;
    {
        std::vector<int> remap(raw.size(), -1);
        for (std::size_t s = 0; s < raw.size(); ++s) {
            if (remap[static_cast<std::size_t>(block[s])] < 0) {
                remap[static_cast<std::size_t>(block[s])] = num_blocks++;
                representative.push_back(static_cast<int>(s));
            }
        }
        for (std::size_t s = 0; s < raw.size(); ++s) {
            block[s] = remap[static_cast<std::size_t>(block[s])];
        }
    }

    ProductAutomaton out;
    out.num_states_ = num_blocks;
    out.initial_ = block[0];
    out.fallback_.resize(static_cast<std::size_t>(num_blocks));
    out.accept_id_.resize(static_cast<std::size_t>(num_blocks));
    out.ex_begin_.assign(static_cast<std::size_t>(num_blocks) + 1, 0);

    std::vector<std::vector<std::pair<int, int>>> block_exceptions(
        static_cast<std::size_t>(num_blocks));
    for (int b = 0; b < num_blocks; ++b) {
        const RawState& rep = raw[static_cast<std::size_t>(representative[b])];
        int fallback_block = block[static_cast<std::size_t>(rep.fallback)];
        out.fallback_[static_cast<std::size_t>(b)] = fallback_block;
        out.accept_id_[static_cast<std::size_t>(b)] = rep.accept_id;
        for (const auto& [symbol, target] : rep.exceptions) {
            int target_block = block[static_cast<std::size_t>(target)];
            if (target_block != fallback_block) {
                block_exceptions[static_cast<std::size_t>(b)].emplace_back(
                    symbol, target_block);
            }
        }
    }
    for (int b = 0; b < num_blocks; ++b) {
        out.ex_begin_[static_cast<std::size_t>(b) + 1] =
            out.ex_begin_[static_cast<std::size_t>(b)] +
            static_cast<std::uint32_t>(
                block_exceptions[static_cast<std::size_t>(b)].size());
    }
    out.ex_symbols_.reserve(out.ex_begin_.back());
    out.ex_targets_.reserve(out.ex_begin_.back());
    for (int b = 0; b < num_blocks; ++b) {
        for (const auto& [symbol, target] :
             block_exceptions[static_cast<std::size_t>(b)]) {
            out.ex_symbols_.push_back(symbol);
            out.ex_targets_.push_back(target);
        }
    }
    out.accept_sets_ = std::move(accept_sets);

    // Per-state properties, mirroring automaton/properties.cpp over the
    // exception-list rows (a one-step successor is the fallback or one of
    // the exception targets — exceptions cover every row entry that
    // differs from the fallback).
    const int n = num_blocks;
    std::vector<bool> productive(static_cast<std::size_t>(n), false);
    for (int s = 0; s < n; ++s) {
        productive[static_cast<std::size_t>(s)] =
            out.accept_id_[static_cast<std::size_t>(s)] != 0;
    }
    bool changed = true;
    while (changed) {
        changed = false;
        for (int s = 0; s < n; ++s) {
            if (productive[static_cast<std::size_t>(s)]) {
                continue;
            }
            bool now = productive[static_cast<std::size_t>(
                out.fallback_[static_cast<std::size_t>(s)])];
            for (std::uint32_t e = out.ex_begin_[static_cast<std::size_t>(s)];
                 !now && e < out.ex_begin_[static_cast<std::size_t>(s) + 1];
                 ++e) {
                now = productive[static_cast<std::size_t>(out.ex_targets_[e])];
            }
            if (now) {
                productive[static_cast<std::size_t>(s)] = true;
                changed = true;
            }
        }
    }

    const automaton::Alphabet& alphabet = set.alphabet();
    out.flags_.resize(static_cast<std::size_t>(n));
    out.waiting_symbol_.assign(static_cast<std::size_t>(n), -1);
    for (int s = 0; s < n; ++s) {
        automaton::StateFlags& flags = out.flags_[static_cast<std::size_t>(s)];
        const int fallback = out.fallback_[static_cast<std::size_t>(s)];
        const std::uint32_t begin = out.ex_begin_[static_cast<std::size_t>(s)];
        const std::uint32_t end =
            out.ex_begin_[static_cast<std::size_t>(s) + 1];
        const bool fallback_accepting =
            out.accept_id_[static_cast<std::size_t>(fallback)] != 0;

        flags.accepting = out.accept_id_[static_cast<std::size_t>(s)] != 0;
        flags.rejecting = !productive[static_cast<std::size_t>(s)];

        flags.internal = !fallback_accepting;
        flags.colon_toggle = fallback_accepting;
        flags.comma_toggle = fallback_accepting;
        int live_labels = 0;
        int live_indices = 0;
        int unique_live_label = -1;
        bool unique_target_productive = false;
        for (std::uint32_t e = begin; e < end; ++e) {
            const int symbol = out.ex_symbols_[e];
            const int target = out.ex_targets_[e];
            const bool target_accepting =
                out.accept_id_[static_cast<std::size_t>(target)] != 0;
            if (target_accepting) {
                flags.internal = false;
            }
            if (alphabet.symbol_is_label(symbol)) {
                ++live_labels;
                unique_live_label = symbol;
                unique_target_productive = productive[static_cast<std::size_t>(target)];
                flags.colon_toggle = flags.colon_toggle || target_accepting;
            } else {
                ++live_indices;
                flags.comma_toggle = flags.comma_toggle || target_accepting;
            }
        }

        flags.unitary = !flags.rejecting &&
                        !productive[static_cast<std::size_t>(fallback)] &&
                        live_labels == 1 && live_indices == 0 &&
                        unique_target_productive;
        flags.waiting = fallback == s && live_labels == 1 && live_indices == 0;
        if (flags.waiting) {
            out.waiting_symbol_[static_cast<std::size_t>(s)] =
                unique_live_label;
        }
    }

    // Row classes over (fallback, exception list) — with exceptions pruned
    // against the fallback these determine the full transition row.
    out.row_class_.resize(static_cast<std::size_t>(n));
    {
        std::map<std::vector<int>, int> seen_rows;
        for (int s = 0; s < n; ++s) {
            std::vector<int> row;
            row.push_back(out.fallback_[static_cast<std::size_t>(s)]);
            for (std::uint32_t e = out.ex_begin_[static_cast<std::size_t>(s)];
                 e < out.ex_begin_[static_cast<std::size_t>(s) + 1]; ++e) {
                row.push_back(out.ex_symbols_[e]);
                row.push_back(out.ex_targets_[e]);
            }
            auto [it, inserted] =
                seen_rows.emplace(std::move(row), static_cast<int>(seen_rows.size()));
            out.row_class_[static_cast<std::size_t>(s)] = it->second;
        }
    }

    const automaton::StateFlags& initial_flags =
        out.flags_[static_cast<std::size_t>(out.initial_)];
    if (initial_flags.waiting && !initial_flags.accepting) {
        out.head_skip_label_ = alphabet.label(
            out.waiting_symbol_[static_cast<std::size_t>(out.initial_)]);
    }
    return out;
}

}  // namespace descend::multi
