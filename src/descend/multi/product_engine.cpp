#include "descend/multi/product_engine.h"

#include "descend/engine/label_search.h"
#include "descend/engine/structural_iterator.h"
#include "descend/engine/validation.h"
#include "descend/util/bit_stack.h"
#include "descend/util/inline_vector.h"
#include "descend/util/utf8.h"

namespace descend::multi {
namespace {

/** A sparse depth-stack frame, as in the single-query engine — but there
 *  is exactly ONE stack here, holding product-state ids. */
struct Frame {
    int state;
    int depth;
};

using DepthStack = InlineVector<Frame, 128>;

/**
 * The single-query Simulation of main_engine.cpp re-run over the product
 * automaton: identical event handling, with `accepting` generalized to a
 * subscriber set and each skip predicate reading the union automaton's
 * per-state flags instead of polling N lanes.
 */
class ProductSimulation {
public:
    ProductSimulation(const MultiQuery& queries, const ProductAutomaton& product,
                      const EngineOptions& options, MultiSink& sink,
                      RunStats& stats, const RunBudget* budget = nullptr)
        : queries_(queries),
          product_(product),
          options_(options),
          sink_(sink),
          stats_(stats),
          budget_(budget),
          other_(queries.alphabet().other_symbol()),
          counting_(queries.any_counting()),
          matches_(queries.num_distinct(), 0)
    {
    }

    const EngineStatus& status() const noexcept { return status_; }

    void run_main_loop(StructuralIterator& iter, bool at_document_root)
    {
        using Kind = StructuralIterator::Kind;
        const ProductAutomaton& pa = product_;
        const automaton::Alphabet& alphabet = queries_.alphabet();

        int state = pa.initial_state();
        int depth = 0;
        DepthStack stack;
        BitStack kinds;
        InlineVector<std::uint64_t, 64> counts;

        if (at_document_root && pa.accept_set_id(state) != 0) {
            // Root-accepting subscribers (`$`) select the whole document;
            // the root opening fires no transition for the initial state,
            // so they report up front — at the offset the standalone `$`
            // fast path reports.
            std::size_t start = iter.first_non_ws(0);
            if (start < iter.size()) {
                report_set(pa.accept_set_id(state), start);
            }
        }

        if (!options_.leaf_skipping) {
            iter.set_commas(true);
            iter.set_colons(true);
        }
        // Toggling (Section 3.4) over the union automaton: the product
        // state's toggles are ORs of every subscriber's, by construction.
        auto toggle = [&](int current_state, bool is_object) {
            if (!options_.leaf_skipping) {
                return;
            }
            const automaton::StateFlags& flags = pa.flags(current_state);
            iter.set_colons(is_object && flags.colon_toggle);
            iter.set_commas(!is_object && (flags.comma_toggle || counting_),
                            /*eager_disable=*/counting_);
        };

        auto array_entry_symbol = [&](std::uint64_t entry_index) {
            return counting_ ? alphabet.index_symbol(entry_index) : other_;
        };

        // §4.5 within-element skip: a waiting product state certifies that
        // NO subscriber can see anything but the awaited label — the same
        // condition the lanes backend reaches only by unanimous vote.
        auto within_skip = [&](int current_state, int& current_depth,
                               BitStack& current_kinds) {
            int symbol = pa.waiting_symbol(current_state);
            if (symbol < 0 || pa.flags(current_state).accepting || counting_) {
                return;
            }
            const std::string& label = alphabet.label(symbol);
            int leaf_accept_id =
                pa.accept_set_id(pa.transition(current_state, symbol));
            BitStack opened;
            int relative_depth = 1;
            while (true) {
                StructuralIterator::WithinResult found = iter.skip_to_label_within(
                    label, opened, relative_depth,
                    static_cast<std::size_t>(current_depth) - 1);
                stats_.counters.add(obs::Counter::kWithinSkips);
                stats_.counters.add(obs::Counter::kProductSkips);
                if (found.outcome != StructuralIterator::WithinResult::Outcome::
                                         kFoundLabel) {
                    return;
                }
                std::uint8_t first = found.value_pos < iter.size()
                                         ? iter.data()[found.value_pos]
                                         : 0;
                if (first == classify::kOpenBrace ||
                    first == classify::kOpenBracket) {
                    for (std::size_t i = 0; i < opened.size(); ++i) {
                        current_kinds.push(opened.bit_at(i));
                    }
                    current_depth += static_cast<int>(opened.size());
                    if (static_cast<std::size_t>(current_depth) >
                        options_.limits.max_depth) {
                        fail(StatusCode::kDepthLimit, found.value_pos);
                    }
                    return;
                }
                if (leaf_accept_id != 0) {
                    report_set(leaf_accept_id, found.value_pos);
                    if (!status_.ok()) {
                        return;
                    }
                }
            }
        };

        auto try_match_first_item = [&](std::size_t open_pos, int current_state) {
            int target = pa.transition(current_state, array_entry_symbol(0));
            int accept_id = pa.accept_set_id(target);
            if (accept_id == 0) {
                return;
            }
            StructuralIterator::Event following = iter.peek();
            if (following.kind == Kind::kOpening) {
                return;  // handled by the Opening case
            }
            std::size_t item = iter.first_non_ws(open_pos + 1);
            if (item >= following.pos) {
                return;  // empty array
            }
            report_set(accept_id, item);
        };

        auto label_symbol_before = [&](std::size_t pos) -> std::optional<int> {
            auto label = iter.label_before(pos);
            if (!label.has_value()) {
                return std::nullopt;
            }
            if (!util::is_valid_utf8(*label)) {
                fail(StatusCode::kInvalidUtf8InLabel,
                     static_cast<std::size_t>(
                         reinterpret_cast<const std::uint8_t*>(label->data()) -
                         iter.data()));
            }
            return alphabet.label_symbol(*label);
        };

        while (status_.ok()) {
            StructuralIterator::Event event = iter.next();
            if (event.kind == Kind::kNone) {
                if (!iter.status().ok()) {
                    fail(iter.status().code, iter.status().offset);
                } else if (depth > 0) {
                    fail(StatusCode::kUnbalancedStructure, iter.size());
                }
                return;
            }
            stats_.counters.add(obs::Counter::kStructuralEvents);
            switch (event.kind) {
                case Kind::kOpening: {
                    stats_.counters.add(obs::Counter::kOpeningEvents);
                    bool is_object = event.byte == classify::kOpenBrace;
                    bool root_opening = depth == 0 && at_document_root;
                    if (static_cast<std::size_t>(depth) >=
                        options_.limits.max_depth) {
                        fail(StatusCode::kDepthLimit, event.pos);
                        return;
                    }
                    if (!root_opening) {
                        int symbol;
                        if (auto label = label_symbol_before(event.pos)) {
                            symbol = *label;
                        } else {
                            symbol = array_entry_symbol(
                                counting_ && !counts.empty() ? counts.back() : 0);
                        }
                        if (!status_.ok()) {
                            return;
                        }
                        int target = pa.transition(state, symbol);
                        if (pa.flags(target).rejecting && options_.child_skipping) {
                            // One precomputed bit says the subtree is dead
                            // to the ENTIRE set — no consensus scan, no
                            // possible veto.
                            stats_.counters.add(obs::Counter::kChildSkips);
                            stats_.counters.add(obs::Counter::kProductSkips);
                            iter.skip_element(event.byte,
                                              static_cast<std::size_t>(depth));
                            continue;
                        }
                        if (target != state) {
                            if (pa.row_class(target) != pa.row_class(state)) {
                                stack.push_back({state, depth});
                                stats_.counters.add(obs::Counter::kDepthStackPushes);
                                stats_.counters.raise(obs::Counter::kDepthStackMax,
                                                      stack.size());
                            }
                            state = target;
                        }
                    }
                    ++depth;
                    kinds.push(is_object);
                    if (counting_ && !is_object) {
                        counts.push_back(0);
                    }
                    // The initial state's accept set was pre-reported at
                    // the document root; at the root opening `state` is
                    // still initial, so reporting it again would double.
                    int accept_id = pa.accept_set_id(state);
                    if (accept_id != 0 && !root_opening) {
                        report_set(accept_id, event.pos);
                    }
                    toggle(state, is_object);
                    if (!is_object) {
                        try_match_first_item(event.pos, state);
                    }
                    if (options_.label_within_skipping) {
                        within_skip(state, depth, kinds);
                    }
                    break;
                }
                case Kind::kClosing: {
                    if (depth == 0) {
                        fail(StatusCode::kUnbalancedStructure, event.pos);
                        return;
                    }
                    bool closed_is_object = kinds.top();
                    if (closed_is_object != (event.byte == classify::kCloseBrace)) {
                        fail(StatusCode::kUnbalancedStructure, event.pos);
                        return;
                    }
                    --depth;
                    kinds.pop();
                    if (counting_ && !closed_is_object) {
                        counts.pop_back();
                    }
                    if (depth == 0) {
                        return;
                    }
                    if (!stack.empty() && stack.back().depth == depth) {
                        bool child_advanced = !pa.flags(state).rejecting;
                        state = stack.back().state;
                        stack.pop_back();
                        if (child_advanced && pa.flags(state).unitary &&
                            options_.sibling_skipping) {
                            // Unitary on the union automaton: the consumed
                            // label was the only thing ANY subscriber could
                            // still use in this parent.
                            stats_.counters.add(obs::Counter::kSiblingSkips);
                            stats_.counters.add(obs::Counter::kProductSkips);
                            iter.skip_to_parent_close(
                                kinds.top(), static_cast<std::size_t>(depth) - 1);
                            continue;
                        }
                    }
                    toggle(state, kinds.top());
                    if (options_.label_within_skipping) {
                        within_skip(state, depth, kinds);
                    }
                    break;
                }
                case Kind::kColon: {
                    if (kinds.empty() || iter.peek().kind == Kind::kOpening) {
                        break;
                    }
                    int symbol = other_;
                    if (auto label = label_symbol_before(event.pos)) {
                        symbol = *label;
                    }
                    if (!status_.ok()) {
                        return;
                    }
                    int target = pa.transition(state, symbol);
                    int accept_id = pa.accept_set_id(target);
                    if (accept_id != 0) {
                        report_set(accept_id, iter.first_non_ws(event.pos + 1));
                        if (pa.flags(state).unitary && options_.sibling_skipping) {
                            stats_.counters.add(obs::Counter::kSiblingSkips);
                            stats_.counters.add(obs::Counter::kProductSkips);
                            iter.skip_to_parent_close(
                                kinds.top(), static_cast<std::size_t>(depth) - 1);
                        }
                    }
                    break;
                }
                case Kind::kComma: {
                    if (kinds.empty() || kinds.top()) {
                        break;  // object member separator (or malformed input)
                    }
                    if (counting_) {
                        ++counts.back();
                    }
                    StructuralIterator::Event following = iter.peek();
                    if (following.kind == Kind::kOpening ||
                        following.kind == Kind::kNone) {
                        break;
                    }
                    int target = pa.transition(
                        state, array_entry_symbol(counting_ ? counts.back() : 0));
                    int accept_id = pa.accept_set_id(target);
                    if (accept_id != 0) {
                        report_set(accept_id, iter.first_non_ws(event.pos + 1));
                    }
                    break;
                }
                case Kind::kNone:
                    if (!iter.status().ok()) {
                        fail(iter.status().code, iter.status().offset);
                    }
                    return;
            }
        }
    }

    /** Head-skip over the set-level label (ProductAutomaton::head_skip_label
     *  exists only when the whole set waits on it): one label search drives
     *  every subscriber. */
    void run_head_skip(PaddedView document, const simd::Kernels& kernels,
                       StructuralValidator* validator,
                       obs::BlockAccountant* accountant)
    {
        const ProductAutomaton& pa = product_;
        const std::string& label = *pa.head_skip_label();
        int label_symbol = queries_.alphabet().label_symbol(label);
        int leaf_accept_id =
            pa.accept_set_id(pa.transition(pa.initial_state(), label_symbol));

        LabelSearch search(document, kernels, label, validator, accountant,
                           budget_);
        StructuralIterator iter(document, kernels, validator,
                                options_.limits.max_depth, accountant, budget_);

        while (auto occurrence = search.next()) {
            stats_.counters.add(obs::Counter::kHeadSkipJumps);
            std::size_t value = iter.first_non_ws(occurrence->colon_pos + 1);
            if (value >= document.size()) {
                break;
            }
            std::uint8_t first = document.data()[value];
            if (first == classify::kOpenBrace || first == classify::kOpenBracket) {
                iter.resume(search.resume_point_at(value));
                run_main_loop(iter, /*at_document_root=*/false);
                if (!status_.ok()) {
                    return;
                }
                search.resume(iter.resume_point());
            } else if (leaf_accept_id != 0) {
                report_set(leaf_accept_id, value);
                if (!status_.ok()) {
                    return;
                }
            }
        }
        // Separate block streams, separate status latches (see the lanes
        // backend for the full rationale).
        if (status_.ok() && !search.status().ok()) {
            fail(search.status().code, search.status().offset);
        }
        if (status_.ok() && !iter.status().ok()) {
            fail(iter.status().code, iter.status().offset);
        }
    }

private:
    void fail(StatusCode code, std::size_t offset)
    {
        if (status_.ok()) {
            status_ = {code, offset};
        }
    }

    /**
     * Fans an accepting state out to its subscribers: distinct queries in
     * ascending id order (bitset scan), then each one's owners in
     * ascending input order — the exact report order of the lanes backend
     * and of N independent runs. The match limit applies per distinct
     * query; duplicates share the counter and so trip it identically to
     * their own independent runs.
     */
    void report_set(int accept_id, std::size_t offset)
    {
        product_.accept_set(accept_id).for_each([&](std::size_t d) {
            if (++matches_[d] > options_.limits.max_match_count) {
                fail(StatusCode::kMatchLimit, offset);
                return;
            }
            for (std::size_t owner : queries_.owners(d)) {
                stats_.counters.add(obs::Counter::kSubscriberFanout);
                sink_.on_match(owner, offset);
            }
        });
    }

    const MultiQuery& queries_;
    const ProductAutomaton& product_;
    const EngineOptions& options_;
    MultiSink& sink_;
    RunStats& stats_;
    const RunBudget* budget_ = nullptr;
    const int other_;
    const bool counting_;
    /** Per-DISTINCT-query match tallies (limit enforcement). */
    std::vector<std::size_t> matches_;
    EngineStatus status_;
};

/** Tallies a governance outcome into the run's counters. */
void count_governance(RunStats& stats)
{
    if (stats.status.code == StatusCode::kDeadlineExceeded) {
        stats.counters.add(obs::Counter::kDeadlineHits);
    } else if (stats.status.code == StatusCode::kCancelled) {
        stats.counters.add(obs::Counter::kCancelHits);
    }
}

}  // namespace

ProductDescendEngine::ProductDescendEngine(MultiQuery queries,
                                           EngineOptions options, int max_states)
    : queries_(std::move(queries)),
      product_(QuerySetCompiler::compile(queries_, max_states)),
      options_(options),
      kernels_(&simd::kernels_for(options.simd))
{
}

std::string ProductDescendEngine::name() const
{
    return std::string("descend-product-") + kernels_->name;
}

RunStats ProductDescendEngine::dispatch(PaddedView document, MultiSink& sink,
                                        const RunBudget& budget) const
{
    RunStats stats;
    obs::BlockAccountant accountant(&stats.counters);
    stats.counters.raise(obs::Counter::kProductStates,
                         static_cast<std::uint64_t>(product_.num_states()));
    const RunBudget* budget_ptr = budget.active() ? &budget : nullptr;
    stats.status = preflight_document(document, options_.limits);
    if (stats.status.ok() && budget_ptr != nullptr) {
        StatusCode over = budget.exceeded();
        if (over != StatusCode::kOk) {
            stats.status = {over, 0};
        }
    }
    if (!stats.status.ok()) {
        count_governance(stats);
        accountant.finish(document.size());
        return stats;
    }
    if (queries_.all_root_accepting()) {
        // Every query is `$`: mirror the standalone O(1) unvalidated path
        // (see DESIGN.md, "Error handling & limits").
        StructuralIterator iter(document, *kernels_, nullptr,
                                EngineLimits::kUnlimited, &accountant);
        std::size_t start = iter.first_non_ws(0);
        if (start < document.size()) {
            for (std::size_t i = 0; i < queries_.size(); ++i) {
                sink.on_match(i, start);
            }
        }
        accountant.finish(document.size());
        return stats;
    }
    StructuralValidator validator;
    StructuralValidator* vptr = options_.validate_structure ? &validator : nullptr;
    ProductSimulation simulation(queries_, product_, options_, sink, stats,
                                 budget_ptr);
    if (product_.head_skip_label().has_value() && options_.head_skipping) {
        simulation.run_head_skip(document, *kernels_, vptr, &accountant);
        stats.status = simulation.status();
        if (stats.status.ok() && vptr != nullptr) {
            stats.status = validator.verdict(document.size());
        }
        count_governance(stats);
        accountant.finish(document.size());
        return stats;
    }
    StructuralIterator iter(document, *kernels_, vptr, options_.limits.max_depth,
                            &accountant, budget_ptr);
    simulation.run_main_loop(iter, /*at_document_root=*/true);
    stats.status = simulation.status();
    if (stats.status.ok()) {
        std::size_t after = iter.first_non_ws(iter.position());
        if (after < document.size()) {
            stats.status = {StatusCode::kTrailingContent, after};
        }
    }
    if (stats.status.ok() && vptr != nullptr) {
        stats.status = validator.verdict(document.size());
    }
    count_governance(stats);
    accountant.finish(document.size());
    return stats;
}

EngineStatus ProductDescendEngine::run(PaddedView document, MultiSink& sink) const
{
    return dispatch(document, sink, options_.budget).status;
}

RunStats ProductDescendEngine::run_with_stats(PaddedView document,
                                              MultiSink& sink) const
{
    return run_with_stats(document, sink, options_.budget);
}

RunStats ProductDescendEngine::run_with_stats(PaddedView document,
                                              MultiSink& sink,
                                              const RunBudget& budget) const
{
    obs::PhaseStopwatch watch;
    RunStats stats = dispatch(document, sink, budget);
    stats.timings.add(obs::Phase::kAutomaton, watch.elapsed_ns());
    return stats;
}

}  // namespace descend::multi
