#include "descend/multi/multi_stream.h"

#include <algorithm>
#include <atomic>
#include <thread>
#include <utility>

namespace descend::multi {
namespace {

constexpr std::size_t kNoError = stream::StreamResult::kNone;

/** One record's buffered fused-run outcome, produced by a worker. */
struct RecordOutcome {
    std::size_t record = 0;
    EngineStatus status;
    /** Per-query intra-record match offsets; populated only when
     *  status.ok(), so a failed record never leaks partial matches. */
    std::vector<std::vector<std::size_t>> offsets;
};

/** Atomic fetch-min (see stream_executor.cpp for why this makes
 *  fail-fast deterministic). */
void lower_floor(std::atomic<std::size_t>& floor, std::size_t candidate)
{
    std::size_t current = floor.load(std::memory_order_relaxed);
    while (candidate < current &&
           !floor.compare_exchange_weak(current, candidate,
                                        std::memory_order_relaxed)) {
    }
}

}  // namespace

stream::StreamResult MultiStreamExecutor::run(PaddedView input,
                                              MultiStreamSink& sink) const
{
    const simd::Kernels& kernels = simd::kernels_for(options_.engine.simd);
    obs::PhaseStopwatch watch;
    std::vector<stream::RecordSpan> records = stream::split_records(input, kernels);
    std::uint64_t split_ns = watch.elapsed_ns();
    stream::StreamResult result = run_records(input, records, sink);
    result.timings.add(obs::Phase::kSplit, split_ns);
    return result;
}

stream::StreamResult MultiStreamExecutor::run_records(
    PaddedView input, const std::vector<stream::RecordSpan>& records,
    MultiStreamSink& sink) const
{
    stream::StreamResult result;
    result.records = records.size();
    if (records.empty()) {
        return result;
    }
    const std::size_t num_queries = engine_.query_set().size();

    const std::size_t batch_size =
        options_.records_per_batch > 0 ? options_.records_per_batch : 1;
    const std::size_t num_batches =
        (records.size() + batch_size - 1) / batch_size;
    std::size_t workers = options_.threads != 0
                              ? options_.threads
                              : std::thread::hardware_concurrency();
    workers = std::min(std::max<std::size_t>(workers, 1), num_batches);

    const bool fail_fast = options_.policy == stream::ErrorPolicy::kFailFast;
    std::vector<std::vector<RecordOutcome>> outcomes(num_batches);
    std::atomic<std::size_t> next_batch{0};
    std::atomic<std::size_t> error_floor{kNoError};

    struct ShardObs {
        obs::Counters counters;
        obs::Timings timings;
        std::size_t record_blocks = 0;
    };
    std::vector<ShardObs> shard_obs(workers);

    auto worker = [&](std::size_t shard) {
        ShardObs& local = shard_obs[shard];
        for (;;) {
            std::size_t batch = next_batch.fetch_add(1, std::memory_order_relaxed);
            if (batch >= num_batches) {
                break;
            }
            std::size_t first = batch * batch_size;
            std::size_t last = std::min(first + batch_size, records.size());
            if (fail_fast && first > error_floor.load(std::memory_order_relaxed)) {
                continue;
            }
            std::vector<RecordOutcome>& out = outcomes[batch];
            out.reserve(last - first);
            for (std::size_t r = first; r < last; ++r) {
                if (fail_fast && r > error_floor.load(std::memory_order_relaxed)) {
                    break;
                }
                const stream::RecordSpan& span = records[r];
                CollectingMultiSink collector(num_queries);
                RecordOutcome outcome;
                outcome.record = r;
                RunStats run_stats = engine_.run_with_stats(
                    input.subview(span.begin, span.size()), collector);
                outcome.status = run_stats.status;
                if constexpr (obs::kEnabled) {
                    local.counters.merge(run_stats.counters);
                    local.timings.merge(run_stats.timings);
                    local.record_blocks +=
                        (span.size() + simd::kBlockSize - 1) / simd::kBlockSize;
                }
                if (outcome.status.ok()) {
                    outcome.offsets = collector.all();
                } else if (fail_fast) {
                    lower_floor(error_floor, r);
                }
                bool failed = !outcome.status.ok();
                out.push_back(std::move(outcome));
                if (fail_fast && failed) {
                    break;
                }
            }
        }
    };

    if (workers <= 1) {
        worker(0);
    } else {
        std::vector<std::thread> pool;
        pool.reserve(workers);
        for (std::size_t i = 0; i < workers; ++i) {
            pool.emplace_back(worker, i);
        }
        for (std::thread& thread : pool) {
            thread.join();
        }
    }
    for (const ShardObs& shard : shard_obs) {
        result.counters.merge(shard.counters);
        result.timings.merge(shard.timings);
        result.record_blocks += shard.record_blocks;
    }

    // Ordered replay: records ascend across and within batches; per record
    // the queries replay in set order. Under fail-fast everything past the
    // floor is discarded, the floor record being the one reported error.
    const std::size_t floor = error_floor.load(std::memory_order_relaxed);
    bool stopped = false;
    for (std::size_t batch = 0; batch < num_batches && !stopped; ++batch) {
        for (const RecordOutcome& outcome : outcomes[batch]) {
            if (fail_fast && outcome.record > floor) {
                stopped = true;
                break;
            }
            if (outcome.status.ok()) {
                for (std::size_t q = 0; q < outcome.offsets.size(); ++q) {
                    for (std::size_t offset : outcome.offsets[q]) {
                        sink.on_match(q, outcome.record, offset);
                        ++result.matches;
                    }
                }
            } else {
                sink.on_record_error(outcome.record, outcome.status);
                ++result.failed_records;
                ++result.error_tally[static_cast<std::size_t>(outcome.status.code)];
                if (result.first_error_record == stream::StreamResult::kNone) {
                    result.first_error_record = outcome.record;
                    result.first_error = outcome.status;
                }
                if (fail_fast) {
                    stopped = true;
                    break;
                }
            }
        }
    }
    return result;
}

}  // namespace descend::multi
