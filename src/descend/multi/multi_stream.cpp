#include "descend/multi/multi_stream.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <utility>

#include "descend/fault/failpoints.h"

namespace descend::multi {
namespace {

constexpr std::size_t kNoError = stream::StreamResult::kNone;

/** One record's buffered fused-run outcome, produced by a worker. */
struct RecordOutcome {
    std::size_t record = 0;
    EngineStatus status;
    /** Per-query intra-record match offsets; populated only when
     *  status.ok(), so a failed record never leaks partial matches. */
    std::vector<std::vector<std::size_t>> offsets;
};

/** Atomic fetch-min (see stream_executor.cpp for why this makes
 *  fail-fast deterministic). */
void lower_floor(std::atomic<std::size_t>& floor, std::size_t candidate)
{
    std::size_t current = floor.load(std::memory_order_relaxed);
    while (candidate < current &&
           !floor.compare_exchange_weak(current, candidate,
                                        std::memory_order_relaxed)) {
    }
}

}  // namespace

stream::StreamResult MultiStreamExecutor::run(PaddedView input,
                                              MultiStreamSink& sink) const
{
    const simd::Kernels& kernels = simd::kernels_for(options_.engine.simd);
    obs::PhaseStopwatch watch;
    std::vector<stream::RecordSpan> records = stream::split_records(input, kernels);
    std::uint64_t split_ns = watch.elapsed_ns();
    stream::StreamResult result = run_records(input, records, sink);
    result.timings.add(obs::Phase::kSplit, split_ns);
    return result;
}

stream::StreamResult MultiStreamExecutor::run_records(
    PaddedView input, const std::vector<stream::RecordSpan>& records,
    MultiStreamSink& sink) const
{
    stream::StreamResult result;
    result.records = records.size();
    if (records.empty()) {
        return result;
    }
    const std::size_t num_queries = engine_->query_set().size();

    const std::size_t batch_size =
        options_.records_per_batch > 0 ? options_.records_per_batch : 1;
    const std::size_t num_batches =
        (records.size() + batch_size - 1) / batch_size;
    std::size_t workers = options_.threads != 0
                              ? options_.threads
                              : std::thread::hardware_concurrency();
    workers = std::min(std::max<std::size_t>(workers, 1), num_batches);

    const bool fail_fast = options_.policy == stream::ErrorPolicy::kFailFast;
    const bool retry_scalar =
        options_.policy == stream::ErrorPolicy::kRetryScalar;
    const RunBudget& stream_budget = options_.stream_budget;
    const bool stream_governed = stream_budget.active();
    const bool record_governed = options_.record_budget_ms > 0;
    std::vector<std::vector<RecordOutcome>> outcomes(num_batches);
    std::atomic<std::size_t> next_batch{0};
    std::atomic<std::size_t> error_floor{kNoError};
    // First record that did not finish because the stream budget tripped
    // (see stream_executor.cpp for the determinism argument).
    std::atomic<std::size_t> budget_floor{kNoError};

    struct ShardObs {
        obs::Counters counters;
        obs::Timings timings;
        std::size_t record_blocks = 0;
        std::size_t retried = 0;
        std::size_t diverged = 0;
    };
    std::vector<ShardObs> shard_obs(workers);

    auto worker = [&](std::size_t shard) {
        if constexpr (fault::kEnabled) {
            fault::maybe_stall(fault::Site::kWorkerStartup);
        }
        ShardObs& local = shard_obs[shard];
        // Scalar-tier fused engine for kRetryScalar, built on first use
        // (same backend selection as the primary engine).
        std::unique_ptr<FusedEngine> scalar_engine;
        for (;;) {
            std::size_t batch = next_batch.fetch_add(1, std::memory_order_relaxed);
            if (batch >= num_batches) {
                break;
            }
            std::size_t first = batch * batch_size;
            std::size_t last = std::min(first + batch_size, records.size());
            if (stream_governed &&
                stream_budget.exceeded() != StatusCode::kOk) {
                lower_floor(budget_floor, first);
                break;
            }
            if (fail_fast && first > error_floor.load(std::memory_order_relaxed)) {
                continue;
            }
            std::vector<RecordOutcome>& out = outcomes[batch];
            out.reserve(last - first);
            bool budget_tripped = false;
            for (std::size_t r = first; r < last; ++r) {
                if (fail_fast && r > error_floor.load(std::memory_order_relaxed)) {
                    break;
                }
                if (stream_governed &&
                    stream_budget.exceeded() != StatusCode::kOk) {
                    lower_floor(budget_floor, r);
                    budget_tripped = true;
                    break;
                }
                const stream::RecordSpan& span = records[r];
                CollectingMultiSink collector(num_queries);
                RecordOutcome outcome;
                outcome.record = r;
                RunBudget record_budget = stream_budget;
                if (record_governed) {
                    record_budget = stream_budget.tightened(
                        RunBudget::Clock::now() +
                        std::chrono::milliseconds(options_.record_budget_ms));
                }
                RunStats run_stats =
                    stream_governed || record_governed
                        ? engine_->run_with_stats(
                              input.subview(span.begin, span.size()),
                              collector, record_budget)
                        : engine_->run_with_stats(
                              input.subview(span.begin, span.size()),
                              collector);
                outcome.status = run_stats.status;
                if constexpr (obs::kEnabled) {
                    local.counters.merge(run_stats.counters);
                    local.timings.merge(run_stats.timings);
                    local.record_blocks +=
                        (span.size() + simd::kBlockSize - 1) / simd::kBlockSize;
                }
                if (!outcome.status.ok() && outcome.status.is_governance() &&
                    stream_governed &&
                    stream_budget.exceeded() != StatusCode::kOk) {
                    // The stream budget cut this record short: unfinished,
                    // not failed.
                    lower_floor(budget_floor, r);
                    budget_tripped = true;
                    break;
                }
                if (!outcome.status.ok() && retry_scalar &&
                    !outcome.status.is_governance()) {
                    if (scalar_engine == nullptr) {
                        EngineOptions scalar_options = options_.engine;
                        scalar_options.simd = simd::Level::scalar;
                        std::vector<query::Query> sources;
                        sources.reserve(engine_->query_set().size());
                        for (std::size_t q = 0; q < engine_->query_set().size();
                             ++q) {
                            sources.push_back(engine_->query_set().source(q));
                        }
                        scalar_engine = make_fused_engine(
                            MultiQuery::compile(sources), scalar_options,
                            backend_);
                    }
                    CollectingMultiSink scalar_collector(num_queries);
                    RunStats scalar_stats =
                        stream_governed || record_governed
                            ? scalar_engine->run_with_stats(
                                  input.subview(span.begin, span.size()),
                                  scalar_collector, record_budget)
                            : scalar_engine->run_with_stats(
                                  input.subview(span.begin, span.size()),
                                  scalar_collector);
                    ++local.retried;
                    local.counters.add(obs::Counter::kScalarRetries);
                    if (scalar_stats.status.code != outcome.status.code ||
                        scalar_stats.status.offset != outcome.status.offset) {
                        ++local.diverged;
                        local.counters.add(obs::Counter::kTierDivergences);
                    }
                    outcome.status = scalar_stats.status;
                    if (outcome.status.ok()) {
                        outcome.offsets = scalar_collector.all();
                    }
                } else if (outcome.status.ok()) {
                    outcome.offsets = collector.all();
                }
                if (!outcome.status.ok() && fail_fast) {
                    lower_floor(error_floor, r);
                }
                bool failed = !outcome.status.ok();
                out.push_back(std::move(outcome));
                if (fail_fast && failed) {
                    break;
                }
            }
            if (budget_tripped) {
                break;
            }
        }
    };

    if (workers <= 1) {
        worker(0);
    } else {
        std::vector<std::thread> pool;
        pool.reserve(workers);
        for (std::size_t i = 0; i < workers; ++i) {
            pool.emplace_back(worker, i);
        }
        for (std::thread& thread : pool) {
            thread.join();
        }
    }
    for (const ShardObs& shard : shard_obs) {
        result.counters.merge(shard.counters);
        result.timings.merge(shard.timings);
        result.record_blocks += shard.record_blocks;
        result.retried_records += shard.retried;
        result.tier_divergences += shard.diverged;
    }

    // Ordered replay: records ascend across and within batches; per record
    // the queries replay in set order. Under fail-fast everything past the
    // floor is discarded, the floor record being the one reported error.
    const std::size_t floor = error_floor.load(std::memory_order_relaxed);
    const std::size_t bfloor = budget_floor.load(std::memory_order_relaxed);
    bool stopped = false;
    bool error_stopped = false;
    for (std::size_t batch = 0; batch < num_batches && !stopped; ++batch) {
        for (const RecordOutcome& outcome : outcomes[batch]) {
            if (outcome.record >= bfloor) {
                // Finished after the budget floor: discarded, like a
                // fail-fast record past the error floor.
                stopped = true;
                break;
            }
            if (fail_fast && outcome.record > floor) {
                stopped = true;
                error_stopped = true;
                break;
            }
            if (outcome.status.ok()) {
                for (std::size_t q = 0; q < outcome.offsets.size(); ++q) {
                    for (std::size_t offset : outcome.offsets[q]) {
                        sink.on_match(q, outcome.record, offset);
                        ++result.matches;
                    }
                }
            } else {
                sink.on_record_error(outcome.record, outcome.status);
                ++result.failed_records;
                ++result.error_tally[static_cast<std::size_t>(outcome.status.code)];
                if (result.first_error_record == stream::StreamResult::kNone) {
                    result.first_error_record = outcome.record;
                    result.first_error = outcome.status;
                    result.first_error_span_begin =
                        records[outcome.record].begin;
                }
                if (fail_fast) {
                    stopped = true;
                    error_stopped = true;
                    break;
                }
            }
        }
    }
    if (bfloor != kNoError && !error_stopped) {
        // Stream-budget stop: synthesize the floor record's governance
        // error (see stream_executor.cpp).
        StatusCode code = stream_budget.exceeded();
        if (code == StatusCode::kOk) {
            code = StatusCode::kDeadlineExceeded;
        }
        EngineStatus synthesized{code, 0};
        result.budget_stopped = true;
        sink.on_record_error(bfloor, synthesized);
        ++result.failed_records;
        ++result.error_tally[static_cast<std::size_t>(code)];
        if (result.first_error_record == stream::StreamResult::kNone) {
            result.first_error_record = bfloor;
            result.first_error = synthesized;
            result.first_error_span_begin = records[bfloor].begin;
        }
    }
    return result;
}

}  // namespace descend::multi
