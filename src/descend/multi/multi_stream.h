/**
 * @file
 * Parallel sharded execution of a fused query SET over a record stream:
 * N queries × M records off ONE splitter pass and one classification pass
 * per record.
 *
 * Mirrors stream/stream_executor.h: workers claim contiguous batches of
 * records from an atomic cursor and run the fused engine zero-copy over
 * each record's subview; per-(query, record) match sets are buffered per
 * batch and replayed in document order — records ascending, queries
 * ascending within a record, offsets ascending within a query — after the
 * workers join, so the sink observes a deterministic order for every
 * thread count and never needs to be thread-safe.
 *
 * Failure semantics are per record and inherited from StreamOptions'
 * ErrorPolicy: a record whose fused run fails (the document stream is one
 * byte stream — a malformed record fails the set as a whole) contributes
 * no matches for ANY query; kSkipRecord reports it and keeps going,
 * kFailFast stops the stream at the first failing record in document
 * order, exactly as the single-query executor does.
 */
#pragma once

#include <memory>
#include <vector>

#include "descend/multi/fused.h"
#include "descend/stream/record_splitter.h"
#include "descend/stream/stream_executor.h"

namespace descend::multi {

/** Receiver of fused stream results, in the deterministic replay order. */
class MultiStreamSink {
public:
    virtual ~MultiStreamSink() = default;

    /** @param offset byte offset relative to the record's span begin. */
    virtual void on_match(std::size_t query_index, std::size_t record_index,
                          std::size_t offset) = 0;

    /** A record whose fused run failed (affects every query; the default
     *  ignores it — the aggregate StreamResult still counts it). */
    virtual void on_record_error(std::size_t record_index,
                                 const EngineStatus& status)
    {
        (void)record_index;
        (void)status;
    }
};

/** Counts matches per query and failed records — the benchmark sink. */
class CountingMultiStreamSink final : public MultiStreamSink {
public:
    explicit CountingMultiStreamSink(std::size_t num_queries)
        : counts_(num_queries)
    {
    }

    void on_match(std::size_t query_index, std::size_t, std::size_t) override
    {
        ++counts_[query_index];
    }

    void on_record_error(std::size_t, const EngineStatus&) override
    {
        ++failed_records_;
    }

    std::size_t count(std::size_t query_index) const
    {
        return counts_[query_index];
    }

    std::size_t failed_records() const noexcept { return failed_records_; }

private:
    std::vector<std::size_t> counts_;
    std::size_t failed_records_ = 0;
};

/** Collects (query, record, offset) triples and record errors. */
class CollectingMultiStreamSink final : public MultiStreamSink {
public:
    struct Match {
        std::size_t query = 0;
        std::size_t record = 0;
        std::size_t offset = 0;

        friend bool operator==(const Match& a, const Match& b) noexcept
        {
            return a.query == b.query && a.record == b.record &&
                   a.offset == b.offset;
        }
    };

    void on_match(std::size_t query_index, std::size_t record_index,
                  std::size_t offset) override
    {
        matches_.push_back({query_index, record_index, offset});
    }

    void on_record_error(std::size_t record_index,
                         const EngineStatus& status) override
    {
        errors_.push_back({record_index, status});
    }

    const std::vector<Match>& matches() const noexcept { return matches_; }
    const std::vector<stream::CollectingStreamSink::RecordError>& errors()
        const noexcept
    {
        return errors_;
    }

private:
    std::vector<Match> matches_;
    std::vector<stream::CollectingStreamSink::RecordError> errors_;
};

/** Runs a fused query set over NDJSON streams; reusable across streams.
 *  The compiled backend (lanes or product) is built ONCE here and shared
 *  read-only by every worker thread — the whole point of set compilation:
 *  a 1k-query product automaton amortizes across all records and shards. */
class MultiStreamExecutor {
public:
    explicit MultiStreamExecutor(MultiQuery queries,
                                 stream::StreamOptions options = {},
                                 FusedBackend backend = FusedBackend::kAuto)
        : engine_(make_fused_engine(std::move(queries), options.engine, backend)),
          options_(options),
          backend_(backend)
    {
    }

    /** Convenience: parse, compile and wrap a query set. */
    static MultiStreamExecutor for_queries(
        const std::vector<std::string>& query_texts,
        stream::StreamOptions options = {},
        FusedBackend backend = FusedBackend::kAuto)
    {
        return MultiStreamExecutor(MultiQuery::compile(query_texts), options,
                                   backend);
    }

    /** Splits @p input into records and runs the set over each. The
     *  aggregate's `matches` sums over all queries. */
    stream::StreamResult run(PaddedView input, MultiStreamSink& sink) const;

    /** Runs over records already split from @p input. */
    stream::StreamResult run_records(PaddedView input,
                                     const std::vector<stream::RecordSpan>& records,
                                     MultiStreamSink& sink) const;

    const FusedEngine& engine() const noexcept { return *engine_; }
    FusedBackend backend() const noexcept { return backend_; }
    const stream::StreamOptions& options() const noexcept { return options_; }

private:
    std::unique_ptr<FusedEngine> engine_;
    stream::StreamOptions options_;
    FusedBackend backend_ = FusedBackend::kAuto;
};

}  // namespace descend::multi
