#include "descend/multi/fused.h"

#include <utility>

#include "descend/multi/multi_engine.h"
#include "descend/multi/product_engine.h"
#include "descend/util/errors.h"

namespace descend::multi {

std::optional<FusedBackend> parse_fused_backend(std::string_view text)
{
    if (text == "auto") {
        return FusedBackend::kAuto;
    }
    if (text == "lanes") {
        return FusedBackend::kLanes;
    }
    if (text == "product") {
        return FusedBackend::kProduct;
    }
    return std::nullopt;
}

std::string_view fused_backend_name(FusedBackend backend) noexcept
{
    switch (backend) {
        case FusedBackend::kAuto: return "auto";
        case FusedBackend::kLanes: return "lanes";
        case FusedBackend::kProduct: return "product";
    }
    return "auto";
}

std::unique_ptr<FusedEngine> make_fused_engine(MultiQuery queries,
                                               EngineOptions options,
                                               FusedBackend backend)
{
    switch (backend) {
        case FusedBackend::kLanes:
            return std::make_unique<MultiDescendEngine>(std::move(queries),
                                                        options);
        case FusedBackend::kProduct:
            return std::make_unique<ProductDescendEngine>(std::move(queries),
                                                          options);
        case FusedBackend::kAuto:
            break;
    }
    // auto: prefer the product automaton; a set whose subset construction
    // trips the state cap falls back to lanes, which always compile.
    try {
        return std::make_unique<ProductDescendEngine>(queries, options);
    } catch (const LimitError&) {
        return std::make_unique<MultiDescendEngine>(std::move(queries), options);
    }
}

std::unique_ptr<FusedEngine> make_fused_engine(
    const std::vector<std::string>& query_texts, EngineOptions options,
    FusedBackend backend)
{
    return make_fused_engine(MultiQuery::compile(query_texts), options, backend);
}

}  // namespace descend::multi
