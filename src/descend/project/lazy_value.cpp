#include "descend/project/lazy_value.h"

#include "descend/util/chars.h"

namespace descend::project {
namespace {

/** Parses the span's bytes as one strict JSON document. */
json::Document parse_span(std::string_view bytes)
{
    return json::parse(bytes);
}

}  // namespace

json::Type LazyValue::type() const noexcept
{
    if (!exists()) {
        return json::Type::kNull;
    }
    switch (document_.data()[span_.begin]) {
        case '{': return json::Type::kObject;
        case '[': return json::Type::kArray;
        case '"': return json::Type::kString;
        case 't':
        case 'f': return json::Type::kBool;
        case 'n': return json::Type::kNull;
        default: return json::Type::kNumber;
    }
}

std::size_t LazyValue::skip_ws(std::size_t pos) const noexcept
{
    const std::uint8_t* data = document_.data();
    while (pos < span_.end && chars::is_ws_byte(data[pos])) {
        ++pos;
    }
    return pos;
}

LazyValue LazyValue::child(std::size_t begin, std::size_t end) const noexcept
{
    obs::add(counters_, obs::Counter::kLazyFieldsParsed);
    return LazyValue(document_, {begin, end}, *kernels_, counters_);
}

LazyValue LazyValue::field(std::string_view raw_key) const
{
    if (!exists() || document_.data()[span_.begin] != '{') {
        return {};
    }
    SpanExtender extender(document_, *kernels_);
    const std::string_view text = document_.view();
    std::size_t pos = skip_ws(span_.begin + 1);
    while (pos < span_.end && text[pos] != '}') {
        if (text[pos] != '"') {
            return {};  // malformed member: bail rather than misattribute
        }
        const ValueSpan key = extender.extend(pos);
        const std::string_view key_raw =
            text.substr(key.begin + 1, key.size() - 2);
        pos = skip_ws(key.end);
        if (pos >= span_.end || text[pos] != ':') {
            return {};
        }
        pos = skip_ws(pos + 1);
        if (pos >= span_.end) {
            return {};
        }
        const ValueSpan value = extender.extend(pos);
        if (key_raw == raw_key) {
            return child(value.begin, value.end);
        }
        pos = skip_ws(value.end);
        if (pos < span_.end && text[pos] == ',') {
            pos = skip_ws(pos + 1);
        }
    }
    return {};
}

LazyValue LazyValue::element(std::size_t index) const
{
    if (!exists() || document_.data()[span_.begin] != '[') {
        return {};
    }
    SpanExtender extender(document_, *kernels_);
    const std::string_view text = document_.view();
    std::size_t pos = skip_ws(span_.begin + 1);
    std::size_t seen = 0;
    while (pos < span_.end && text[pos] != ']') {
        const ValueSpan value = extender.extend(pos);
        if (seen == index) {
            return child(value.begin, value.end);
        }
        ++seen;
        pos = skip_ws(value.end);
        if (pos < span_.end && text[pos] == ',') {
            pos = skip_ws(pos + 1);
        }
    }
    return {};
}

std::size_t LazyValue::size() const
{
    if (!exists()) {
        return 0;
    }
    const std::uint8_t open = document_.data()[span_.begin];
    if (open != '{' && open != '[') {
        return 0;
    }
    SpanExtender extender(document_, *kernels_);
    const std::string_view text = document_.view();
    const char close = open == '{' ? '}' : ']';
    std::size_t pos = skip_ws(span_.begin + 1);
    std::size_t count = 0;
    while (pos < span_.end && text[pos] != close) {
        if (open == '{') {
            if (text[pos] != '"') {
                return count;
            }
            const ValueSpan key = extender.extend(pos);
            pos = skip_ws(key.end);
            if (pos >= span_.end || text[pos] != ':') {
                return count;
            }
            pos = skip_ws(pos + 1);
            if (pos >= span_.end) {
                return count;
            }
        }
        const ValueSpan value = extender.extend(pos);
        ++count;
        pos = skip_ws(value.end);
        if (pos < span_.end && text[pos] == ',') {
            pos = skip_ws(pos + 1);
        }
    }
    return count;
}

double LazyValue::as_number() const
{
    return parse_span(raw()).root().as_number();
}

bool LazyValue::as_bool() const
{
    return parse_span(raw()).root().as_bool();
}

bool LazyValue::is_null() const
{
    return exists() && parse_span(raw()).root().is_null();
}

std::string LazyValue::as_string() const
{
    return parse_span(raw()).root().as_string();
}

}  // namespace descend::project
