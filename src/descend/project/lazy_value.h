/**
 * @file
 * LazyValue: an on-demand navigable view over one matched span.
 *
 * Navigation (field/element) never parses the subtree. Finding a member
 * walks the object's top level only: each key is delimited with the
 * string fast path and each sibling *value* is stepped over with the
 * same mask-walk span extension the projection layer uses (span.h) —
 * sibling subtrees are skipped at classifier speed, never tokenized, in
 * the spirit of "On-Demand JSON" (PAPERS.md). Only when a *leaf* is
 * converted (as_number / as_string / as_bool) does the DOM parser run,
 * and then only over that leaf's span.
 *
 * Invariants (tested in projection_test, documented in DESIGN.md §4.11):
 *  1. raw() is byte-identical to the input slice — a LazyValue is a
 *     window, not a copy.
 *  2. field()/element() touch no bytes outside this value's span.
 *  3. Conversion parses exactly the converted value's span; navigation
 *     alone parses nothing.
 *  4. Each resolved navigation increments the lazy_fields_parsed obs
 *     counter (the metric for "how much did laziness save").
 *
 * A LazyValue that points nowhere (key/index not found, navigation on a
 * non-container, malformed bytes) is !exists(); navigating it further
 * stays !exists(), so chained paths need a single check at the end.
 * Lifetime: aliases the document buffer — valid only while it is.
 */
#pragma once

#include <cstddef>
#include <string>
#include <string_view>

#include "descend/engine/padded_string.h"
#include "descend/json/dom.h"
#include "descend/obs/counters.h"
#include "descend/project/span.h"
#include "descend/simd/dispatch.h"

namespace descend::project {

class LazyValue {
public:
    /** An absent value: !exists(). */
    LazyValue() = default;

    /**
     * A view of the value occupying @p span of @p document. The span
     * must cover exactly one JSON value (a projection span qualifies).
     */
    LazyValue(PaddedView document, ValueSpan span,
              const simd::Kernels& kernels,
              obs::Counters* counters = nullptr) noexcept
        : document_(document),
          span_(span),
          kernels_(&kernels),
          counters_(counters)
    {
    }

    /** False for the not-found / navigation-failed sentinel. */
    bool exists() const noexcept { return kernels_ != nullptr && !span_.empty(); }

    /** The value's raw bytes, escapes and formatting untouched. */
    std::string_view raw() const noexcept
    {
        return document_.view().substr(span_.begin, span_.size());
    }

    ValueSpan span() const noexcept { return span_; }

    /** The value's type, read off the first byte — no parsing. */
    json::Type type() const noexcept;

    bool is_object() const noexcept { return type() == json::Type::kObject; }
    bool is_array() const noexcept { return type() == json::Type::kArray; }

    /**
     * The member value under @p raw_key (raw bytes between the key's
     * quotes, the engine's label convention). Scans this object's top
     * level only; sibling values are mask-skipped, not parsed. First
     * match wins on duplicate keys. !exists() when absent or when this
     * value is not an object.
     */
    LazyValue field(std::string_view raw_key) const;

    /** The @p index-th array element, same contract as field(). */
    LazyValue element(std::size_t index) const;

    /** Members of an object / elements of an array, by top-level scan.
     *  0 for non-containers. */
    std::size_t size() const;

    // Leaf conversions: parse exactly this value's span via the DOM
    // parser. Wrong-type or malformed conversions throw json::ParseError
    // (the strict parser's diagnostic, offset relative to the span).

    double as_number() const;
    bool as_bool() const;
    bool is_null() const;
    /** Unescaped string contents. */
    std::string as_string() const;

private:
    /** Skips JSON whitespace from @p pos, staying inside the span. */
    std::size_t skip_ws(std::size_t pos) const noexcept;

    /** Wraps [begin,end) as a child view sharing this value's context. */
    LazyValue child(std::size_t begin, std::size_t end) const noexcept;

    PaddedView document_;
    ValueSpan span_;
    const simd::Kernels* kernels_ = nullptr;
    obs::Counters* counters_ = nullptr;
};

}  // namespace descend::project
