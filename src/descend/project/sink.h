/**
 * @file
 * Projection sinks: the consumers of extended value spans.
 *
 * The engine side of the seam is span extension (span.h) driving a
 * ProjectionSink with one (span, bytes) pair per match, in document
 * order. The sinks decide what materialization means:
 *
 *  - SliceSink      zero-copy raw slices into the input view
 *  - NdjsonSink     one matched value per output line, re-serialized
 *                   compactly (string bytes, including escapes, verbatim)
 *  - CountingProjectionSink   counts + byte totals, the overhead baseline
 *
 * The on-demand navigable view (LazyValue) is not a sink — it wraps one
 * span after the fact; see lazy_value.h.
 *
 * Lifetime: the string_view handed to on_value aliases the document
 * buffer the spans were extended over. Sinks that outlive the buffer
 * (NdjsonSink's output, counting) copy what they keep; SliceSink
 * deliberately does not — its slices are valid only while the input is.
 */
#pragma once

#include <cstddef>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "descend/project/span.h"

namespace descend::project {

/** Receiver of projected values, invoked in document order. */
class ProjectionSink {
public:
    virtual ~ProjectionSink() = default;

    /**
     * One matched value.
     *
     * @param span  the value's byte range, relative to the view it was
     *              extended over (a record subview in NDJSON mode)
     * @param bytes the value's raw bytes (aliases the input buffer)
     */
    virtual void on_value(const ValueSpan& span, std::string_view bytes) = 0;
};

/** Collects zero-copy slices (and their spans) into the input view. */
class SliceSink final : public ProjectionSink {
public:
    void on_value(const ValueSpan& span, std::string_view bytes) override
    {
        spans_.push_back(span);
        slices_.push_back(bytes);
    }

    const std::vector<ValueSpan>& spans() const noexcept { return spans_; }
    const std::vector<std::string_view>& slices() const noexcept
    {
        return slices_;
    }

private:
    std::vector<ValueSpan> spans_;
    std::vector<std::string_view> slices_;
};

/** Tallies values and bytes without materializing anything: the
 *  count-only baseline the projection benchmarks compare against. */
class CountingProjectionSink final : public ProjectionSink {
public:
    void on_value(const ValueSpan& span, std::string_view) override
    {
        ++values_;
        bytes_ += span.size();
    }

    std::size_t values() const noexcept { return values_; }
    std::size_t bytes() const noexcept { return bytes_; }

private:
    std::size_t values_ = 0;
    std::size_t bytes_ = 0;
};

/**
 * Re-serializes each matched value onto one NDJSON output line.
 *
 * The line is the value with insignificant whitespace (outside strings)
 * removed and everything else byte-verbatim — string contents keep their
 * original escapes untouched. Because raw control characters are illegal
 * inside JSON strings, stripping outside-string whitespace is exactly
 * what guarantees the one-line-per-value invariant, with no re-escaping
 * pass that could perturb the input's representation choices.
 */
class NdjsonSink final : public ProjectionSink {
public:
    explicit NdjsonSink(std::ostream& out) noexcept : out_(&out) {}

    void on_value(const ValueSpan& span, std::string_view bytes) override;

    std::size_t lines() const noexcept { return lines_; }

private:
    std::ostream* out_;
    std::string scratch_;
    std::size_t lines_ = 0;
};

/**
 * Appends @p value to @p out with insignificant whitespace removed
 * (NdjsonSink's per-value transform, exposed for tests and the serve
 * payload builder). String bytes are copied verbatim, escapes included.
 */
void append_compact_value(std::string_view value, std::string& out);

}  // namespace descend::project
