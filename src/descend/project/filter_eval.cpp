#include "descend/project/filter_eval.h"

#include "descend/util/errors.h"

namespace descend::project {
namespace {

using query::FilterLiteral;
using query::FilterOp;

/** Same-type equality between a lazy leaf and the compiled literal —
 *  the lazy mirror of query.cpp's literal_equals. Conversions parse only
 *  the leaf's span; malformed content compares unequal. */
bool literal_equals(const LazyValue& node, const FilterLiteral& literal)
{
    try {
        switch (literal.kind) {
            case FilterLiteral::Kind::kNumber:
                return node.type() == json::Type::kNumber &&
                       node.as_number() == literal.number;
            case FilterLiteral::Kind::kString:
                return node.type() == json::Type::kString &&
                       node.as_string() == literal.string;
            case FilterLiteral::Kind::kBool:
                return node.type() == json::Type::kBool &&
                       node.as_bool() == literal.boolean;
            case FilterLiteral::Kind::kNull: return node.is_null();
            case FilterLiteral::Kind::kNone: return false;
        }
    } catch (const ParseError&) {
        // Structurally-valid but grammatically-broken leaf (e.g. `01`):
        // the predicate is false, never a throw on document content.
    }
    return false;
}

/** Three-way ordering when defined (number/number, string/string);
 *  nullopt otherwise — the comparison is then false for every operator. */
std::optional<int> literal_order(const LazyValue& node,
                                 const FilterLiteral& literal)
{
    try {
        if (literal.kind == FilterLiteral::Kind::kNumber &&
            node.type() == json::Type::kNumber) {
            double a = node.as_number();
            double b = literal.number;
            return a < b ? -1 : (a > b ? 1 : 0);
        }
        if (literal.kind == FilterLiteral::Kind::kString &&
            node.type() == json::Type::kString) {
            int c = node.as_string().compare(literal.string);
            return c < 0 ? -1 : (c > 0 ? 1 : 0);
        }
    } catch (const ParseError&) {
    }
    return std::nullopt;
}

}  // namespace

bool filter_admits(const query::FilterExpr& filter, const LazyValue& candidate)
{
    LazyValue node = candidate;
    for (const query::LabelRef& step : filter.steps) {
        // field() on a non-object or absent key yields !exists(), and
        // further navigation stays absent — one check suffices.
        node = node.field(step.escaped);
    }
    if (!node.exists()) {
        return false;
    }
    switch (filter.op) {
        case FilterOp::kExists: return true;
        case FilterOp::kEq: return literal_equals(node, filter.literal);
        case FilterOp::kNe: return !literal_equals(node, filter.literal);
        case FilterOp::kLt: {
            auto order = literal_order(node, filter.literal);
            return order.has_value() && *order < 0;
        }
        case FilterOp::kLe: {
            auto order = literal_order(node, filter.literal);
            return order.has_value() && *order <= 0;
        }
        case FilterOp::kGt: {
            auto order = literal_order(node, filter.literal);
            return order.has_value() && *order > 0;
        }
        case FilterOp::kGe: {
            auto order = literal_order(node, filter.literal);
            return order.has_value() && *order >= 0;
        }
    }
    return false;
}

}  // namespace descend::project
