/**
 * @file
 * Lazy filter evaluation: the streaming engines' side of the filter
 * selector contract (DESIGN.md §4.12).
 *
 * When a query carries a trailing `[?(...)]` predicate, the automaton
 * reaches candidate-accepting states through a wildcard arc; before a
 * candidate offset is reported, its span is extended (span.h) and the
 * predicate is evaluated over a LazyValue view of exactly that span —
 * sibling subtrees inside the candidate are mask-skipped, and only the
 * compared leaf is ever parsed. The DOM-side mirror of this evaluation is
 * query::FilterExpr::matches; semantics_test pins the two against each
 * other, and the contract is:
 *
 *  - a field chain that fails to resolve makes the predicate false for
 *    every operator (including !=),
 *  - ordering is defined for number/number (numeric) and string/string
 *    (bytewise on unescaped contents); every cross-type comparison is
 *    false, and != is the exact negation of ==,
 *  - malformed leaf content (possible on structurally-valid but
 *    grammatically-broken documents the DOM oracle would reject) makes
 *    the predicate false instead of throwing — engine runs never throw
 *    on document content.
 */
#pragma once

#include <cstddef>
#include <optional>

#include "descend/engine/padded_string.h"
#include "descend/obs/counters.h"
#include "descend/project/lazy_value.h"
#include "descend/project/span.h"
#include "descend/query/query.h"
#include "descend/simd/dispatch.h"

namespace descend::project {

/** Evaluates @p filter over one candidate value (the lazy mirror of
 *  query::FilterExpr::matches). */
bool filter_admits(const query::FilterExpr& filter, const LazyValue& candidate);

/**
 * The engines' report-path gate: turns a match offset into a candidate
 * LazyValue (span extension) and evaluates the predicate. One gate serves
 * all matches of a run — the extender's block ring warms across nearby
 * candidates.
 */
class FilterGate {
public:
    FilterGate(const query::FilterExpr& filter, PaddedView document,
               const simd::Kernels& kernels, obs::Counters* counters = nullptr)
        : filter_(&filter),
          document_(document),
          kernels_(&kernels),
          counters_(counters),
          extender_(document, kernels, counters)
    {
    }

    /** True when the candidate starting at @p offset passes the filter. */
    bool admits(std::size_t offset)
    {
        ValueSpan span = extender_.extend(offset);
        LazyValue candidate(document_, span, *kernels_, counters_);
        return filter_admits(*filter_, candidate);
    }

private:
    const query::FilterExpr* filter_;
    PaddedView document_;
    const simd::Kernels* kernels_;
    obs::Counters* counters_;
    SpanExtender extender_;
};

}  // namespace descend::project
