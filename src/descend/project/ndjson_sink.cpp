#include "descend/project/sink.h"

#include "descend/util/chars.h"

namespace descend::project {

void append_compact_value(std::string_view value, std::string& out)
{
    bool in_string = false;
    bool escape = false;
    std::size_t run_begin = 0;  // start of the current verbatim run
    for (std::size_t i = 0; i < value.size(); ++i) {
        const char byte = value[i];
        if (in_string) {
            if (escape) {
                escape = false;
            } else if (byte == '\\') {
                escape = true;
            } else if (byte == '"') {
                in_string = false;
            }
            continue;
        }
        if (byte == '"') {
            in_string = true;
            continue;
        }
        if (chars::is_ws_byte(static_cast<std::uint8_t>(byte))) {
            out.append(value, run_begin, i - run_begin);
            run_begin = i + 1;
        }
    }
    out.append(value, run_begin, value.size() - run_begin);
}

void NdjsonSink::on_value(const ValueSpan&, std::string_view bytes)
{
    scratch_.clear();
    append_compact_value(bytes, scratch_);
    scratch_.push_back('\n');
    out_->write(scratch_.data(),
                static_cast<std::streamsize>(scratch_.size()));
    ++lines_;
}

}  // namespace descend::project
