#include "descend/project/span.h"

#include "descend/classify/block_batch.h"
#include "descend/classify/depth_classifier.h"
#include "descend/classify/quote_classifier.h"
#include "descend/engine/extract.h"
#include "descend/util/bits.h"
#include "descend/util/chars.h"

namespace descend::project {
namespace {

using chars::is_ws_byte;

/** Valid-bit mask for the block at @p block_start: all ones except past
 *  the view's logical end (a PaddedView's padding bytes may be following
 *  records, so they must never contribute events — see padded_string.h). */
std::uint64_t valid_bits(std::size_t block_start, std::size_t size) noexcept
{
    if (size - block_start >= simd::kBlockSize) {
        return ~std::uint64_t{0};
    }
    return bits::mask_below(static_cast<int>(size - block_start));
}

/** All-ones iff @p in_string_mask ends inside a string (sign-extended top
 *  bit), the carry convention of quote_classifier.h. */
std::uint64_t string_carry(std::uint64_t in_string_mask) noexcept
{
    return static_cast<std::uint64_t>(
        static_cast<std::int64_t>(in_string_mask) >> 63);
}

/**
 * How many blocks the lean per-block walk covers before handing off to
 * the batch ring. A batch refill classifies kBatchSize bytes whether the
 * value needs them or not — a fixed cost that only amortizes on subtrees
 * spanning several blocks. The lean walk classifies exactly the blocks it
 * touches (one quote classification plus a bracket eq-mask pair each), so
 * mid-sized values never pay for bytes past their closer; anything still
 * open after this many blocks is large enough for the batch to win.
 */
constexpr int kLeanBlocks = 6;

}  // namespace

ValueSpan SpanExtender::extend(std::size_t offset) noexcept
{
    const std::size_t size = document_.size();
    if (offset >= size) {
        return {size, size};
    }
    const std::uint8_t* data = document_.data();
    const std::uint8_t first = data[offset];
    std::size_t end;
    if (first == '{' || first == '[') {
        end = extend_container(offset);
    } else if (first == '"') {
        end = extend_string(offset);
    } else {
        // Atoms (numbers, literals) end at the next delimiter; they are
        // short by construction, so a bytewise scan is already optimal.
        end = offset;
        while (end < size && !is_ws_byte(data[end]) && data[end] != ',' &&
               data[end] != '}' && data[end] != ']') {
            ++end;
        }
    }
    obs::add(counters_, obs::Counter::kProjectedValues);
    obs::add(counters_, obs::Counter::kProjectedBytes, end - offset);
    return {offset, end};
}

/*
 * First-block recovery, shared by the container and string walks.
 *
 * The match offset lands mid-block, and the bytes before it sit under an
 * unknown carry (the block may even *open* inside a string). But the
 * state AT the offset is known exactly: a value's first byte is never
 * inside a string and never escaped, and no backslash run can cross the
 * offset — the byte there is the opener itself, not a backslash. So the
 * whole aligned block is classified once with a cold seed, the sub-offset
 * bits are cleared, and the in-string mask is recomputed with a
 * prefix-XOR re-seeded at "outside a string": every bit at or after the
 * offset is then exact, with no bytewise prologue at all. The escape
 * carry the classifier leaves is equally exact — a run reaching the
 * block's last byte necessarily starts at or after the offset.
 */

std::size_t SpanExtender::extend_container(std::size_t offset) noexcept
{
    const std::uint8_t* data = document_.data();
    const std::size_t size = document_.size();
    const std::uint8_t open = data[offset];
    const classify::BracketKind kind = open == '{'
                                           ? classify::BracketKind::kObject
                                           : classify::BracketKind::kArray;

    const int shift = static_cast<int>(offset % simd::kBlockSize);
    const std::size_t block0 = offset - static_cast<std::size_t>(shift);
    classify::QuoteClassifier quotes(*kernels_);
    const classify::QuoteMasks first = quotes.classify(data + block0);
    const std::uint64_t tail = bits::mask_from(shift);
    const std::uint64_t in_string =
        kernels_->prefix_xor(first.unescaped_quotes & tail);
    quotes.set_state(classify::QuoteState{quotes.state().escape_carry,
                                          string_carry(in_string)});

    const std::uint64_t usable = ~in_string & tail & valid_bits(block0, size);
    classify::DepthMasks depth_mask =
        classify::depth_masks(*kernels_, data + block0, kind);
    // The opener at the offset itself is consumed as the initial depth;
    // find_depth_zero requires a positive entry depth.
    depth_mask.openers &= usable & ~(std::uint64_t{1} << shift);
    depth_mask.closers &= usable;
    int relative_depth = 1;
    int bit = classify::find_depth_zero(depth_mask, relative_depth);
    if (bit >= 0) {
        return block0 + static_cast<std::size_t>(bit) + 1;
    }
    std::size_t pos = block0 + simd::kBlockSize;

    // Lean per-block walk: the same two-popcount depth-zero test, on
    // masks classified for exactly the blocks touched (see kLeanBlocks).
    for (int lean = 0; lean < kLeanBlocks && pos < size; ++lean) {
        const classify::QuoteMasks quote_masks = quotes.classify(data + pos);
        const std::uint64_t lean_usable =
            ~quote_masks.in_string & valid_bits(pos, size);
        classify::DepthMasks lean_mask =
            classify::depth_masks(*kernels_, data + pos, kind);
        lean_mask.openers &= lean_usable;
        lean_mask.closers &= lean_usable;
        bit = classify::find_depth_zero(lean_mask, relative_depth);
        if (bit >= 0) {
            return pos + static_cast<std::size_t>(bit) + 1;
        }
        pos += simd::kBlockSize;
    }
    if (pos >= size) {
        return size;  // never closed: malformed input, clamp (as extract_value)
    }

    // Whole-block walk on pre-classified masks: the skip-children scan of
    // the engine (depth_classifier.h), resumed at the boundary with the
    // carry the lean walk's classifier holds (reusing ring blocks a
    // previous match already classified — see seek()).
    seek(pos, quotes.state().escape_carry,
         quotes.state().in_string_carry != 0);
    while (pos < size) {
        const simd::BlockMasks& masks = stream_.masks(pos);
        classify::DepthMasks batch_mask = classify::depth_masks(masks, kind);
        const std::uint64_t batch_usable =
            ~masks.in_string & valid_bits(pos, size);
        batch_mask.openers &= batch_usable;
        batch_mask.closers &= batch_usable;
        bit = classify::find_depth_zero(batch_mask, relative_depth);
        if (bit >= 0) {
            return pos + static_cast<std::size_t>(bit) + 1;
        }
        pos += simd::kBlockSize;
    }
    return size;
}

std::size_t SpanExtender::extend_string(std::size_t offset) noexcept
{
    const std::uint8_t* data = document_.data();
    const std::size_t size = document_.size();

    const int shift = static_cast<int>(offset % simd::kBlockSize);
    const std::size_t block0 = offset - static_cast<std::size_t>(shift);
    classify::QuoteClassifier quotes(*kernels_);
    const classify::QuoteMasks first = quotes.classify(data + block0);
    const std::uint64_t tail = bits::mask_from(shift);
    // Force the opening quote's bit: the byte at the offset IS the opener
    // by the engine's match convention, whatever the cold-seeded escape
    // scan concluded about the (discarded) bytes before it.
    const std::uint64_t q =
        (first.unescaped_quotes & tail) | (std::uint64_t{1} << shift);
    const std::uint64_t closers =
        q & ~(std::uint64_t{1} << shift) & valid_bits(block0, size);
    if (closers != 0) {
        return block0 +
               static_cast<std::size_t>(bits::trailing_zeros(closers)) + 1;
    }
    quotes.set_state(classify::QuoteState{
        quotes.state().escape_carry, string_carry(kernels_->prefix_xor(q))});
    std::size_t pos = block0 + simd::kBlockSize;

    // Lean per-block walk: classify only the blocks touched until the
    // string closes or kLeanBlocks is exhausted.
    for (int lean = 0; lean < kLeanBlocks && pos < size; ++lean) {
        const classify::QuoteMasks quote_masks = quotes.classify(data + pos);
        const std::uint64_t lean_closers =
            quote_masks.unescaped_quotes & valid_bits(pos, size);
        if (lean_closers != 0) {
            return pos +
                   static_cast<std::size_t>(
                       bits::trailing_zeros(lean_closers)) + 1;
        }
        pos += simd::kBlockSize;
    }
    if (pos >= size) {
        return size;  // unterminated string: clamp
    }

    // In-string mask walk: with the carry seeded inside the string, the
    // first unescaped quote is the closer.
    seek(pos, quotes.state().escape_carry, /*in_string=*/true);
    while (pos < size) {
        const simd::BlockMasks& masks = stream_.masks(pos);
        const std::uint64_t batch_closers =
            masks.unescaped_quotes & valid_bits(pos, size);
        if (batch_closers != 0) {
            return pos +
                   static_cast<std::size_t>(
                       bits::trailing_zeros(batch_closers)) + 1;
        }
        pos += simd::kBlockSize;
    }
    return size;
}

void SpanExtender::seek(std::size_t block_start, bool escape,
                        bool in_string) noexcept
{
    const std::uint64_t in_string_carry =
        in_string ? ~std::uint64_t{0} : std::uint64_t{0};
    // Every restart seeds the TRUE document state at its boundary (the
    // first-block recovery computes it exactly), so ring contents are
    // always faithful classifications — a cached block whose recorded
    // entry state equals the freshly recovered carry can be served as-is,
    // and the carry the ring holds at its end is equally true, so walking
    // past the ring continues correctly without another restart. The
    // entry-state check is the guard that keeps a (theoretical)
    // disagreeing hit safe: it falls back to restart rather than trusting
    // stale masks.
    const simd::BlockMasks* hit = stream_.cached(block_start);
    if (hit != nullptr && hit->entry_escaped == escape &&
        hit->entry_in_string == in_string_carry) {
        return;
    }
    stream_.restart(classify::QuoteState{escape, in_string_carry});
}

ValueSpan extend_value_span(PaddedView document, std::size_t offset) noexcept
{
    if (offset >= document.size()) {
        return {document.size(), document.size()};
    }
    const std::string_view value = extract_value(document, offset);
    return {offset, offset + value.size()};
}

}  // namespace descend::project
