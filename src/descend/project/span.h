/**
 * @file
 * Value spans: the bridge between the engine's match offsets and the
 * projection sinks (see sink.h).
 *
 * The streaming engine reports only where a match *begins* — that is all
 * the single-pass algorithm knows when the accepting state fires. Span
 * extension turns that offset into the half-open byte range of the
 * complete value: the balanced {...}/[...] slice for containers, the
 * quoted literal for strings, the literal up to the next delimiter for
 * atoms.
 *
 * SpanExtender is the batched fast path, in three stages (DESIGN.md
 * §4.11): (1) masked SIMD recovery of the first block — the state at the
 * offset is known exactly, so one cold-seeded classification plus a
 * re-seeded prefix-XOR yields exact masks with no bytewise prologue;
 * (2) a lean per-block walk classifying only the blocks the value
 * touches; (3) for values still open after that, whole blocks of
 * pre-classified masks from a persistent batch ring
 * (classify/block_batch.h), consumed with the same two-popcount
 * depth-zero test the engine's skip-children fast-forward uses
 * (classify/depth_classifier.h). A multi-megabyte matched subtree is
 * delimited at classifier speed, not byte by byte.
 *
 * Record-boundary contract: the extender scans only within the view it
 * was constructed over. For NDJSON streams, construct it over the
 * *record's* subview (not the whole stream buffer) — a match at the last
 * byte of a record then physically cannot scan into the following
 * record's slice. extract.h's extract_value is the scalar reference the
 * differential tests compare against.
 */
#pragma once

#include <cstddef>
#include <string_view>

#include "descend/classify/block_batch.h"
#include "descend/engine/padded_string.h"
#include "descend/obs/counters.h"
#include "descend/simd/dispatch.h"

namespace descend::project {

/** Half-open byte range [begin, end) of one complete matched value,
 *  relative to the document view it was extended over. */
struct ValueSpan {
    std::size_t begin = 0;
    std::size_t end = 0;

    std::size_t size() const noexcept { return end - begin; }
    bool empty() const noexcept { return begin == end; }

    friend bool operator==(const ValueSpan& a, const ValueSpan& b) noexcept
    {
        return a.begin == b.begin && a.end == b.end;
    }
};

/**
 * Extends match offsets to complete value spans over one document view.
 *
 * One extender serves many matches of the same view (the per-block ring
 * warms across consecutive matches of the same region). Offsets must be
 * the first byte of a value, which is exactly the engine's match
 * convention; out-of-range offsets yield an empty span, and a value that
 * never closes (malformed input — the engine's status said so) is
 * clamped to the view's end, mirroring extract_value.
 *
 * @param counters optional obs registry: every extension feeds the
 * projected_values / projected_bytes counters.
 */
class SpanExtender {
public:
    SpanExtender(PaddedView document, const simd::Kernels& kernels,
                 obs::Counters* counters = nullptr) noexcept
        : document_(document),
          kernels_(&kernels),
          counters_(counters),
          stream_(document.data(), kernels)
    {
    }

    /** The complete value span starting at @p offset. */
    ValueSpan extend(std::size_t offset) noexcept;

    /** The raw bytes of @p span (zero-copy into the document view). */
    std::string_view slice(const ValueSpan& span) const noexcept
    {
        return document_.view().substr(span.begin, span.size());
    }

    PaddedView document() const noexcept { return document_; }

private:
    /** Mask-walk a container from @p offset (first byte is the opener). */
    std::size_t extend_container(std::size_t offset) noexcept;

    /** Mask-walk a string from @p offset (first byte is the quote). */
    std::size_t extend_string(std::size_t offset) noexcept;

    /**
     * Prepares the persistent block stream to serve the block at
     * @p block_start given the prologue-recovered carry: if that block is
     * already in the ring with the same entry state, the classified masks
     * are reused as-is (the common case for consecutive matches of the
     * same region); otherwise the stream restarts at the recovered carry.
     */
    void seek(std::size_t block_start, bool escape, bool in_string) noexcept;

    PaddedView document_;
    const simd::Kernels* kernels_;
    obs::Counters* counters_;
    /** Persistent across extend() calls: the refilled batch (8 blocks)
     *  outlives one match, so nearby matches share classification work. */
    classify::BatchedBlockStream stream_;
};

/**
 * One-shot scalar span extension (wraps extract.h's bytewise scan): the
 * differential reference for SpanExtender and the right tool when a
 * single value is needed without SIMD setup.
 */
ValueSpan extend_value_span(PaddedView document, std::size_t offset) noexcept;

}  // namespace descend::project
