/**
 * @file
 * Glue between match reporting and projection: the mode taxonomy shared
 * by the CLI and serve daemon, and the MatchSink adapter that extends
 * each reported offset into a span and feeds a ProjectionSink.
 *
 * Engines keep reporting offsets — projection is a layer on top, so
 * every backend (single, lanes, product, streaming) gains it without
 * touching the automaton hot loop. The adapter extends spans *as matches
 * arrive*, which keeps the block-mask ring warm across consecutive
 * matches of the same region; batch extension after the run (project_all)
 * is equivalent and is what the multi-query collectors use.
 */
#pragma once

#include <cstddef>
#include <string_view>
#include <vector>

#include "descend/engine/api.h"
#include "descend/project/sink.h"
#include "descend/project/span.h"

namespace descend::project {

/** What --project materializes. kNone means projection is off (the
 *  engine's offset/count reporting is used directly). */
enum class ProjectionMode : std::uint8_t {
    kNone,
    kCount,   ///< spans extended, only totals reported (overhead baseline)
    kSlices,  ///< zero-copy raw slices of the input
    kNdjson,  ///< compact re-serialization, one value per line
};

/** Parses a --project= argument; false on an unknown mode. */
inline bool parse_projection_mode(std::string_view text,
                                  ProjectionMode& out) noexcept
{
    if (text == "count") {
        out = ProjectionMode::kCount;
    } else if (text == "slices") {
        out = ProjectionMode::kSlices;
    } else if (text == "ndjson") {
        out = ProjectionMode::kNdjson;
    } else {
        return false;
    }
    return true;
}

constexpr const char* projection_mode_name(ProjectionMode mode) noexcept
{
    switch (mode) {
        case ProjectionMode::kNone: return "none";
        case ProjectionMode::kCount: return "count";
        case ProjectionMode::kSlices: return "slices";
        case ProjectionMode::kNdjson: return "ndjson";
    }
    return "unknown";
}

/** MatchSink adapter: offset → span → ProjectionSink, per match. */
class ProjectingMatchSink final : public MatchSink {
public:
    ProjectingMatchSink(SpanExtender& extender, ProjectionSink& sink) noexcept
        : extender_(&extender), sink_(&sink)
    {
    }

    void on_match(std::size_t offset) override
    {
        const ValueSpan span = extender_->extend(offset);
        sink_->on_value(span, extender_->slice(span));
    }

private:
    SpanExtender* extender_;
    ProjectionSink* sink_;
};

/** Batch extension: projects an already-collected offset list (the
 *  multi-query and serve paths, whose sinks collect offsets first). */
inline void project_all(SpanExtender& extender,
                        const std::vector<std::size_t>& offsets,
                        ProjectionSink& sink)
{
    for (std::size_t offset : offsets) {
        const ValueSpan span = extender.extend(offset);
        sink.on_value(span, extender.slice(span));
    }
}

}  // namespace descend::project
