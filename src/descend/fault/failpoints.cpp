#include "descend/fault/failpoints.h"

#if DESCEND_FAULT_ENABLED

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

namespace descend::fault {
namespace {

/** Per-site arming state. remaining < 0 means disarmed; arm(skip) stores
 *  skip + 1, and the hit that decrements it to exactly 0 is the shot. */
struct SiteState {
    std::atomic<std::int64_t> remaining{-1};
    std::atomic<std::uint64_t> payload{0};
    std::atomic<std::uint64_t> hits{0};
    std::atomic<std::uint64_t> fired{0};
};

SiteState g_sites[kSiteCount];

SiteState& state_of(Site site)
{
    return g_sites[static_cast<std::size_t>(site)];
}

/** Applies DESCEND_FAULT_SPEC exactly once, before the first registry
 *  access (arm() or should_fire()), so explicit test arming done first is
 *  never clobbered by the environment. A plain exchange rather than
 *  call_once: arm_from_spec re-enters arm() below, and the flag being set
 *  before parsing makes that re-entry a no-op instead of a deadlock. */
std::atomic<bool> g_env_applied{false};

void ensure_env_applied()
{
    if (g_env_applied.load(std::memory_order_acquire) ||
        g_env_applied.exchange(true, std::memory_order_acq_rel)) {
        return;
    }
    const char* spec = std::getenv("DESCEND_FAULT_SPEC");
    if (spec != nullptr && *spec != '\0') {
        arm_from_spec(spec);
    }
}

}  // namespace

void arm(Site site, std::uint64_t skip, std::uint64_t payload)
{
    ensure_env_applied();
    SiteState& s = state_of(site);
    s.payload.store(payload, std::memory_order_relaxed);
    s.remaining.store(static_cast<std::int64_t>(skip) + 1,
                      std::memory_order_release);
}

void disarm(Site site)
{
    state_of(site).remaining.store(-1, std::memory_order_relaxed);
}

void disarm_all()
{
    for (SiteState& s : g_sites) {
        s.remaining.store(-1, std::memory_order_relaxed);
        s.payload.store(0, std::memory_order_relaxed);
        s.hits.store(0, std::memory_order_relaxed);
        s.fired.store(0, std::memory_order_relaxed);
    }
}

std::uint64_t hits(Site site)
{
    return state_of(site).hits.load(std::memory_order_relaxed);
}

std::uint64_t fired_count(Site site)
{
    return state_of(site).fired.load(std::memory_order_relaxed);
}

bool should_fire(Site site) noexcept
{
    ensure_env_applied();
    SiteState& s = state_of(site);
    s.hits.fetch_add(1, std::memory_order_relaxed);
    if (s.remaining.load(std::memory_order_acquire) < 0) {
        return false;
    }
    // fetch_sub keeps decrementing into negatives after the shot, which is
    // exactly "stays disarmed"; exactly one concurrent caller sees 1.
    if (s.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        s.fired.fetch_add(1, std::memory_order_relaxed);
        return true;
    }
    return false;
}

std::uint64_t payload(Site site) noexcept
{
    return state_of(site).payload.load(std::memory_order_relaxed);
}

bool arm_from_spec(const char* spec)
{
    // "<site>=<skip>[:<payload>]" entries separated by commas; whitespace
    // is not tolerated (the spec travels through environment variables).
    std::string text(spec);
    std::size_t start = 0;
    while (start < text.size()) {
        std::size_t comma = text.find(',', start);
        std::string entry = text.substr(
            start, comma == std::string::npos ? std::string::npos
                                              : comma - start);
        start = comma == std::string::npos ? text.size() : comma + 1;
        if (entry.empty()) {
            continue;
        }
        std::size_t eq = entry.find('=');
        if (eq == std::string::npos || eq == 0) {
            return false;
        }
        std::string name = entry.substr(0, eq);
        Site site = Site::kCount_;
        for (std::size_t i = 0; i < kSiteCount; ++i) {
            if (name == site_name(static_cast<Site>(i))) {
                site = static_cast<Site>(i);
                break;
            }
        }
        if (site == Site::kCount_) {
            return false;
        }
        const char* numbers = entry.c_str() + eq + 1;
        char* after = nullptr;
        std::uint64_t skip = std::strtoull(numbers, &after, 10);
        if (after == numbers) {
            return false;
        }
        std::uint64_t payload_value = 0;
        if (*after == ':') {
            const char* payload_text = after + 1;
            payload_value = std::strtoull(payload_text, &after, 10);
            if (after == payload_text) {
                return false;
            }
        }
        if (*after != '\0') {
            return false;
        }
        arm(site, skip, payload_value);
    }
    return true;
}

void maybe_stall(Site site)
{
    if (should_fire(site)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(payload(site)));
    }
}

}  // namespace descend::fault

#endif  // DESCEND_FAULT_ENABLED
