/**
 * @file
 * Compile-time-gated failpoint registry: deterministic fault injection for
 * error paths that crafted inputs cannot reach (I/O failures, mid-run
 * budget expiry at an exact block, worker stalls).
 *
 * Gating contract mirrors the obs layer (obs/counters.h): the whole
 * subsystem sits behind the DESCEND_FAULT CMake option (exported as the
 * DESCEND_FAULT_ENABLED compile definition, PUBLIC on the descend
 * target). With the gate OFF — the default — every hook below is a
 * constexpr-false no-op: `if constexpr (fault::kEnabled)` guards at the
 * call sites remove the checks entirely, no registry storage exists, and
 * release binaries are bit-for-bit free of fault plumbing. With the gate
 * ON, sites consult a global atomic registry that tests (or the
 * DESCEND_FAULT_SPEC environment variable) arm per site.
 *
 * Arming semantics: arm(site, skip, payload) makes the site fire exactly
 * once, after `skip` additional hits pass through unharmed (skip = 0
 * fires on the next hit). One-shot firing is atomic — under concurrent
 * hits exactly one thread observes the trigger. The payload's meaning is
 * per-site (a StatusCode value for kBatchRefill, a millisecond stall for
 * kWorkerStartup; ignored elsewhere).
 *
 * Environment spec: DESCEND_FAULT_SPEC="<site>=<skip>[:<payload>],..."
 * with site names from site_name() (e.g. "batch_refill=3:10" forces a
 * deadline status at the fourth refill). Parsed once, lazily, before the
 * first registry access; explicit arm() calls are never overridden by it.
 */
#pragma once

#include <cstdint>

#if !defined(DESCEND_FAULT_ENABLED)
#define DESCEND_FAULT_ENABLED 0
#endif

namespace descend::fault {

/** True when the library was built with DESCEND_FAULT=ON. */
inline constexpr bool kEnabled = DESCEND_FAULT_ENABLED != 0;

/** Every named failpoint. Site order is the spec/report order. */
enum class Site : std::uint8_t {
    /** PaddedString::from_file: simulated open failure (throws the same
     *  Error the real open path does). */
    kFromFileOpen,
    /** from_file portable path: simulated short read (throws). */
    kFromFileRead,
    /** from_file mmap fast path: simulated map failure — exercises the
     *  fall-through to the portable read path. */
    kFromFileMmap,
    /** BatchedBlockStream::refill: forces the refill's interrupt latch to
     *  the StatusCode in the payload (defaults to kDeadlineExceeded when
     *  the payload is not a valid non-ok code). */
    kBatchRefill,
    /** Stream-executor worker startup: stalls the worker for payload
     *  milliseconds before it claims its first batch. */
    kWorkerStartup,
    kCount_,
};

inline constexpr std::size_t kSiteCount = static_cast<std::size_t>(Site::kCount_);

/** Stable spec/report name of a site. */
constexpr const char* site_name(Site site) noexcept
{
    switch (site) {
        case Site::kFromFileOpen: return "from_file_open";
        case Site::kFromFileRead: return "from_file_read";
        case Site::kFromFileMmap: return "from_file_mmap";
        case Site::kBatchRefill: return "batch_refill";
        case Site::kWorkerStartup: return "worker_startup";
        case Site::kCount_: break;
    }
    return "unknown";
}

#if DESCEND_FAULT_ENABLED

/** Arms @p site to fire once after @p skip unharmed hits. */
void arm(Site site, std::uint64_t skip = 0, std::uint64_t payload = 0);

/** Disarms @p site (a pending shot is discarded). */
void disarm(Site site);

/** Disarms every site and zeroes the hit/fired statistics. */
void disarm_all();

/** Hits observed at @p site since the last disarm_all(). */
std::uint64_t hits(Site site);

/** Times @p site actually fired since the last disarm_all(). */
std::uint64_t fired_count(Site site);

/**
 * The hot-path hook: records a hit and reports whether the armed one-shot
 * fires here. Thread-safe; exactly one concurrent caller observes true.
 */
bool should_fire(Site site) noexcept;

/** The payload of the most recent arm() of @p site. */
std::uint64_t payload(Site site) noexcept;

/**
 * Applies a spec string ("site=skip[:payload],...") on top of the current
 * arming. Returns false (arming nothing further) on the first malformed
 * entry. Used by tests and the DESCEND_FAULT_SPEC env parsing.
 */
bool arm_from_spec(const char* spec);

/** Convenience for stall sites: sleeps payload milliseconds when the
 *  one-shot fires; otherwise does nothing. */
void maybe_stall(Site site);

#else  // DESCEND_FAULT_ENABLED

inline void arm(Site, std::uint64_t = 0, std::uint64_t = 0) {}
inline void disarm(Site) {}
inline void disarm_all() {}
inline std::uint64_t hits(Site) { return 0; }
inline std::uint64_t fired_count(Site) { return 0; }
inline bool should_fire(Site) noexcept { return false; }
inline std::uint64_t payload(Site) noexcept { return 0; }
inline bool arm_from_spec(const char*) { return true; }
inline void maybe_stall(Site) {}

#endif  // DESCEND_FAULT_ENABLED

}  // namespace descend::fault

