/**
 * @file
 * Recursive-descent parser for the JSONPath fragment.
 *
 * Accepted syntax:
 *
 *   query        := '$' segment*
 *   segment      := '.' name | '.' '*' | '..' name | '..' '*'
 *                 | bracket | '..' bracket
 *   bracket      := '[' "'" qlabel "'" ']' | '[' '"' qlabel '"' ']'
 *                 | '[' '*' ']' | '[' digits ']'
 *   name         := bare member-name characters (alnum, '_', '-', '$',
 *                   and any non-ASCII byte)
 *
 * Quoted labels support the escapes \' \" \\ \/ \b \f \n \r \t \uXXXX.
 */
#include <cctype>
#include <string>

#include "descend/json/dom.h"
#include "descend/query/query.h"
#include "descend/util/errors.h"

namespace descend::query {
namespace {

bool is_bare_label_char(char c)
{
    unsigned char byte = static_cast<unsigned char>(c);
    return std::isalnum(byte) || c == '_' || c == '-' || c == '$' || byte >= 0x80;
}

}  // namespace

class QueryParser {
public:
    explicit QueryParser(std::string_view text) : text_(text) {}

    Query run()
    {
        Query result;
        result.text_ = std::string(text_);
        if (text_.empty() || text_[0] != '$') {
            fail("query must start with '$'");
        }
        ++pos_;
        result.selectors_.push_back({SelectorKind::kRoot, "", "", 0});
        while (pos_ < text_.size()) {
            result.selectors_.push_back(parse_segment());
        }
        return result;
    }

private:
    [[noreturn]] void fail(const std::string& message) const
    {
        throw QueryError(message, pos_);
    }

    char peek() const
    {
        if (pos_ >= text_.size()) {
            throw QueryError("unexpected end of query", pos_);
        }
        return text_[pos_];
    }

    Selector parse_segment()
    {
        if (peek() == '[') {
            return parse_bracket(/*descendant=*/false);
        }
        if (peek() != '.') {
            fail("expected '.' or '['");
        }
        ++pos_;
        bool descendant = false;
        if (pos_ < text_.size() && text_[pos_] == '.') {
            descendant = true;
            ++pos_;
        }
        if (pos_ >= text_.size()) {
            fail("selector expected after dot");
        }
        if (text_[pos_] == '[') {
            if (!descendant) {
                fail("'.[' is not valid; use '[' directly or '..['");
            }
            return parse_bracket(/*descendant=*/true);
        }
        if (text_[pos_] == '*') {
            ++pos_;
            return make_wildcard(descendant);
        }
        std::string label = parse_bare_label();
        return make_label(descendant, std::move(label));
    }

    std::string parse_bare_label()
    {
        std::size_t start = pos_;
        while (pos_ < text_.size() && is_bare_label_char(text_[pos_])) {
            ++pos_;
        }
        if (pos_ == start) {
            fail("member name expected");
        }
        return std::string(text_.substr(start, pos_ - start));
    }

    Selector parse_bracket(bool descendant)
    {
        ++pos_;  // '['
        char c = peek();
        if (c == '*') {
            ++pos_;
            expect(']');
            return make_wildcard(descendant);
        }
        if (c == '\'' || c == '"') {
            std::string label = parse_quoted_label(c);
            expect(']');
            return make_label(descendant, std::move(label));
        }
        if (std::isdigit(static_cast<unsigned char>(c))) {
            if (descendant) {
                fail("descendant index selectors are not supported");
            }
            std::uint64_t index = 0;
            std::size_t digits = 0;
            while (pos_ < text_.size() &&
                   std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
                index = index * 10 + static_cast<std::uint64_t>(text_[pos_] - '0');
                ++pos_;
                if (++digits > 18) {
                    fail("array index too large");
                }
            }
            expect(']');
            return Selector{SelectorKind::kChildIndex, "", "", index};
        }
        fail("expected label, '*' or index in brackets");
    }

    std::string parse_quoted_label(char quote)
    {
        ++pos_;  // opening quote
        std::string label;
        while (true) {
            char c = peek();
            ++pos_;
            if (c == quote) {
                return label;
            }
            if (c != '\\') {
                label.push_back(c);
                continue;
            }
            char escaped = peek();
            ++pos_;
            switch (escaped) {
                case '\'': label.push_back('\''); break;
                case '"': label.push_back('"'); break;
                case '\\': label.push_back('\\'); break;
                case '/': label.push_back('/'); break;
                case 'b': label.push_back('\b'); break;
                case 'f': label.push_back('\f'); break;
                case 'n': label.push_back('\n'); break;
                case 'r': label.push_back('\r'); break;
                case 't': label.push_back('\t'); break;
                case 'u': {
                    if (pos_ + 4 > text_.size()) {
                        fail("truncated \\u escape");
                    }
                    // Reuse the JSON unescaper for the \uXXXX encoding.
                    std::string raw = "\\u" + std::string(text_.substr(pos_, 4));
                    label += json::unescape(raw);
                    pos_ += 4;
                    break;
                }
                default: fail("invalid escape in label");
            }
        }
    }

    void expect(char c)
    {
        if (peek() != c) {
            fail(std::string("expected '") + c + "'");
        }
        ++pos_;
    }

    static Selector make_wildcard(bool descendant)
    {
        return Selector{descendant ? SelectorKind::kDescendantWildcard
                                   : SelectorKind::kChildWildcard,
                        "", "", 0};
    }

    static Selector make_label(bool descendant, std::string label)
    {
        Selector selector;
        selector.kind =
            descendant ? SelectorKind::kDescendant : SelectorKind::kChild;
        selector.label_escaped = json::escape(label);
        selector.label = std::move(label);
        return selector;
    }

    std::string_view text_;
    std::size_t pos_ = 0;
};

Query Query::parse(std::string_view text)
{
    return QueryParser(text).run();
}

}  // namespace descend::query
