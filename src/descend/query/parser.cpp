/**
 * @file
 * Recursive-descent parser for the JSONPath fragment.
 *
 * Accepted syntax:
 *
 *   query        := '$' segment*
 *   segment      := '.' name | '.' '*' | '..' name | '..' '*'
 *                 | bracket | '..' bracket
 *   bracket      := '[' quoted (',' quoted)* ']' | '[' '*' ']'
 *                 | '[' digits ']' | '[' slice ']' | '[' filter ']'
 *   quoted       := "'" qlabel "'" | '"' qlabel '"'
 *   slice        := digits? ':' digits? (':' digits?)?     (step 1 only)
 *   filter       := '?' '(' '@' step* (op literal)? ')'
 *   step         := '.' name | '[' quoted ']'
 *   op           := '==' | '!=' | '<' | '<=' | '>' | '>='
 *   literal      := number | quoted | 'true' | 'false' | 'null'
 *   name         := bare member-name characters (alnum, '_', '-', '$',
 *                   and any non-ASCII byte)
 *
 * ASCII whitespace is permitted between bracket tokens. Multi-member
 * unions are child-only and collapse singletons to plain labels; filters
 * are child-only and admitted in final selector position only. Negative
 * indices, negative slice bounds, and slice steps other than 1 are
 * rejected with a QueryError (the CLI maps these to usage errors).
 *
 * Quoted labels support the escapes \' \" \\ \/ \b \f \n \r \t \uXXXX.
 * UTF-16 surrogate pairs in \u escapes combine into one code point (encoded
 * as UTF-8, matching the document's raw bytes); lone surrogates are errors.
 * Numeric filter literals are parsed once, here, through the strict JSON
 * number grammar — `1`, `1.0` and `1e0` compare identically at runtime.
 */
#include <algorithm>
#include <cctype>
#include <cstdint>
#include <string>

#include "descend/json/dom.h"
#include "descend/query/query.h"
#include "descend/util/errors.h"

namespace descend::query {
namespace {

bool is_bare_label_char(char c)
{
    unsigned char byte = static_cast<unsigned char>(c);
    return std::isalnum(byte) || c == '_' || c == '-' || c == '$' || byte >= 0x80;
}

bool is_number_char(char c)
{
    return (c >= '0' && c <= '9') || c == '-' || c == '+' || c == '.' ||
           c == 'e' || c == 'E';
}

}  // namespace

class QueryParser {
public:
    explicit QueryParser(std::string_view text) : text_(text) {}

    Query run()
    {
        Query result;
        result.text_ = std::string(text_);
        if (text_.empty() || text_[0] != '$') {
            fail("query must start with '$'");
        }
        ++pos_;
        result.selectors_.push_back({SelectorKind::kRoot});
        while (pos_ < text_.size()) {
            if (result.selectors_.back().kind == SelectorKind::kChildFilter) {
                fail("filter selectors are supported only in final position");
            }
            result.selectors_.push_back(parse_segment());
        }
        return result;
    }

private:
    [[noreturn]] void fail(const std::string& message) const
    {
        throw QueryError(message, pos_);
    }

    char peek() const
    {
        if (pos_ >= text_.size()) {
            throw QueryError("unexpected end of query", pos_);
        }
        return text_[pos_];
    }

    /** Skips ASCII whitespace (permitted between bracket tokens only). */
    void skip_ws()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r')) {
            ++pos_;
        }
    }

    Selector parse_segment()
    {
        if (peek() == '[') {
            return parse_bracket(/*descendant=*/false);
        }
        if (peek() != '.') {
            fail("expected '.' or '['");
        }
        ++pos_;
        bool descendant = false;
        if (pos_ < text_.size() && text_[pos_] == '.') {
            descendant = true;
            ++pos_;
        }
        if (pos_ >= text_.size()) {
            fail("selector expected after dot");
        }
        if (text_[pos_] == '[') {
            if (!descendant) {
                fail("'.[' is not valid; use '[' directly or '..['");
            }
            return parse_bracket(/*descendant=*/true);
        }
        if (text_[pos_] == '*') {
            ++pos_;
            return make_wildcard(descendant);
        }
        std::string label = parse_bare_label();
        return make_label(descendant, std::move(label));
    }

    std::string parse_bare_label()
    {
        std::size_t start = pos_;
        while (pos_ < text_.size() && is_bare_label_char(text_[pos_])) {
            ++pos_;
        }
        if (pos_ == start) {
            fail("member name expected");
        }
        return std::string(text_.substr(start, pos_ - start));
    }

    Selector parse_bracket(bool descendant)
    {
        ++pos_;  // '['
        skip_ws();
        char c = peek();
        if (c == '*') {
            ++pos_;
            skip_ws();
            expect(']');
            return make_wildcard(descendant);
        }
        if (c == '\'' || c == '"') {
            return parse_labels(descendant);
        }
        if (c == '?') {
            if (descendant) {
                fail("descendant filter selectors are not supported");
            }
            return parse_filter();
        }
        if (c == '-') {
            fail("negative array indexes are not supported");
        }
        if (std::isdigit(static_cast<unsigned char>(c)) || c == ':') {
            return parse_index_or_slice(descendant);
        }
        fail("expected label, '*', index, slice or filter in brackets");
    }

    /** One quoted label, or a comma-separated union of them. */
    Selector parse_labels(bool descendant)
    {
        std::vector<LabelRef> members;
        members.push_back(parse_label_ref());
        skip_ws();
        while (peek() == ',') {
            ++pos_;
            skip_ws();
            char q = peek();
            if (q != '\'' && q != '"') {
                fail("expected quoted label in union");
            }
            members.push_back(parse_label_ref());
            skip_ws();
        }
        expect(']');
        // Union members are a set under node semantics: sorting and
        // deduplicating by comparison form makes ['a','b'] and ['b','a']
        // one canonical selector (and one automaton edge set).
        std::sort(members.begin(), members.end(),
                  [](const LabelRef& a, const LabelRef& b) {
                      return a.escaped < b.escaped;
                  });
        members.erase(std::unique(members.begin(), members.end(),
                                  [](const LabelRef& a, const LabelRef& b) {
                                      return a.escaped == b.escaped;
                                  }),
                      members.end());
        if (members.size() == 1) {
            // ['a'] is canonical sugar for .a — same selector, one spelling.
            return make_label(descendant, std::move(members.front().text));
        }
        if (descendant) {
            fail("descendant union selectors are not supported");
        }
        Selector selector;
        selector.kind = SelectorKind::kChildUnion;
        selector.union_members = std::move(members);
        return selector;
    }

    LabelRef parse_label_ref()
    {
        std::string label = parse_quoted_label(peek());
        std::string escaped = json::escape(label);
        return LabelRef{std::move(label), std::move(escaped)};
    }

    /** Unsigned decimal with the 18-digit cap (fits uint64 comfortably). */
    std::uint64_t parse_index()
    {
        std::uint64_t index = 0;
        std::size_t digits = 0;
        while (pos_ < text_.size() &&
               std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
            index = index * 10 + static_cast<std::uint64_t>(text_[pos_] - '0');
            ++pos_;
            if (++digits > 18) {
                fail("array index too large");
            }
        }
        return index;
    }

    Selector parse_index_or_slice(bool descendant)
    {
        std::uint64_t first = 0;
        bool have_first = std::isdigit(static_cast<unsigned char>(peek())) != 0;
        if (have_first) {
            first = parse_index();
            skip_ws();
        }
        if (peek() != ':') {
            if (descendant) {
                fail("descendant index selectors are not supported");
            }
            expect(']');
            Selector selector;
            selector.kind = SelectorKind::kChildIndex;
            selector.index = first;
            return selector;
        }
        ++pos_;  // ':'
        skip_ws();
        std::uint64_t hi = kSliceUnbounded;
        if (peek() == '-') {
            fail("negative slice bounds are not supported");
        }
        if (std::isdigit(static_cast<unsigned char>(peek()))) {
            hi = parse_index();
            skip_ws();
        }
        if (peek() == ':') {
            ++pos_;  // optional step
            skip_ws();
            if (peek() == '-') {
                fail("negative slice steps are not supported");
            }
            if (std::isdigit(static_cast<unsigned char>(peek()))) {
                if (parse_index() != 1) {
                    fail("slice steps other than 1 are not supported");
                }
                skip_ws();
            }
        }
        expect(']');
        if (descendant) {
            fail("descendant slice selectors are not supported");
        }
        Selector selector;
        selector.kind = SelectorKind::kChildSlice;
        selector.slice_lo = first;
        selector.slice_hi = hi;
        return selector;
    }

    Selector parse_filter()
    {
        ++pos_;  // '?'
        expect('(');
        skip_ws();
        expect('@');
        FilterExpr filter;
        while (pos_ < text_.size() && (text_[pos_] == '.' || text_[pos_] == '[')) {
            if (text_[pos_] == '.') {
                ++pos_;
                if (pos_ < text_.size() && text_[pos_] == '.') {
                    fail("descendant steps are not supported in filters");
                }
                std::string label = parse_bare_label();
                std::string escaped = json::escape(label);
                filter.steps.push_back({std::move(label), std::move(escaped)});
            } else {
                ++pos_;  // '['
                skip_ws();
                char q = peek();
                if (q != '\'' && q != '"') {
                    fail("expected quoted label in filter step");
                }
                filter.steps.push_back(parse_label_ref());
                skip_ws();
                expect(']');
            }
        }
        skip_ws();
        if (peek() != ')') {
            filter.op = parse_filter_op();
            skip_ws();
            filter.literal = parse_filter_literal();
            skip_ws();
        }
        expect(')');
        skip_ws();
        expect(']');
        Selector selector;
        selector.kind = SelectorKind::kChildFilter;
        selector.filter = std::move(filter);
        return selector;
    }

    FilterOp parse_filter_op()
    {
        char c = peek();
        ++pos_;
        switch (c) {
            case '=':
                expect('=');
                return FilterOp::kEq;
            case '!':
                expect('=');
                return FilterOp::kNe;
            case '<':
                if (pos_ < text_.size() && text_[pos_] == '=') {
                    ++pos_;
                    return FilterOp::kLe;
                }
                return FilterOp::kLt;
            case '>':
                if (pos_ < text_.size() && text_[pos_] == '=') {
                    ++pos_;
                    return FilterOp::kGe;
                }
                return FilterOp::kGt;
            default: --pos_; fail("expected comparison operator in filter");
        }
    }

    FilterLiteral parse_filter_literal()
    {
        FilterLiteral literal;
        char c = peek();
        if (c == '\'' || c == '"') {
            literal.kind = FilterLiteral::Kind::kString;
            literal.string = parse_quoted_label(c);
            return literal;
        }
        if (consume_keyword("true")) {
            literal.kind = FilterLiteral::Kind::kBool;
            literal.boolean = true;
            return literal;
        }
        if (consume_keyword("false")) {
            literal.kind = FilterLiteral::Kind::kBool;
            literal.boolean = false;
            return literal;
        }
        if (consume_keyword("null")) {
            literal.kind = FilterLiteral::Kind::kNull;
            return literal;
        }
        if (is_number_char(c)) {
            // One compile-time parse through the strict JSON number
            // grammar: runtime comparisons are numeric, never textual.
            std::size_t start = pos_;
            while (pos_ < text_.size() && is_number_char(text_[pos_])) {
                ++pos_;
            }
            std::string_view token = text_.substr(start, pos_ - start);
            try {
                json::Document number = json::parse(token);
                if (!number.root().is_number()) {
                    throw QueryError("invalid number literal in filter", start);
                }
                literal.kind = FilterLiteral::Kind::kNumber;
                literal.number = number.root().as_number();
            } catch (const ParseError&) {
                throw QueryError("invalid number literal in filter", start);
            }
            return literal;
        }
        fail("expected literal in filter comparison");
    }

    bool consume_keyword(std::string_view keyword)
    {
        if (text_.substr(pos_, keyword.size()) != keyword) {
            return false;
        }
        // The keyword must end the token: `trueX` is not `true`.
        std::size_t after = pos_ + keyword.size();
        if (after < text_.size() && is_bare_label_char(text_[after])) {
            return false;
        }
        pos_ = after;
        return true;
    }

    std::string parse_quoted_label(char quote)
    {
        ++pos_;  // opening quote
        std::string label;
        while (true) {
            char c = peek();
            ++pos_;
            if (c == quote) {
                return label;
            }
            if (c != '\\') {
                label.push_back(c);
                continue;
            }
            char escaped = peek();
            ++pos_;
            switch (escaped) {
                case '\'': label.push_back('\''); break;
                case '"': label.push_back('"'); break;
                case '\\': label.push_back('\\'); break;
                case '/': label.push_back('/'); break;
                case 'b': label.push_back('\b'); break;
                case 'f': label.push_back('\f'); break;
                case 'n': label.push_back('\n'); break;
                case 'r': label.push_back('\r'); break;
                case 't': label.push_back('\t'); break;
                case 'u': {
                    std::uint32_t code = parse_hex4();
                    if (code >= 0xDC00 && code <= 0xDFFF) {
                        fail("lone low surrogate in \\u escape");
                    }
                    if (code >= 0xD800 && code <= 0xDBFF) {
                        // UTF-16 surrogate pair: the high half must be
                        // followed by \uXXXX with a low half; the pair
                        // names one non-BMP code point.
                        if (pos_ + 2 > text_.size() || text_[pos_] != '\\' ||
                            text_[pos_ + 1] != 'u') {
                            fail("high surrogate not followed by \\u escape");
                        }
                        pos_ += 2;
                        std::uint32_t low = parse_hex4();
                        if (low < 0xDC00 || low > 0xDFFF) {
                            fail("high surrogate not paired with a low "
                                 "surrogate");
                        }
                        code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                    }
                    append_utf8(label, code);
                    break;
                }
                default: fail("invalid escape in label");
            }
        }
    }

    /** Consumes exactly four hex digits of a \uXXXX escape. */
    std::uint32_t parse_hex4()
    {
        if (pos_ + 4 > text_.size()) {
            fail("truncated \\u escape");
        }
        std::uint32_t value = 0;
        for (int i = 0; i < 4; ++i) {
            char c = text_[pos_ + static_cast<std::size_t>(i)];
            std::uint32_t digit;
            if (c >= '0' && c <= '9') {
                digit = static_cast<std::uint32_t>(c - '0');
            } else if (c >= 'a' && c <= 'f') {
                digit = static_cast<std::uint32_t>(c - 'a') + 10;
            } else if (c >= 'A' && c <= 'F') {
                digit = static_cast<std::uint32_t>(c - 'A') + 10;
            } else {
                fail("invalid hex digit in \\u escape");
            }
            value = (value << 4) | digit;
        }
        pos_ += 4;
        return value;
    }

    /** Appends @p code as UTF-8; the label then matches the raw document
     *  bytes of the same key (json::escape passes bytes >= 0x20 through). */
    static void append_utf8(std::string& out, std::uint32_t code)
    {
        if (code < 0x80) {
            out.push_back(static_cast<char>(code));
        } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
        } else if (code < 0x10000) {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
        } else {
            out.push_back(static_cast<char>(0xF0 | (code >> 18)));
            out.push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
        }
    }

    void expect(char c)
    {
        if (peek() != c) {
            fail(std::string("expected '") + c + "'");
        }
        ++pos_;
    }

    static Selector make_wildcard(bool descendant)
    {
        Selector selector;
        selector.kind = descendant ? SelectorKind::kDescendantWildcard
                                   : SelectorKind::kChildWildcard;
        return selector;
    }

    static Selector make_label(bool descendant, std::string label)
    {
        Selector selector;
        selector.kind =
            descendant ? SelectorKind::kDescendant : SelectorKind::kChild;
        selector.label_escaped = json::escape(label);
        selector.label = std::move(label);
        return selector;
    }

    std::string_view text_;
    std::size_t pos_ = 0;
};

Query Query::parse(std::string_view text)
{
    return QueryParser(text).run();
}

}  // namespace descend::query
