/**
 * @file
 * Recursive-descent parser for the JSONPath fragment.
 *
 * Accepted syntax:
 *
 *   query        := '$' segment*
 *   segment      := '.' name | '.' '*' | '..' name | '..' '*'
 *                 | bracket | '..' bracket
 *   bracket      := '[' "'" qlabel "'" ']' | '[' '"' qlabel '"' ']'
 *                 | '[' '*' ']' | '[' digits ']'
 *   name         := bare member-name characters (alnum, '_', '-', '$',
 *                   and any non-ASCII byte)
 *
 * Quoted labels support the escapes \' \" \\ \/ \b \f \n \r \t \uXXXX.
 * UTF-16 surrogate pairs in \u escapes combine into one code point (encoded
 * as UTF-8, matching the document's raw bytes); lone surrogates are errors.
 */
#include <cctype>
#include <cstdint>
#include <string>

#include "descend/json/dom.h"
#include "descend/query/query.h"
#include "descend/util/errors.h"

namespace descend::query {
namespace {

bool is_bare_label_char(char c)
{
    unsigned char byte = static_cast<unsigned char>(c);
    return std::isalnum(byte) || c == '_' || c == '-' || c == '$' || byte >= 0x80;
}

}  // namespace

class QueryParser {
public:
    explicit QueryParser(std::string_view text) : text_(text) {}

    Query run()
    {
        Query result;
        result.text_ = std::string(text_);
        if (text_.empty() || text_[0] != '$') {
            fail("query must start with '$'");
        }
        ++pos_;
        result.selectors_.push_back({SelectorKind::kRoot, "", "", 0});
        while (pos_ < text_.size()) {
            result.selectors_.push_back(parse_segment());
        }
        return result;
    }

private:
    [[noreturn]] void fail(const std::string& message) const
    {
        throw QueryError(message, pos_);
    }

    char peek() const
    {
        if (pos_ >= text_.size()) {
            throw QueryError("unexpected end of query", pos_);
        }
        return text_[pos_];
    }

    Selector parse_segment()
    {
        if (peek() == '[') {
            return parse_bracket(/*descendant=*/false);
        }
        if (peek() != '.') {
            fail("expected '.' or '['");
        }
        ++pos_;
        bool descendant = false;
        if (pos_ < text_.size() && text_[pos_] == '.') {
            descendant = true;
            ++pos_;
        }
        if (pos_ >= text_.size()) {
            fail("selector expected after dot");
        }
        if (text_[pos_] == '[') {
            if (!descendant) {
                fail("'.[' is not valid; use '[' directly or '..['");
            }
            return parse_bracket(/*descendant=*/true);
        }
        if (text_[pos_] == '*') {
            ++pos_;
            return make_wildcard(descendant);
        }
        std::string label = parse_bare_label();
        return make_label(descendant, std::move(label));
    }

    std::string parse_bare_label()
    {
        std::size_t start = pos_;
        while (pos_ < text_.size() && is_bare_label_char(text_[pos_])) {
            ++pos_;
        }
        if (pos_ == start) {
            fail("member name expected");
        }
        return std::string(text_.substr(start, pos_ - start));
    }

    Selector parse_bracket(bool descendant)
    {
        ++pos_;  // '['
        char c = peek();
        if (c == '*') {
            ++pos_;
            expect(']');
            return make_wildcard(descendant);
        }
        if (c == '\'' || c == '"') {
            std::string label = parse_quoted_label(c);
            expect(']');
            return make_label(descendant, std::move(label));
        }
        if (std::isdigit(static_cast<unsigned char>(c))) {
            if (descendant) {
                fail("descendant index selectors are not supported");
            }
            std::uint64_t index = 0;
            std::size_t digits = 0;
            while (pos_ < text_.size() &&
                   std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
                index = index * 10 + static_cast<std::uint64_t>(text_[pos_] - '0');
                ++pos_;
                if (++digits > 18) {
                    fail("array index too large");
                }
            }
            expect(']');
            return Selector{SelectorKind::kChildIndex, "", "", index};
        }
        fail("expected label, '*' or index in brackets");
    }

    std::string parse_quoted_label(char quote)
    {
        ++pos_;  // opening quote
        std::string label;
        while (true) {
            char c = peek();
            ++pos_;
            if (c == quote) {
                return label;
            }
            if (c != '\\') {
                label.push_back(c);
                continue;
            }
            char escaped = peek();
            ++pos_;
            switch (escaped) {
                case '\'': label.push_back('\''); break;
                case '"': label.push_back('"'); break;
                case '\\': label.push_back('\\'); break;
                case '/': label.push_back('/'); break;
                case 'b': label.push_back('\b'); break;
                case 'f': label.push_back('\f'); break;
                case 'n': label.push_back('\n'); break;
                case 'r': label.push_back('\r'); break;
                case 't': label.push_back('\t'); break;
                case 'u': {
                    std::uint32_t code = parse_hex4();
                    if (code >= 0xDC00 && code <= 0xDFFF) {
                        fail("lone low surrogate in \\u escape");
                    }
                    if (code >= 0xD800 && code <= 0xDBFF) {
                        // UTF-16 surrogate pair: the high half must be
                        // followed by \uXXXX with a low half; the pair
                        // names one non-BMP code point.
                        if (pos_ + 2 > text_.size() || text_[pos_] != '\\' ||
                            text_[pos_ + 1] != 'u') {
                            fail("high surrogate not followed by \\u escape");
                        }
                        pos_ += 2;
                        std::uint32_t low = parse_hex4();
                        if (low < 0xDC00 || low > 0xDFFF) {
                            fail("high surrogate not paired with a low "
                                 "surrogate");
                        }
                        code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                    }
                    append_utf8(label, code);
                    break;
                }
                default: fail("invalid escape in label");
            }
        }
    }

    /** Consumes exactly four hex digits of a \uXXXX escape. */
    std::uint32_t parse_hex4()
    {
        if (pos_ + 4 > text_.size()) {
            fail("truncated \\u escape");
        }
        std::uint32_t value = 0;
        for (int i = 0; i < 4; ++i) {
            char c = text_[pos_ + static_cast<std::size_t>(i)];
            std::uint32_t digit;
            if (c >= '0' && c <= '9') {
                digit = static_cast<std::uint32_t>(c - '0');
            } else if (c >= 'a' && c <= 'f') {
                digit = static_cast<std::uint32_t>(c - 'a') + 10;
            } else if (c >= 'A' && c <= 'F') {
                digit = static_cast<std::uint32_t>(c - 'A') + 10;
            } else {
                fail("invalid hex digit in \\u escape");
            }
            value = (value << 4) | digit;
        }
        pos_ += 4;
        return value;
    }

    /** Appends @p code as UTF-8; the label then matches the raw document
     *  bytes of the same key (json::escape passes bytes >= 0x20 through). */
    static void append_utf8(std::string& out, std::uint32_t code)
    {
        if (code < 0x80) {
            out.push_back(static_cast<char>(code));
        } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
        } else if (code < 0x10000) {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
        } else {
            out.push_back(static_cast<char>(0xF0 | (code >> 18)));
            out.push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
        }
    }

    void expect(char c)
    {
        if (peek() != c) {
            fail(std::string("expected '") + c + "'");
        }
        ++pos_;
    }

    static Selector make_wildcard(bool descendant)
    {
        return Selector{descendant ? SelectorKind::kDescendantWildcard
                                   : SelectorKind::kChildWildcard,
                        "", "", 0};
    }

    static Selector make_label(bool descendant, std::string label)
    {
        Selector selector;
        selector.kind =
            descendant ? SelectorKind::kDescendant : SelectorKind::kChild;
        selector.label_escaped = json::escape(label);
        selector.label = std::move(label);
        return selector;
    }

    std::string_view text_;
    std::size_t pos_ = 0;
};

Query Query::parse(std::string_view text)
{
    return QueryParser(text).run();
}

}  // namespace descend::query
