/**
 * @file
 * JSONPath query AST for the fragment studied in the paper,
 *
 *     e ::= $ | e.label | e.* | e..label
 *
 * plus two flagged extensions: descendant wildcard `..*` (supported by
 * rsonpath) and array index selectors `[n]` (the paper's Section 6
 * "near future" feature). Bracket notation ['label'], ["label"], [*] and
 * [n] parses to the same selectors as the dot forms.
 *
 * Labels are stored in two forms: the unescaped text, and the *comparison
 * form* — the minimally-JSON-escaped bytes, which is what appears between
 * quotes in a document that uses minimal escaping. Like rsonpath, the
 * streaming engine compares labels byte-for-byte in their raw form, so
 * documents using non-minimal escapes (e.g. a for 'a') will not match;
 * see README "Limitations".
 */
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace descend::query {

enum class SelectorKind : std::uint8_t {
    kRoot,                ///< $
    kChild,               ///< .label
    kChildWildcard,       ///< .*
    kChildIndex,          ///< [n]           (extension)
    kDescendant,          ///< ..label
    kDescendantWildcard,  ///< ..*           (extension)
};

struct Selector {
    SelectorKind kind;
    /** Unescaped label text (kChild / kDescendant only). */
    std::string label;
    /** Minimally-escaped label bytes, as compared against documents. */
    std::string label_escaped;
    /** Array index (kChildIndex only). */
    std::uint64_t index = 0;

    bool is_descendant() const noexcept
    {
        return kind == SelectorKind::kDescendant ||
               kind == SelectorKind::kDescendantWildcard;
    }
};

/** A parsed JSONPath query: a root selector followed by path selectors. */
class Query {
public:
    /** Parses a query; throws QueryError on malformed input. */
    static Query parse(std::string_view text);

    /** The selector list. selectors()[0] is always kRoot. */
    const std::vector<Selector>& selectors() const noexcept { return selectors_; }

    /** Number of non-root selectors. */
    std::size_t size() const noexcept { return selectors_.size() - 1; }

    /** True if any selector is a descendant selector. */
    bool has_descendants() const noexcept;

    /** True if any selector is an index selector (extension). */
    bool has_indices() const noexcept;

    /** The original query text. */
    const std::string& text() const noexcept { return text_; }

    /** Canonical dot/bracket rendering of the parsed query. */
    std::string to_string() const;

private:
    friend class QueryParser;

    std::vector<Selector> selectors_;
    std::string text_;
};

}  // namespace descend::query
