/**
 * @file
 * JSONPath query AST for the fragment studied in the paper,
 *
 *     e ::= $ | e.label | e.* | e..label
 *
 * plus the counter/filter extensions (the paper's Section 6 "near future"
 * features, grounded in the JSON query-languages survey):
 *
 *  - descendant wildcard `..*` (supported by rsonpath),
 *  - array index selectors `[n]`,
 *  - array slice selectors `[a:b]` / `[a:]` (step 1 only),
 *  - name unions `['a','b']` (multi-label edges, node semantics),
 *  - comparison filters `[?(@.path <op> literal)]` and existence filters
 *    `[?(@.path)]`, restricted to the final selector position.
 *
 * Bracket notation ['label'], ["label"], [*] and [n] parses to the same
 * selectors as the dot forms; `Query::to_string()` renders the canonical
 * spelling (dot form for bare labels, single-quoted brackets otherwise),
 * so equal queries in different spellings share one canonical string —
 * the key used by multi-query dedup and the serve compiled-query cache.
 *
 * Labels are stored in two forms: the unescaped text, and the *comparison
 * form* — the minimally-JSON-escaped bytes, which is what appears between
 * quotes in a document that uses minimal escaping. Like rsonpath, the
 * streaming engine compares labels byte-for-byte in their raw form, so
 * documents using non-minimal escapes (e.g. a for 'a') will not match;
 * see README "Limitations".
 */
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace descend::json {
class Value;
}

namespace descend::query {

enum class SelectorKind : std::uint8_t {
    kRoot,                ///< $
    kChild,               ///< .label
    kChildWildcard,       ///< .*
    kChildIndex,          ///< [n]           (extension)
    kChildSlice,          ///< [a:b]         (extension; step 1 only)
    kChildUnion,          ///< ['a','b']     (extension)
    kChildFilter,         ///< [?(...)]      (extension; final selector only)
    kDescendant,          ///< ..label
    kDescendantWildcard,  ///< ..*           (extension)
};

/** A label in both stored forms (see file comment). */
struct LabelRef {
    std::string text;     ///< unescaped label text
    std::string escaped;  ///< minimally-escaped comparison form
};

/** Comparison operator of a filter selector. */
enum class FilterOp : std::uint8_t {
    kExists,  ///< bare `@.path` — the field chain resolves
    kEq,      ///< ==
    kNe,      ///< !=
    kLt,      ///< <
    kLe,      ///< <=
    kGt,      ///< >
    kGe,      ///< >=
};

/**
 * The right-hand-side literal of a filter comparison. Numbers are parsed
 * ONCE at query-compile time through the strict JSON number grammar, so
 * `1`, `1.0` and `1e0` are the same literal — comparisons are numeric,
 * never textual. Strings are stored unescaped (both evaluators compare
 * unescaped contents).
 */
struct FilterLiteral {
    enum class Kind : std::uint8_t { kNone, kNumber, kString, kBool, kNull };
    Kind kind = Kind::kNone;
    double number = 0;
    std::string string;
    bool boolean = false;
};

/**
 * A filter predicate `@.step1.step2 <op> literal`. The field chain is
 * navigated from the candidate node; a chain that fails to resolve makes
 * the predicate false for every operator (including !=). Ordering
 * operators are defined for number/number (numeric) and string/string
 * (bytewise on unescaped contents) pairs; every cross-type comparison is
 * false, and != is the exact negation of ==.
 */
struct FilterExpr {
    std::vector<LabelRef> steps;  ///< field chain after `@`
    FilterOp op = FilterOp::kExists;
    FilterLiteral literal;

    /** DOM-side evaluation — the oracle the lazy path is tested against. */
    bool matches(const json::Value& candidate) const;
};

/** Sentinel upper bound of an open-ended slice `[a:]`. */
inline constexpr std::uint64_t kSliceUnbounded = ~std::uint64_t{0};

struct Selector {
    SelectorKind kind;
    /** Unescaped label text (kChild / kDescendant only). */
    std::string label;
    /** Minimally-escaped label bytes, as compared against documents. */
    std::string label_escaped;
    /** Array index (kChildIndex only). */
    std::uint64_t index = 0;
    /** Slice bounds: admits entries in [slice_lo, slice_hi)
     *  (kChildSlice only; slice_hi == kSliceUnbounded when open). */
    std::uint64_t slice_lo = 0;
    std::uint64_t slice_hi = 0;
    /** Union members, sorted + deduplicated by escaped form
     *  (kChildUnion only; always >= 2 members — a singleton collapses
     *  to kChild during parsing). */
    std::vector<LabelRef> union_members;
    /** Filter predicate (kChildFilter only). */
    FilterExpr filter;

    bool is_descendant() const noexcept
    {
        return kind == SelectorKind::kDescendant ||
               kind == SelectorKind::kDescendantWildcard;
    }

    /** True for selectors that admit children by array position, which the
     *  engine realizes with per-depth entry counters. */
    bool needs_entry_counter() const noexcept
    {
        return kind == SelectorKind::kChildIndex ||
               kind == SelectorKind::kChildSlice;
    }
};

/** A parsed JSONPath query: a root selector followed by path selectors. */
class Query {
public:
    /** Parses a query; throws QueryError on malformed input. */
    static Query parse(std::string_view text);

    /** The selector list. selectors()[0] is always kRoot. */
    const std::vector<Selector>& selectors() const noexcept { return selectors_; }

    /** Number of non-root selectors. */
    std::size_t size() const noexcept { return selectors_.size() - 1; }

    /** True if any selector is a descendant selector. */
    bool has_descendants() const noexcept;

    /** True if any selector guards children by array position (index or
     *  slice) — the engine then tracks array-entry counters. */
    bool has_indices() const noexcept;

    /** The trailing filter predicate, or nullptr when the query has none
     *  (the parser admits filters only in final position). */
    const FilterExpr* filter() const noexcept;

    /** The original query text. */
    const std::string& text() const noexcept { return text_; }

    /** Canonical dot/bracket rendering of the parsed query: a fixpoint of
     *  parse ∘ to_string, so equal queries in different spellings render
     *  identically (multi-query dedup and serve cache keys rely on it). */
    std::string to_string() const;

private:
    friend class QueryParser;

    std::vector<Selector> selectors_;
    std::string text_;
};

}  // namespace descend::query
