#include "descend/query/query.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <optional>

#include "descend/json/dom.h"

namespace descend::query {
namespace {

/** Bare member-name characters (kept in sync with the parser's grammar):
 *  labels made only of these render in dot form; everything else renders
 *  bracket-quoted so the canonical string re-parses to the same selector. */
bool is_bare_label(std::string_view label)
{
    if (label.empty()) {
        return false;
    }
    for (char c : label) {
        unsigned char byte = static_cast<unsigned char>(c);
        if (!(std::isalnum(byte) || c == '_' || c == '-' || c == '$' ||
              byte >= 0x80)) {
            return false;
        }
    }
    return true;
}

/** Renders a label as a single-quoted bracket string, escaping exactly
 *  what the parser's quoted-label grammar can read back. */
std::string quote_label(std::string_view label)
{
    static const char* hex = "0123456789abcdef";
    std::string out = "'";
    for (char c : label) {
        switch (c) {
            case '\'': out += "\\'"; break;
            case '\\': out += "\\\\"; break;
            case '\b': out += "\\b"; break;
            case '\f': out += "\\f"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    out += "\\u00";
                    out += hex[(c >> 4) & 0xF];
                    out += hex[c & 0xF];
                } else {
                    out += c;
                }
        }
    }
    out += "'";
    return out;
}

/** A label segment in canonical form: dot form when bare, brackets else. */
std::string render_label_segment(std::string_view label)
{
    if (is_bare_label(label)) {
        return "." + std::string(label);
    }
    return "[" + quote_label(label) + "]";
}

/** Shortest round-trip rendering of a numeric literal: `1`, `1.0` and
 *  `1e0` all parsed to the same double, so they all render identically —
 *  the canonicalization half of the numeric-literal contract. */
std::string render_number(double value)
{
    char buffer[32];
    auto [end, ec] = std::to_chars(buffer, buffer + sizeof buffer, value);
    return std::string(buffer, end);
}

std::string_view op_text(FilterOp op)
{
    switch (op) {
        case FilterOp::kExists: return "";
        case FilterOp::kEq: return "==";
        case FilterOp::kNe: return "!=";
        case FilterOp::kLt: return "<";
        case FilterOp::kLe: return "<=";
        case FilterOp::kGt: return ">";
        case FilterOp::kGe: return ">=";
    }
    return "";
}

std::string render_filter(const FilterExpr& filter)
{
    std::string out = "[?(@";
    for (const LabelRef& step : filter.steps) {
        out += render_label_segment(step.text);
    }
    if (filter.op != FilterOp::kExists) {
        out += op_text(filter.op);
        switch (filter.literal.kind) {
            case FilterLiteral::Kind::kNumber:
                out += render_number(filter.literal.number);
                break;
            case FilterLiteral::Kind::kString:
                out += quote_label(filter.literal.string);
                break;
            case FilterLiteral::Kind::kBool:
                out += filter.literal.boolean ? "true" : "false";
                break;
            case FilterLiteral::Kind::kNull: out += "null"; break;
            case FilterLiteral::Kind::kNone: break;
        }
    }
    out += ")]";
    return out;
}

/** Same-type equality between a DOM node and a filter literal; any type
 *  mismatch is unequal (and != is the exact negation). */
bool literal_equals(const json::Value& node, const FilterLiteral& literal)
{
    switch (literal.kind) {
        case FilterLiteral::Kind::kNumber:
            return node.is_number() && node.as_number() == literal.number;
        case FilterLiteral::Kind::kString:
            return node.is_string() && node.as_string() == literal.string;
        case FilterLiteral::Kind::kBool:
            return node.is_bool() && node.as_bool() == literal.boolean;
        case FilterLiteral::Kind::kNull: return node.is_null();
        case FilterLiteral::Kind::kNone: return false;
    }
    return false;
}

/** Three-way ordering when defined: numeric for number/number, bytewise
 *  on unescaped contents for string/string. Nullopt for any other pair —
 *  the comparison is then false regardless of the operator. */
std::optional<int> literal_order(const json::Value& node,
                                 const FilterLiteral& literal)
{
    if (literal.kind == FilterLiteral::Kind::kNumber && node.is_number()) {
        double a = node.as_number();
        double b = literal.number;
        return a < b ? -1 : (a > b ? 1 : 0);
    }
    if (literal.kind == FilterLiteral::Kind::kString && node.is_string()) {
        int c = node.as_string().compare(literal.string);
        return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
    return std::nullopt;
}

}  // namespace

bool FilterExpr::matches(const json::Value& candidate) const
{
    const json::Value* node = &candidate;
    for (const LabelRef& step : steps) {
        if (!node->is_object()) {
            return false;
        }
        node = node->find(step.escaped);
        if (node == nullptr) {
            return false;
        }
    }
    switch (op) {
        case FilterOp::kExists: return true;
        case FilterOp::kEq: return literal_equals(*node, literal);
        case FilterOp::kNe: return !literal_equals(*node, literal);
        case FilterOp::kLt: {
            auto order = literal_order(*node, literal);
            return order.has_value() && *order < 0;
        }
        case FilterOp::kLe: {
            auto order = literal_order(*node, literal);
            return order.has_value() && *order <= 0;
        }
        case FilterOp::kGt: {
            auto order = literal_order(*node, literal);
            return order.has_value() && *order > 0;
        }
        case FilterOp::kGe: {
            auto order = literal_order(*node, literal);
            return order.has_value() && *order >= 0;
        }
    }
    return false;
}

bool Query::has_descendants() const noexcept
{
    return std::any_of(selectors_.begin(), selectors_.end(),
                       [](const Selector& s) { return s.is_descendant(); });
}

bool Query::has_indices() const noexcept
{
    return std::any_of(selectors_.begin(), selectors_.end(), [](const Selector& s) {
        return s.needs_entry_counter();
    });
}

const FilterExpr* Query::filter() const noexcept
{
    const Selector& last = selectors_.back();
    return last.kind == SelectorKind::kChildFilter ? &last.filter : nullptr;
}

std::string Query::to_string() const
{
    std::string out;
    for (const Selector& selector : selectors_) {
        switch (selector.kind) {
            case SelectorKind::kRoot: out += "$"; break;
            case SelectorKind::kChild:
                out += render_label_segment(selector.label);
                break;
            case SelectorKind::kChildWildcard: out += ".*"; break;
            case SelectorKind::kChildIndex:
                out += "[" + std::to_string(selector.index) + "]";
                break;
            case SelectorKind::kChildSlice:
                out += "[" + std::to_string(selector.slice_lo) + ":";
                if (selector.slice_hi != kSliceUnbounded) {
                    out += std::to_string(selector.slice_hi);
                }
                out += "]";
                break;
            case SelectorKind::kChildUnion: {
                out += "[";
                for (std::size_t m = 0; m < selector.union_members.size(); ++m) {
                    if (m > 0) {
                        out += ",";
                    }
                    out += quote_label(selector.union_members[m].text);
                }
                out += "]";
                break;
            }
            case SelectorKind::kChildFilter:
                out += render_filter(selector.filter);
                break;
            case SelectorKind::kDescendant:
                if (is_bare_label(selector.label)) {
                    out += ".." + selector.label;
                } else {
                    out += "..[" + quote_label(selector.label) + "]";
                }
                break;
            case SelectorKind::kDescendantWildcard: out += "..*"; break;
        }
    }
    return out;
}

}  // namespace descend::query
