#include "descend/query/query.h"

#include <algorithm>

namespace descend::query {

bool Query::has_descendants() const noexcept
{
    return std::any_of(selectors_.begin(), selectors_.end(),
                       [](const Selector& s) { return s.is_descendant(); });
}

bool Query::has_indices() const noexcept
{
    return std::any_of(selectors_.begin(), selectors_.end(), [](const Selector& s) {
        return s.kind == SelectorKind::kChildIndex;
    });
}

std::string Query::to_string() const
{
    std::string out;
    for (const Selector& selector : selectors_) {
        switch (selector.kind) {
            case SelectorKind::kRoot: out += "$"; break;
            case SelectorKind::kChild:
                out += ".";
                out += selector.label;
                break;
            case SelectorKind::kChildWildcard: out += ".*"; break;
            case SelectorKind::kChildIndex:
                out += "[" + std::to_string(selector.index) + "]";
                break;
            case SelectorKind::kDescendant:
                out += "..";
                out += selector.label;
                break;
            case SelectorKind::kDescendantWildcard: out += "..*"; break;
        }
    }
    return out;
}

}  // namespace descend::query
