#include "descend/baselines/ski_engine.h"

#include "descend/engine/validation.h"
#include "descend/util/errors.h"
#include "descend/util/utf8.h"

namespace descend {

using Kind = StructuralIterator::Kind;

SkiEngine::SkiEngine(const query::Query& query, simd::Level level,
                     EngineLimits limits, RunBudget budget)
    : kernels_(&simd::kernels_for(level)), limits_(limits), budget_(budget)
{
    for (const query::Selector& selector : query.selectors()) {
        switch (selector.kind) {
            case query::SelectorKind::kRoot:
                break;
            case query::SelectorKind::kChild:
                levels_.push_back({LevelKind::kKey, selector.label_escaped, 0});
                break;
            case query::SelectorKind::kChildWildcard:
                levels_.push_back({LevelKind::kWildcard, "", 0});
                break;
            case query::SelectorKind::kChildIndex:
                levels_.push_back({LevelKind::kIndex, "", selector.index});
                break;
            case query::SelectorKind::kChildSlice:
            case query::SelectorKind::kChildUnion:
            case query::SelectorKind::kChildFilter:
                throw QueryError(
                    "the JSONSki baseline does not support slice, union or "
                    "filter selectors",
                    0);
            case query::SelectorKind::kDescendant:
            case query::SelectorKind::kDescendantWildcard:
                throw QueryError(
                    "the JSONSki baseline does not support descendant selectors", 0);
        }
    }
}

EngineStatus SkiEngine::run(const PaddedString& document, MatchSink& sink) const
{
    EngineStatus status = preflight_document(document, limits_);
    if (!status.ok()) {
        return status;
    }
    if (budget_.active()) {
        // Pre-expired budget: fail before any work, at offset 0 — before
        // the `$` fast path, matching the main engine's order.
        StatusCode over = budget_.exceeded();
        if (over != StatusCode::kOk) {
            return {over, 0};
        }
    }
    if (levels_.empty()) {
        // `$`: the whole document, without scanning it (see DESIGN.md).
        StructuralIterator iter(document, *kernels_);
        std::size_t start = iter.first_non_ws(0);
        if (start < document.size()) {
            sink.on_match(start);
        }
        return {};
    }
    // The kind-filtered fast-forwards can step across damage that is
    // locally invisible to them; the shared validator's whole-document
    // balances catch it at the end-of-run verdict.
    StructuralValidator validator;
    StructuralIterator iter(document, *kernels_, &validator, limits_.max_depth,
                            nullptr, budget_.active() ? &budget_ : nullptr);
    StructuralIterator::Event root = iter.next();
    if (root.kind == Kind::kClosing) {
        return {StatusCode::kUnbalancedStructure, root.pos};
    }
    if (root.kind != Kind::kOpening) {
        // Atomic root (possibly malformed): next() scanned to end of
        // input, so the iterator status and the verdict are conclusive.
        if (!iter.status().ok()) {
            return iter.status();
        }
        return validator.verdict(document.size());
    }
    RunState run{sink, limits_, {}, 0};
    if (!check_depth(run, 0, root.pos)) {
        return run.status;
    }
    match_container(iter, run, 0, root.byte, 1);
    if (!run.status.ok()) {
        return run.status;
    }
    if (!iter.status().ok()) {
        return iter.status();
    }
    std::size_t after = iter.first_non_ws(iter.position());
    if (after < document.size()) {
        return {StatusCode::kTrailingContent, after};
    }
    // Sound on a partial scan: everything past the root's closer is
    // whitespace (the check above), which cannot move a balance.
    return validator.verdict(document.size());
}

void SkiEngine::match_container(StructuralIterator& iter, RunState& run,
                                std::size_t level, std::uint8_t opening_byte,
                                std::size_t depth) const
{
    bool is_object = opening_byte == classify::kOpenBrace;
    // JSONSki's type assumption: a level acts on exactly one container
    // type; a mismatching container is fast-forwarded over entirely.
    if (level_wants_object(level) != is_object) {
        iter.skip_element(opening_byte, depth - 1);
        return;
    }
    if (is_object) {
        match_object(iter, run, level, depth);
    } else {
        match_array(iter, run, level, depth);
    }
}

void SkiEngine::match_object(StructuralIterator& iter, RunState& run,
                             std::size_t level, std::size_t depth) const
{
    const Level& spec = levels_[level];
    bool is_last = level + 1 == levels_.size();
    iter.set_colons(true);
    iter.set_commas(false);
    while (run.status.ok()) {
        StructuralIterator::Event event = iter.next();
        if (event.kind == Kind::kNone) {
            return;
        }
        if (event.kind == Kind::kClosing) {
            if (event.byte != classify::kCloseBrace) {
                // ']' closing the object we are in.
                run.fail(StatusCode::kUnbalancedStructure, event.pos);
            }
            return;  // end of this object
        }
        if (event.kind == Kind::kOpening) {
            // A member value container that was not consumed at its colon
            // (cannot happen: colons precede values). Defensive skip.
            if (!check_depth(run, depth, event.pos)) {
                return;
            }
            iter.skip_element(event.byte, depth);
            continue;
        }
        if (event.kind != Kind::kColon) {
            continue;
        }
        auto label = iter.label_before(event.pos);
        if (label.has_value() && !util::is_valid_utf8(*label)) {
            run.fail(StatusCode::kInvalidUtf8InLabel,
                     static_cast<std::size_t>(
                         reinterpret_cast<const std::uint8_t*>(label->data()) -
                         iter.data()));
            return;
        }
        bool matches = label.has_value() && *label == spec.label;
        StructuralIterator::Event value = iter.peek();
        if (value.kind == Kind::kOpening && !check_depth(run, depth, value.pos)) {
            // A descending engine fails at this opener whether or not the
            // member is relevant; skipping must not escape the limit.
            return;
        }
        if (!matches) {
            if (value.kind == Kind::kOpening) {
                iter.next();
                iter.skip_element(value.byte, depth);
            }
            continue;
        }
        // The unique matching member of this object.
        if (is_last) {
            run.report(iter.first_non_ws(event.pos + 1));
            if (value.kind == Kind::kOpening) {
                iter.next();
                iter.skip_element(value.byte, depth);
            }
        } else if (value.kind == Kind::kOpening) {
            iter.next();
            match_container(iter, run, level + 1, value.byte, depth + 1);
        }
        // Keys are unique among siblings: fast-forward to this object's end.
        iter.set_colons(false);
        iter.set_commas(false);
        iter.skip_element(classify::kOpenBrace, depth - 1);
        return;
    }
}

void SkiEngine::handle_array_entry(StructuralIterator& iter, RunState& run,
                                   std::size_t level, bool entry_matches,
                                   std::size_t value_scan_from,
                                   std::size_t depth) const
{
    bool is_last = level + 1 == levels_.size();
    StructuralIterator::Event value = iter.peek();
    if (value.kind == Kind::kOpening) {
        if (!check_depth(run, depth, value.pos)) {
            return;
        }
        iter.next();
        if (entry_matches && is_last) {
            run.report(value.pos);
            iter.skip_element(value.byte, depth);
        } else if (entry_matches) {
            match_container(iter, run, level + 1, value.byte, depth + 1);
        } else {
            iter.skip_element(value.byte, depth);
        }
        // Restore this array's toggles after the recursion/fast-forward.
        iter.set_commas(true);
        iter.set_colons(false);
        return;
    }
    // Atomic entry: nothing to consume (it produces no events).
    if (entry_matches && is_last) {
        std::size_t item = iter.first_non_ws(value_scan_from);
        if (item < value.pos) {
            run.report(item);
        }
    }
}

void SkiEngine::match_array(StructuralIterator& iter, RunState& run,
                            std::size_t level, std::size_t depth) const
{
    const Level& spec = levels_[level];
    iter.set_commas(true);
    iter.set_colons(false);
    std::uint64_t entry = 0;
    auto entry_matches = [&](std::uint64_t index) {
        return spec.kind == LevelKind::kWildcard || index == spec.index;
    };

    // First entry: not preceded by a comma. Capture the scan start before
    // peeking (peek may advance past blocks holding only atom content).
    std::size_t first_entry_scan = iter.position();
    StructuralIterator::Event first = iter.peek();
    if (first.kind == Kind::kClosing) {
        iter.next();
        if (first.byte != classify::kCloseBracket) {
            run.fail(StatusCode::kUnbalancedStructure, first.pos);
        }
        return;  // empty array
    }
    handle_array_entry(iter, run, level, entry_matches(0), first_entry_scan,
                       depth);

    while (run.status.ok()) {
        StructuralIterator::Event event = iter.next();
        if (event.kind == Kind::kNone) {
            return;
        }
        if (event.kind == Kind::kClosing) {
            if (event.byte != classify::kCloseBracket) {
                // '}' closing the array we are in.
                run.fail(StatusCode::kUnbalancedStructure, event.pos);
            }
            return;
        }
        if (event.kind != Kind::kComma) {
            continue;
        }
        ++entry;
        if (spec.kind == LevelKind::kIndex && entry > spec.index) {
            // Past the target index: fast-forward to the array's end.
            iter.skip_element(classify::kOpenBracket, depth - 1);
            return;
        }
        handle_array_entry(iter, run, level, entry_matches(entry), event.pos + 1,
                           depth);
    }
}

}  // namespace descend
