/**
 * @file
 * The DOM reference engine — the correctness oracle.
 *
 * Parses the document into a DOM and evaluates the query AST directly by
 * carrying a set of query positions down the tree (node semantics). This
 * implementation is deliberately independent of the automaton module (no
 * determinization, no minimization, no SIMD, no streaming), so that the
 * differential tests compare two genuinely different evaluators.
 *
 * Also provides the *path semantics* evaluation (multiplicities instead of
 * sets), used to reproduce the paper's Appendix D node-vs-path comparison.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "descend/engine/api.h"
#include "descend/json/dom.h"
#include "descend/query/query.h"

namespace descend {

class DomEngine final : public JsonPathEngine {
public:
    /** @param budget run governance; polled per DOM node during evaluation
     *  and around the parse (see util/budget.h). */
    explicit DomEngine(query::Query query, EngineLimits limits = {},
                       RunBudget budget = {})
        : query_(std::move(query)), limits_(limits), budget_(budget)
    {
    }

    std::string name() const override { return "dom"; }

    /**
     * Parses (strictly) and evaluates with node semantics. The strict
     * parser's classified ParseError is converted to the corresponding
     * EngineStatus — this engine never throws on document content either.
     */
    EngineStatus run(const PaddedString& document, MatchSink& sink) const override;

    /** Node-semantics evaluation over a pre-parsed document. */
    void evaluate(const json::Value& root, MatchSink& sink) const;

    /**
     * Path-semantics evaluation (paper Section 2): every distinct way of
     * matching the query contributes one result, so the same node can be
     * reported multiple times. Returns offsets with multiplicity, in
     * document order.
     */
    std::vector<std::size_t> evaluate_path_semantics(const json::Value& root) const;

private:
    query::Query query_;
    EngineLimits limits_;
    RunBudget budget_;
};

}  // namespace descend
