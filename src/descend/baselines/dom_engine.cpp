#include "descend/baselines/dom_engine.h"

#include <string_view>

#include "descend/engine/validation.h"
#include "descend/util/errors.h"

namespace descend {
namespace {

/** Pass-through sink enforcing EngineLimits::max_match_count. */
class LimitingSink final : public MatchSink {
public:
    LimitingSink(MatchSink& inner, std::size_t max_matches)
        : inner_(inner), max_matches_(max_matches)
    {
    }

    void on_match(std::size_t offset) override
    {
        if (!status_.ok()) {
            return;
        }
        if (++matches_ > max_matches_) {
            status_ = {StatusCode::kMatchLimit, offset};
            return;
        }
        inner_.on_match(offset);
    }

    const EngineStatus& status() const noexcept { return status_; }

private:
    MatchSink& inner_;
    std::size_t max_matches_;
    std::size_t matches_ = 0;
    EngineStatus status_;
};

using query::Selector;
using query::SelectorKind;

/**
 * Whether selector @p s lets a child reached by @p key / @p index advance
 * the match. Object members pass a key; array entries pass an index. The
 * child value itself is consulted only by filter selectors, whose
 * predicate runs over the candidate node.
 */
bool selector_admits(const Selector& s, const std::string* key,
                     std::uint64_t index, const json::Value& child)
{
    switch (s.kind) {
        case SelectorKind::kChild:
        case SelectorKind::kDescendant:
            return key != nullptr && *key == s.label_escaped;
        case SelectorKind::kChildWildcard:
        case SelectorKind::kDescendantWildcard:
            return true;
        case SelectorKind::kChildIndex:
            return key == nullptr && index == s.index;
        case SelectorKind::kChildSlice:
            return key == nullptr && index >= s.slice_lo && index < s.slice_hi;
        case SelectorKind::kChildUnion:
            if (key == nullptr) {
                return false;
            }
            for (const query::LabelRef& member : s.union_members) {
                if (member.escaped == *key) {
                    return true;
                }
            }
            return false;
        case SelectorKind::kChildFilter:
            // The path guard is a wildcard; the predicate decides. This is
            // the oracle the streaming engines' lazy evaluation (project/
            // filter_eval) is differentially tested against.
            return s.filter.matches(child);
        case SelectorKind::kRoot:
            return false;
    }
    return false;
}

/** Node-semantics evaluator: a bitset of query positions per node. */
class NodeEval {
public:
    /** @param gate / @p status optional governance: polled once per node
     *  visit; a violation latches into *status and stops the walk. */
    NodeEval(const std::vector<Selector>& selectors, MatchSink& sink,
             BudgetGate* gate = nullptr, EngineStatus* status = nullptr)
        : selectors_(selectors),
          final_(selectors.size() - 1),
          sink_(sink),
          gate_(gate),
          status_(status)
    {
    }

    void visit(const json::Value& node, std::uint64_t states)
    {
        if (gate_ != nullptr) {
            if (!status_->ok()) {
                return;
            }
            StatusCode over = gate_->poll();
            if (over != StatusCode::kOk) {
                *status_ = {over, node.source_offset()};
                return;
            }
        }
        if (states == 0) {
            return;
        }
        if (states >> final_ & 1) {
            sink_.on_match(node.source_offset());
        }
        for (std::size_t m = 0; m < node.members().size(); ++m) {
            const json::Member& member = node.members()[m];
            visit(*member.value, successors(states, &member.key, 0, *member.value));
        }
        for (std::size_t e = 0; e < node.elements().size(); ++e) {
            visit(*node.elements()[e],
                  successors(states, nullptr, e, *node.elements()[e]));
        }
    }

private:
    std::uint64_t successors(std::uint64_t states, const std::string* key,
                             std::uint64_t index, const json::Value& child) const
    {
        std::uint64_t next = 0;
        for (std::size_t i = 0; i < final_; ++i) {
            if (!(states >> i & 1)) {
                continue;
            }
            // Position i has matched i selectors; selectors_[i + 1] guards
            // the advance. A descendant selector also keeps position i
            // alive for arbitrarily deeper matches.
            const Selector& s = selectors_[i + 1];
            if (s.is_descendant()) {
                next |= 1ULL << i;
            }
            if (selector_admits(s, key, index, child)) {
                next |= 1ULL << (i + 1);
            }
        }
        return next;
    }

    const std::vector<Selector>& selectors_;
    std::size_t final_;
    MatchSink& sink_;
    BudgetGate* gate_;
    EngineStatus* status_;
};

/** Path-semantics evaluator: multiplicities instead of a bitset. */
class PathEval {
public:
    PathEval(const std::vector<Selector>& selectors, std::vector<std::size_t>& out)
        : selectors_(selectors), final_(selectors.size() - 1), out_(out)
    {
    }

    void visit(const json::Value& node, const std::vector<std::uint64_t>& counts)
    {
        std::uint64_t total = 0;
        for (std::uint64_t c : counts) {
            total += c;
        }
        if (total == 0) {
            return;
        }
        for (std::uint64_t k = 0; k < counts[final_]; ++k) {
            out_.push_back(node.source_offset());
        }
        for (std::size_t m = 0; m < node.members().size(); ++m) {
            const json::Member& member = node.members()[m];
            visit(*member.value,
                  successors(counts, &member.key, 0, *member.value));
        }
        for (std::size_t e = 0; e < node.elements().size(); ++e) {
            visit(*node.elements()[e],
                  successors(counts, nullptr, e, *node.elements()[e]));
        }
    }

    std::vector<std::uint64_t> initial() const
    {
        std::vector<std::uint64_t> counts(final_ + 1, 0);
        counts[0] = 1;
        return counts;
    }

private:
    std::vector<std::uint64_t> successors(const std::vector<std::uint64_t>& counts,
                                          const std::string* key,
                                          std::uint64_t index,
                                          const json::Value& child) const
    {
        std::vector<std::uint64_t> next(counts.size(), 0);
        for (std::size_t i = 0; i < final_; ++i) {
            if (counts[i] == 0) {
                continue;
            }
            const Selector& s = selectors_[i + 1];
            if (s.is_descendant()) {
                next[i] += counts[i];
            }
            if (selector_admits(s, key, index, child)) {
                next[i + 1] += counts[i];
            }
        }
        return next;
    }

    const std::vector<Selector>& selectors_;
    std::size_t final_;
    std::vector<std::size_t>& out_;
};

}  // namespace

EngineStatus DomEngine::run(const PaddedString& document, MatchSink& sink) const
{
    EngineStatus status = preflight_document(document, limits_);
    if (!status.ok()) {
        return status;
    }
    if (budget_.active()) {
        // An already-violated budget fails before any work, at offset 0 —
        // matching the batched engines' deterministic anchor.
        StatusCode over = budget_.exceeded();
        if (over != StatusCode::kOk) {
            return {over, 0};
        }
    }
    json::ParseOptions parse_options;
    parse_options.max_depth = limits_.max_depth;
    try {
        json::Document dom = json::parse(document.view(), parse_options);
        if (budget_.active()) {
            // The parse is not internally polled; re-check before the walk
            // so a deadline that expired mid-parse is still honoured.
            StatusCode over = budget_.exceeded();
            if (over != StatusCode::kOk) {
                return {over, 0};
            }
        }
        LimitingSink limited(sink, limits_.max_match_count);
        BudgetGate gate(budget_);
        EngineStatus governance;
        NodeEval eval(query_.selectors(), limited,
                      budget_.active() ? &gate : nullptr, &governance);
        eval.visit(dom.root(), 1);
        if (!governance.ok()) {
            return governance;
        }
        return limited.status();
    } catch (const ParseError& error) {
        return {error.code(), error.position()};
    }
}

void DomEngine::evaluate(const json::Value& root, MatchSink& sink) const
{
    NodeEval eval(query_.selectors(), sink);
    eval.visit(root, 1);
}

std::vector<std::size_t> DomEngine::evaluate_path_semantics(const json::Value& root) const
{
    std::vector<std::size_t> offsets;
    PathEval eval(query_.selectors(), offsets);
    eval.visit(root, eval.initial());
    return offsets;
}

}  // namespace descend
