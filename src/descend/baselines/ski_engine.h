/**
 * @file
 * The JSONSki-like baseline (Jiang & Zhao, ASPLOS 2022): SIMD bit-parallel
 * fast-forwarding for the query subset JSONSki supports — child labels,
 * array indices, and wildcards that traverse *array elements only* (the
 * non-idiomatic wildcard semantics the paper calls out). No descendant
 * support; constructing it with a descendant query throws.
 *
 * Faithful behavioural properties reproduced here:
 *  - recursive level-by-level matching that knows, from the query, whether
 *    each level acts on an object or an array, and skips values of the
 *    wrong type outright;
 *  - fast-forwarding over irrelevant values and to container ends using
 *    the same depth-classifier primitives the paper's Section 4.4 builds
 *    (JSONSki's "bit-parallel fast-forwarding");
 *  - after an object-level match, the remaining siblings are skipped
 *    (object keys are assumed unique).
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "descend/engine/api.h"
#include "descend/engine/structural_iterator.h"
#include "descend/query/query.h"

namespace descend {

class SkiEngine final : public JsonPathEngine {
public:
    /** @throws QueryError if the query uses descendant selectors.
     *  @param budget run governance, checked at batch-refill granularity
     *  by the underlying structural iterator (see util/budget.h). */
    explicit SkiEngine(const query::Query& query,
                       simd::Level level = simd::default_level(),
                       EngineLimits limits = {}, RunBudget budget = {});

    static SkiEngine for_query(std::string_view query_text)
    {
        return SkiEngine(query::Query::parse(query_text));
    }

    std::string name() const override { return "jsonski"; }

    EngineStatus run(const PaddedString& document, MatchSink& sink) const override;

private:
    /** Mutable per-run state threaded through the match methods. */
    struct RunState {
        MatchSink& sink;
        const EngineLimits& limits;
        EngineStatus status;
        std::size_t matches = 0;

        void fail(StatusCode code, std::size_t offset)
        {
            if (status.ok()) {
                status = {code, offset};
            }
        }

        void report(std::size_t offset)
        {
            if (++matches > limits.max_match_count) {
                fail(StatusCode::kMatchLimit, offset);
                return;
            }
            sink.on_match(offset);
        }
    };

    enum class LevelKind : std::uint8_t {
        kKey,       ///< object member by label
        kWildcard,  ///< every array element (JSONSki semantics)
        kIndex,     ///< array element by index
    };

    struct Level {
        LevelKind kind;
        std::string label;  ///< escaped comparison form (kKey)
        std::uint64_t index = 0;
    };

    /**
     * The match methods thread the absolute nesting depth (@p depth =
     * containers open, including the one being matched) so both the
     * explicit checks below and the iterator fast-forwards enforce
     * EngineLimits::max_depth at the same offset the DOM baseline reports.
     */
    void match_container(StructuralIterator& iter, RunState& run,
                         std::size_t level, std::uint8_t opening_byte,
                         std::size_t depth) const;
    void match_object(StructuralIterator& iter, RunState& run,
                      std::size_t level, std::size_t depth) const;
    void match_array(StructuralIterator& iter, RunState& run,
                     std::size_t level, std::size_t depth) const;
    /** Handles one array entry; consumes it if it is a container.
     *  @p depth is the array's own absolute depth. */
    void handle_array_entry(StructuralIterator& iter, RunState& run,
                            std::size_t level, bool entry_matches,
                            std::size_t value_scan_from, std::size_t depth) const;

    /** DOM-aligned depth-limit check before a container at @p pos is
     *  entered or fast-forwarded over, with @p depth_before containers
     *  already open around it. Returns false (and fails the run at the
     *  opener's offset) when opening it would exceed the limit. */
    bool check_depth(RunState& run, std::size_t depth_before,
                     std::size_t pos) const
    {
        if (depth_before >= limits_.max_depth) {
            run.fail(StatusCode::kDepthLimit, pos);
            return false;
        }
        return true;
    }

    /** True when a container opened by @p byte fits level expectations. */
    bool level_wants_object(std::size_t level) const
    {
        return levels_[level].kind == LevelKind::kKey;
    }

    std::vector<Level> levels_;
    const simd::Kernels* kernels_;
    EngineLimits limits_;
    RunBudget budget_;
};

}  // namespace descend
