#include "descend/baselines/surfer_engine.h"

#include <optional>
#include <vector>

#include "descend/engine/validation.h"
#include "descend/json/sax.h"
#include "descend/project/filter_eval.h"
#include "descend/util/utf8.h"

namespace descend {
namespace {

class SurferHandler final : public json::SaxHandler {
public:
    SurferHandler(const automaton::CompiledQuery& query, const EngineLimits& limits,
                  const RunBudget& budget, MatchSink& sink,
                  project::FilterGate* filter_gate)
        : query_(query),
          alphabet_(query.alphabet()),
          counting_(query.has_indices()),
          limits_(limits),
          gate_(budget),
          sink_(sink),
          filter_gate_(filter_gate)
    {
        state_ = query_.initial_state();
    }

    /** First problem this handler observed (the tokenizer keeps feeding
     *  events after a failure; they are ignored). */
    const EngineStatus& status() const noexcept { return status_; }

    bool root_open() const noexcept { return !stack_.empty(); }

    void on_object_start(std::size_t offset) override { enter(offset, false); }
    void on_array_start(std::size_t offset) override { enter(offset, true); }

    void on_object_end(std::size_t offset) override { leave(offset, false); }
    void on_array_end(std::size_t offset) override { leave(offset, true); }

    void on_key(std::string_view raw_key, std::size_t offset) override
    {
        if (!status_.ok()) {
            return;
        }
        if (!within_budget(offset)) {
            return;
        }
        if (!util::is_valid_utf8(raw_key)) {
            // offset is the key's opening quote; its bytes start after it.
            fail(StatusCode::kInvalidUtf8InLabel, offset + 1);
            return;
        }
        pending_key_ = raw_key;
    }

    void on_atom(std::string_view, std::size_t offset) override
    {
        if (!status_.ok()) {
            return;
        }
        if (!within_budget(offset)) {
            return;
        }
        if (stack_.empty()) {
            // Atomic root: only `$` matches it (handled as a preflight in
            // run()). A second top-level value is trailing content.
            if (root_done_) {
                fail(StatusCode::kTrailingContent, offset);
            }
            root_done_ = true;
            return;
        }
        int target = query_.transition(state_, take_symbol());
        if (query_.flags(target).accepting) {
            report(offset);
        }
    }

private:
    struct Frame {
        int state;
        bool is_array;
        std::uint64_t entries;
    };

    void fail(StatusCode code, std::size_t offset)
    {
        if (status_.ok()) {
            status_ = {code, offset};
        }
    }

    /** Governance poll, once per SAX event (stride-amortized clock reads).
     *  Returns false when the run should stop, with the status latched. */
    bool within_budget(std::size_t offset)
    {
        StatusCode over = gate_.poll();
        if (over != StatusCode::kOk) {
            fail(over, offset);
            return false;
        }
        return true;
    }

    void report(std::size_t offset)
    {
        // Same contract as the main engine: a filter-rejected candidate is
        // not a match and does not count toward the limit.
        if (filter_gate_ != nullptr && !filter_gate_->admits(offset)) {
            return;
        }
        if (++matches_ > limits_.max_match_count) {
            fail(StatusCode::kMatchLimit, offset);
            return;
        }
        sink_.on_match(offset);
    }

    int take_symbol()
    {
        if (pending_key_.has_value()) {
            int symbol = alphabet_.label_symbol(*pending_key_);
            pending_key_.reset();
            return symbol;
        }
        if (!stack_.empty() && stack_.back().is_array) {
            std::uint64_t index = stack_.back().entries++;
            return counting_ ? alphabet_.index_symbol(index)
                             : alphabet_.other_symbol();
        }
        return alphabet_.other_symbol();
    }

    void enter(std::size_t offset, bool is_array)
    {
        if (!status_.ok()) {
            return;
        }
        if (!within_budget(offset)) {
            return;
        }
        if (stack_.empty() && root_done_) {
            fail(StatusCode::kTrailingContent, offset);
            return;
        }
        if (stack_.size() >= limits_.max_depth) {
            fail(StatusCode::kDepthLimit, offset);
            return;
        }
        int target = stack_.empty() ? state_ : query_.transition(state_, take_symbol());
        if (query_.flags(target).accepting) {
            report(offset);
        }
        stack_.push_back({state_, is_array, 0});
        state_ = target;
    }

    void leave(std::size_t offset, bool is_array)
    {
        if (!status_.ok()) {
            return;
        }
        if (!within_budget(offset)) {
            return;
        }
        if (stack_.empty()) {
            // A closer with nothing open: previously a silent early-out,
            // now a reported stray-closer position.
            fail(StatusCode::kUnbalancedStructure, offset);
            return;
        }
        if (stack_.back().is_array != is_array) {
            fail(StatusCode::kUnbalancedStructure, offset);
            return;
        }
        state_ = stack_.back().state;
        stack_.pop_back();
        if (stack_.empty()) {
            root_done_ = true;
        }
    }

    const automaton::CompiledQuery& query_;
    const automaton::Alphabet& alphabet_;
    bool counting_;
    const EngineLimits& limits_;
    BudgetGate gate_;
    MatchSink& sink_;
    project::FilterGate* filter_gate_;
    int state_ = 0;
    std::optional<std::string_view> pending_key_;
    std::vector<Frame> stack_;
    EngineStatus status_;
    std::size_t matches_ = 0;
    bool root_done_ = false;
};

}  // namespace

EngineStatus SurferEngine::run(const PaddedString& document, MatchSink& sink) const
{
    EngineStatus status = preflight_document(document, limits_);
    if (!status.ok()) {
        return status;
    }
    if (budget_.active()) {
        StatusCode over = budget_.exceeded();
        if (over != StatusCode::kOk) {
            // Pre-expired budget: fail before any work, at offset 0 —
            // before the `$` fast path, matching the main engine's order.
            return {over, 0};
        }
    }
    if (query_.root_accepting()) {
        // `$` selects the whole document without scanning it (matching the
        // main engine's O(1) path; see DESIGN.md).
        std::string_view text = document.view();
        std::size_t start = text.find_first_not_of(" \t\n\r");
        if (start != std::string_view::npos) {
            sink.on_match(start);
        }
        return {};
    }
    std::optional<project::FilterGate> filter_gate;
    if (const query::FilterExpr* filter = query_.filter()) {
        filter_gate.emplace(*filter, PaddedView(document),
                            simd::kernels_for(simd::default_level()));
    }
    SurferHandler handler(query_, limits_, budget_, sink,
                          filter_gate.has_value() ? &*filter_gate : nullptr);
    EngineStatus sax_status = json::sax_parse(document.view(), handler);
    if (!handler.status().ok()) {
        return handler.status();
    }
    if (!sax_status.ok()) {
        return sax_status;
    }
    if (handler.root_open()) {
        // Input ended with containers still open.
        return {StatusCode::kUnbalancedStructure, document.size()};
    }
    return {};
}

}  // namespace descend
