#include "descend/baselines/surfer_engine.h"

#include <optional>
#include <vector>

#include "descend/json/sax.h"

namespace descend {
namespace {

class SurferHandler final : public json::SaxHandler {
public:
    SurferHandler(const automaton::CompiledQuery& query, MatchSink& sink)
        : query_(query),
          alphabet_(query.alphabet()),
          counting_(query.has_indices()),
          sink_(sink)
    {
        state_ = query_.initial_state();
    }

    void on_object_start(std::size_t offset) override { enter(offset, false); }
    void on_array_start(std::size_t offset) override { enter(offset, true); }

    void on_object_end(std::size_t) override { leave(); }
    void on_array_end(std::size_t) override { leave(); }

    void on_key(std::string_view raw_key, std::size_t) override
    {
        pending_key_ = raw_key;
    }

    void on_atom(std::string_view, std::size_t offset) override
    {
        if (stack_.empty()) {
            return;  // atomic root: only `$` matches, handled as preflight
        }
        int target = query_.transition(state_, take_symbol());
        if (query_.flags(target).accepting) {
            sink_.on_match(offset);
        }
    }

private:
    struct Frame {
        int state;
        bool is_array;
        std::uint64_t entries;
    };

    int take_symbol()
    {
        if (pending_key_.has_value()) {
            int symbol = alphabet_.label_symbol(*pending_key_);
            pending_key_.reset();
            return symbol;
        }
        if (!stack_.empty() && stack_.back().is_array) {
            std::uint64_t index = stack_.back().entries++;
            return counting_ ? alphabet_.index_symbol(index)
                             : alphabet_.other_symbol();
        }
        return alphabet_.other_symbol();
    }

    void enter(std::size_t offset, bool is_array)
    {
        int target = stack_.empty() ? state_ : query_.transition(state_, take_symbol());
        if (query_.flags(target).accepting) {
            sink_.on_match(offset);
        }
        stack_.push_back({state_, is_array, 0});
        state_ = target;
    }

    void leave()
    {
        if (stack_.empty()) {
            return;  // malformed input: stray closer
        }
        state_ = stack_.back().state;
        stack_.pop_back();
    }

    const automaton::CompiledQuery& query_;
    const automaton::Alphabet& alphabet_;
    bool counting_;
    MatchSink& sink_;
    int state_ = 0;
    std::optional<std::string_view> pending_key_;
    std::vector<Frame> stack_;
};

}  // namespace

void SurferEngine::run(const PaddedString& document, MatchSink& sink) const
{
    if (query_.root_accepting()) {
        std::string_view text = document.view();
        std::size_t start = text.find_first_not_of(" \t\n\r");
        if (start != std::string_view::npos) {
            sink.on_match(start);
        }
        return;
    }
    SurferHandler handler(query_, sink);
    json::sax_parse(document.view(), handler);
}

}  // namespace descend
