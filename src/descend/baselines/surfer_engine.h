/**
 * @file
 * The JsonSurfer-like baseline: streaming evaluation in the same
 * computational model as the paper's slow competitor — a scalar
 * byte-at-a-time SAX tokenizer, a classic full stack (one frame per open
 * container, paper Section 3.2's non-sparse alternative), and no SIMD or
 * skipping of any kind. Supports the full query fragment, including
 * descendants.
 */
#pragma once

#include "descend/automaton/compiled.h"
#include "descend/engine/api.h"

namespace descend {

class SurferEngine final : public JsonPathEngine {
public:
    /** @param budget run governance; polled at a fixed stride of SAX
     *  events (see util/budget.h). */
    explicit SurferEngine(automaton::CompiledQuery query, EngineLimits limits = {},
                          RunBudget budget = {})
        : query_(std::move(query)), limits_(limits), budget_(budget)
    {
    }

    static SurferEngine for_query(std::string_view query_text,
                                  EngineLimits limits = {},
                                  RunBudget budget = {})
    {
        return SurferEngine(automaton::CompiledQuery::compile(query_text), limits,
                            budget);
    }

    std::string name() const override { return "jsurfer"; }

    EngineStatus run(const PaddedString& document, MatchSink& sink) const override;

private:
    automaton::CompiledQuery query_;
    EngineLimits limits_;
    RunBudget budget_;
};

}  // namespace descend
