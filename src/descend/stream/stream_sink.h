/**
 * @file
 * Receivers for record-stream query results.
 *
 * The stream executor reports matches as (record_index, offset) pairs in
 * document order — record indices ascending, offsets ascending within a
 * record — regardless of how many worker threads produced them. Offsets
 * are relative to the record's span begin (the record's first content
 * byte); add RecordSpan::begin for an absolute stream offset.
 *
 * A record whose engine run fails contributes no matches: its (possibly
 * partial) match set is withheld and on_record_error() is called instead,
 * at the record's position in document order, with the per-record
 * EngineStatus (whose offset is likewise intra-record). This keeps the
 * delivered match stream byte-identical to a sequential per-record run.
 */
#pragma once

#include <cstddef>
#include <vector>

#include "descend/util/status.h"

namespace descend::stream {

/** Receiver of stream matches and per-record failures, in document order. */
class StreamSink {
public:
    virtual ~StreamSink() = default;

    /** @param offset byte offset of the match relative to the record's
     *  span begin. */
    virtual void on_match(std::size_t record_index, std::size_t offset) = 0;

    /** A record whose run failed; @p status.offset is intra-record. The
     *  default ignores the error (the aggregate StreamResult still counts
     *  it). */
    virtual void on_record_error(std::size_t record_index,
                                 const EngineStatus& status)
    {
        (void)record_index;
        (void)status;
    }
};

/** Counts matches and failed records — the benchmark sink. */
class CountingStreamSink final : public StreamSink {
public:
    void on_match(std::size_t, std::size_t) override { ++matches_; }
    void on_record_error(std::size_t, const EngineStatus&) override
    {
        ++failed_records_;
    }

    std::size_t matches() const noexcept { return matches_; }
    std::size_t failed_records() const noexcept { return failed_records_; }

private:
    std::size_t matches_ = 0;
    std::size_t failed_records_ = 0;
};

/** Collects matches and errors for verification and extraction. */
class CollectingStreamSink final : public StreamSink {
public:
    struct Match {
        std::size_t record = 0;
        std::size_t offset = 0;

        friend bool operator==(const Match& a, const Match& b) noexcept
        {
            return a.record == b.record && a.offset == b.offset;
        }
    };

    struct RecordError {
        std::size_t record = 0;
        EngineStatus status;

        friend bool operator==(const RecordError& a, const RecordError& b) noexcept
        {
            return a.record == b.record && a.status == b.status;
        }
    };

    void on_match(std::size_t record_index, std::size_t offset) override
    {
        matches_.push_back({record_index, offset});
    }

    void on_record_error(std::size_t record_index,
                         const EngineStatus& status) override
    {
        errors_.push_back({record_index, status});
    }

    const std::vector<Match>& matches() const noexcept { return matches_; }
    const std::vector<RecordError>& errors() const noexcept { return errors_; }

private:
    std::vector<Match> matches_;
    std::vector<RecordError> errors_;
};

}  // namespace descend::stream
