/**
 * @file
 * SIMD record splitter for NDJSON / JSON Lines streams.
 *
 * Finds record boundaries in a multi-record buffer: one pass of the quote
 * classifier per 64-byte block yields the in-string mask, and an eq_mask
 * for '\n' clipped by it gives exactly the newlines that terminate records
 * — a newline inside a string value never splits a record. Tolerated
 * deviations from strict JSON Lines: CRLF line endings, blank (whitespace-
 * only) lines, and a final record without a trailing newline. Each emitted
 * span is trimmed of surrounding whitespace, so span.begin is the record's
 * first content byte and intra-record match offsets are relative to it.
 *
 * Caveat shared with simdjson's parse_many: a record with an unterminated
 * string keeps the in-string mask set, so the splitter fuses it with the
 * following records into one span. The fused span then fails engine
 * validation (truncated string / trailing content) and is reported as a
 * single damaged record — corrupted input degrades to a diagnosable error,
 * never to silently misattributed matches.
 */
#pragma once

#include <cstddef>
#include <vector>

#include "descend/engine/padded_string.h"
#include "descend/simd/dispatch.h"

namespace descend::stream {

/** Half-open byte range [begin, end) of one record within the stream
 *  buffer, whitespace-trimmed on both sides (never empty). */
struct RecordSpan {
    std::size_t begin = 0;
    std::size_t end = 0;

    std::size_t size() const noexcept { return end - begin; }

    friend bool operator==(const RecordSpan& a, const RecordSpan& b) noexcept
    {
        return a.begin == b.begin && a.end == b.end;
    }
};

/**
 * Splits @p input into records. Record index == position in the returned
 * vector; blank lines are skipped and consume no index. Runs at classifier
 * speed (one quote classification + one eq_mask per block).
 */
std::vector<RecordSpan> split_records(PaddedView input,
                                      const simd::Kernels& kernels);

}  // namespace descend::stream
