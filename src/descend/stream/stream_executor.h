/**
 * @file
 * Parallel sharded execution of one compiled query over a record stream.
 *
 * The executor owns a single DescendEngine — the query is compiled once and
 * its automaton shared read-only by every worker (DescendEngine's const run
 * paths are stateless). Workers claim contiguous batches of records from an
 * atomic cursor and run the engine zero-copy over each record's PaddedView
 * subview of the one stream buffer; per-record results are buffered per
 * batch and replayed in document order through the StreamSink after the
 * workers join, so the sink observes exactly the sequential order and never
 * needs to be thread-safe.
 *
 * Failure semantics are deterministic for every thread count:
 *  - ErrorPolicy::kSkipRecord — every failed record is reported through
 *    on_record_error() and its matches withheld; all other records are
 *    processed normally.
 *  - ErrorPolicy::kFailFast — the stream stops at the *first* failing
 *    record in document order: workers maintain a monotonically decreasing
 *    shared error floor (the smallest failing record index seen) and stop
 *    claiming work beyond it, and the merge emits all matches before that
 *    record, then exactly one on_record_error() for it. Records after the
 *    floor are never reported, even if a worker already ran them.
 */
#pragma once

#include <array>
#include <cstddef>
#include <limits>
#include <vector>

#include "descend/automaton/compiled.h"
#include "descend/engine/main_engine.h"
#include "descend/engine/padded_string.h"
#include "descend/obs/counters.h"
#include "descend/obs/timing.h"
#include "descend/stream/record_splitter.h"
#include "descend/stream/stream_sink.h"
#include "descend/util/status.h"

namespace descend::stream {

/** What to do when a record's engine run reports a non-ok status. */
enum class ErrorPolicy : std::uint8_t {
    /** Report the record via on_record_error() and keep going. */
    kSkipRecord,
    /** Stop at the first failing record in document order. */
    kFailFast,
    /**
     * Degradation policy: re-run a failed record on the scalar SIMD tier
     * before reporting it, then behave like kSkipRecord with the scalar
     * outcome. A divergence between the tiers (a scalar re-run that
     * changes the status or succeeds) is tallied in
     * StreamResult::tier_divergences — it indicates a kernel-tier bug, and
     * the scalar verdict is the one reported. Governance failures
     * (deadline/cancel) are never retried: the scalar tier is slower, so
     * the re-run could only fail the same way later.
     */
    kRetryScalar,
};

/** Knobs of the stream executor. */
struct StreamOptions {
    /** Worker thread count; 0 means std::thread::hardware_concurrency().
     *  With one worker the executor runs inline, spawning no threads. */
    std::size_t threads = 0;
    /** Records per scheduling batch. Batches amortize the atomic claim and
     *  keep each worker's results contiguous in document order. */
    std::size_t records_per_batch = 64;
    ErrorPolicy policy = ErrorPolicy::kSkipRecord;
    /** Per-record engine configuration (SIMD level, skipping, limits). */
    EngineOptions engine;
    /**
     * Whole-stream governance (see util/budget.h). When the budget expires
     * or its CancelToken fires, the stream stops like a fail-fast floor at
     * the first record that did not finish in document order: every record
     * before it is reported normally, that record gets exactly one
     * synthesized on_record_error() with {kDeadlineExceeded|kCancelled, 0},
     * and everything after it is discarded — even records a worker had
     * already finished when the budget tripped. The result is a function
     * of *which records finished*, not of thread interleaving: a budget
     * that was already expired at run start yields the identical
     * StreamResult (floor 0) for every thread count. Active budgets are
     * threaded into each record's engine run, so in-flight records are
     * cut short cooperatively at batch-refill granularity.
     */
    RunBudget stream_budget;
    /**
     * Per-record deadline in milliseconds; 0 = none. Each record runs
     * under stream_budget tightened to now + record_budget_ms, so a slow
     * record fails itself (a regular record error, subject to `policy`)
     * without sinking the whole stream. When either this or stream_budget
     * is set, the stream governance replaces `engine.budget` for record
     * runs.
     */
    std::uint64_t record_budget_ms = 0;
};

/** Aggregate outcome of one stream run. */
struct StreamResult {
    static constexpr std::size_t kNone = std::numeric_limits<std::size_t>::max();

    /** Records found by the splitter (blank lines excluded). Under
     *  kFailFast, records after the failing one are counted here but were
     *  neither fully processed nor reported. */
    std::size_t records = 0;
    /** Matches delivered to the sink. */
    std::size_t matches = 0;
    /** Records reported through on_record_error() (at most 1 under
     *  kFailFast). */
    std::size_t failed_records = 0;
    /** Index of the first failing record in document order, kNone if all
     *  records succeeded. */
    std::size_t first_error_record = kNone;
    /** Status of that record (offset is intra-record). */
    EngineStatus first_error;
    /** Absolute byte offset of first_error_record's span start in the
     *  stream buffer, kNone when there was no error. The error's absolute
     *  stream position is first_error_span_begin + first_error.offset —
     *  what the CLI prints so a byte position in a multi-gigabyte stream
     *  can be seeked to directly. */
    std::size_t first_error_span_begin = kNone;
    /** Records re-run on the scalar tier (ErrorPolicy::kRetryScalar). */
    std::size_t retried_records = 0;
    /** Scalar re-runs whose outcome differed from the original tier's. */
    std::size_t tier_divergences = 0;
    /** True when the stream budget stopped the run before every record
     *  finished; the floor record's synthesized governance error is then
     *  counted in failed_records (and is first_error if nothing failed
     *  earlier). */
    bool budget_stopped = false;

    /** Failed records per status code, indexed by the StatusCode value.
     *  Unlike the obs registries below this is not gated: it rides the
     *  (rare) failure path only, and error triage should not require an
     *  instrumented build. */
    std::array<std::uint64_t, kStatusCodeCount> error_tally{};

    /** Per-shard obs registries merged after the workers join (empty when
     *  DESCEND_OBS is off). Counters reflect the work *performed*: under
     *  kFailFast a worker may have run records past the final error floor
     *  before the floor settled — their counters are included here even
     *  though their matches were discarded by the ordered replay. */
    obs::Counters counters;
    /** Merged per-record engine timings plus the stream's split phase. */
    obs::Timings timings;
    /** Sum of ceil(record_size / kBlockSize) over the records the engine
     *  actually ran (== all records except those beyond a fail-fast
     *  floor): the accounting invariant's right-hand side for streams.
     *  Zero when DESCEND_OBS is off. */
    std::size_t record_blocks = 0;

    bool ok() const noexcept { return failed_records == 0; }
};

/** Runs a compiled query over NDJSON streams; reusable across streams. */
class StreamExecutor {
public:
    explicit StreamExecutor(automaton::CompiledQuery query,
                            StreamOptions options = {})
        : engine_(std::move(query), options.engine), options_(options)
    {
    }

    /** Convenience: parse, compile and wrap a query. */
    static StreamExecutor for_query(std::string_view query_text,
                                    StreamOptions options = {})
    {
        return StreamExecutor(automaton::CompiledQuery::compile(query_text),
                              options);
    }

    /** Splits @p input into records and runs the query over each. */
    StreamResult run(PaddedView input, StreamSink& sink) const;

    /** Runs over records already split from @p input (spans index into it). */
    StreamResult run_records(PaddedView input,
                             const std::vector<RecordSpan>& records,
                             StreamSink& sink) const;

    const DescendEngine& engine() const noexcept { return engine_; }
    const StreamOptions& options() const noexcept { return options_; }

private:
    DescendEngine engine_;
    StreamOptions options_;
};

}  // namespace descend::stream
