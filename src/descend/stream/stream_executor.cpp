#include "descend/stream/stream_executor.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <utility>

#include "descend/engine/scratch.h"
#include "descend/fault/failpoints.h"

namespace descend::stream {
namespace {

constexpr std::size_t kNoError = StreamResult::kNone;

/** One record's buffered run outcome, produced by a worker. */
struct RecordOutcome {
    std::size_t record = 0;
    EngineStatus status;
    /** Intra-record match offsets; populated only when status.ok(), so a
     *  failed record's partial matches can never leak into the sink. */
    std::vector<std::size_t> offsets;
};

/**
 * Atomic fetch-min. The floor only ever decreases, which is what makes
 * fail-fast deterministic: a worker skips record r only while r > floor,
 * so every record below the *final* floor is guaranteed to have been
 * processed by someone.
 */
void lower_floor(std::atomic<std::size_t>& floor, std::size_t candidate)
{
    std::size_t current = floor.load(std::memory_order_relaxed);
    while (candidate < current &&
           !floor.compare_exchange_weak(current, candidate,
                                        std::memory_order_relaxed)) {
    }
}

}  // namespace

StreamResult StreamExecutor::run(PaddedView input, StreamSink& sink) const
{
    const simd::Kernels& kernels = simd::kernels_for(options_.engine.simd);
    obs::PhaseStopwatch watch;
    std::vector<RecordSpan> records = split_records(input, kernels);
    std::uint64_t split_ns = watch.elapsed_ns();
    StreamResult result = run_records(input, records, sink);
    result.timings.add(obs::Phase::kSplit, split_ns);
    return result;
}

StreamResult StreamExecutor::run_records(PaddedView input,
                                         const std::vector<RecordSpan>& records,
                                         StreamSink& sink) const
{
    StreamResult result;
    result.records = records.size();
    if (records.empty()) {
        return result;
    }

    const std::size_t batch_size =
        options_.records_per_batch > 0 ? options_.records_per_batch : 1;
    const std::size_t num_batches =
        (records.size() + batch_size - 1) / batch_size;
    std::size_t workers = options_.threads != 0
                              ? options_.threads
                              : std::thread::hardware_concurrency();
    workers = std::min(std::max<std::size_t>(workers, 1), num_batches);

    const bool fail_fast = options_.policy == ErrorPolicy::kFailFast;
    const bool retry_scalar = options_.policy == ErrorPolicy::kRetryScalar;
    const RunBudget& stream_budget = options_.stream_budget;
    const bool stream_governed = stream_budget.active();
    const bool record_governed = options_.record_budget_ms > 0;
    std::vector<std::vector<RecordOutcome>> outcomes(num_batches);
    std::atomic<std::size_t> next_batch{0};
    std::atomic<std::size_t> error_floor{kNoError};
    // First record in document order that did not finish because the
    // stream budget tripped. Monotone like error_floor: every record below
    // the final value finished, so the replay below is deterministic in
    // the set of finished records, not in thread interleaving.
    std::atomic<std::size_t> budget_floor{kNoError};

    // Per-shard obs aggregation: each worker owns one registry (no
    // synchronization in the hot path) and the merge below folds them into
    // the stream-level report after the join. Counters/timings are empty
    // when the gate is off; the retry tallies ride the rare failure path
    // and are ungated.
    struct ShardObs {
        obs::Counters counters;
        obs::Timings timings;
        std::size_t record_blocks = 0;
        std::size_t retried = 0;
        std::size_t diverged = 0;
    };
    std::vector<ShardObs> shard_obs(workers);

    auto worker = [&](std::size_t shard) {
        if constexpr (fault::kEnabled) {
            // Deterministic worker stall (payload = milliseconds): lets
            // tests pin down budget floors under scheduling skew.
            fault::maybe_stall(fault::Site::kWorkerStartup);
        }
        ShardObs& local = shard_obs[shard];
        // Worker-lifetime scratch: the match collectors keep their buffer
        // capacity across every record this worker runs, so the steady
        // state allocates only for records that actually match (the copy
        // into the outcome below).
        RunScratch scratch;
        // Scalar-tier engine for kRetryScalar, built on first use (the
        // failure path): same query and options, scalar kernels.
        std::unique_ptr<DescendEngine> scalar_engine;
        for (;;) {
            std::size_t batch = next_batch.fetch_add(1, std::memory_order_relaxed);
            if (batch >= num_batches) {
                break;
            }
            std::size_t first = batch * batch_size;
            std::size_t last = std::min(first + batch_size, records.size());
            if (stream_governed &&
                stream_budget.exceeded() != StatusCode::kOk) {
                // Budget tripped between batches: everything from this
                // batch on is unfinished. Batches are claimed in
                // ascending order, so `first` bounds every unclaimed
                // record from below.
                lower_floor(budget_floor, first);
                break;
            }
            if (fail_fast && first > error_floor.load(std::memory_order_relaxed)) {
                continue;
            }
            std::vector<RecordOutcome>& out = outcomes[batch];
            out.reserve(last - first);
            bool budget_tripped = false;
            for (std::size_t r = first; r < last; ++r) {
                if (fail_fast && r > error_floor.load(std::memory_order_relaxed)) {
                    break;
                }
                if (stream_governed &&
                    stream_budget.exceeded() != StatusCode::kOk) {
                    lower_floor(budget_floor, r);
                    budget_tripped = true;
                    break;
                }
                const RecordSpan& span = records[r];
                scratch.matches.reset();
                RecordOutcome outcome;
                outcome.record = r;
                // Active stream governance replaces the engine's own
                // budget for record runs; a per-record deadline nests
                // inside the stream budget.
                RunBudget record_budget = stream_budget;
                if (record_governed) {
                    record_budget = stream_budget.tightened(
                        RunBudget::Clock::now() +
                        std::chrono::milliseconds(options_.record_budget_ms));
                }
                RunStats run_stats =
                    stream_governed || record_governed
                        ? engine_.run_with_stats(
                              input.subview(span.begin, span.size()),
                              scratch.matches, record_budget)
                        : engine_.run_with_stats(
                              input.subview(span.begin, span.size()),
                              scratch.matches);
                outcome.status = run_stats.status;
                if constexpr (obs::kEnabled) {
                    local.counters.merge(run_stats.counters);
                    local.timings.merge(run_stats.timings);
                    local.record_blocks +=
                        (span.size() + simd::kBlockSize - 1) / simd::kBlockSize;
                }
                if (!outcome.status.ok() && outcome.status.is_governance() &&
                    stream_governed &&
                    stream_budget.exceeded() != StatusCode::kOk) {
                    // The *stream* budget (not a per-record one) cut this
                    // run short: the record is unfinished, not failed.
                    lower_floor(budget_floor, r);
                    budget_tripped = true;
                    break;
                }
                if (!outcome.status.ok() && retry_scalar &&
                    !outcome.status.is_governance()) {
                    // Degradation re-run on the scalar tier; the scalar
                    // verdict (including its matches) replaces the
                    // original.
                    if (scalar_engine == nullptr) {
                        EngineOptions scalar_options = options_.engine;
                        scalar_options.simd = simd::Level::scalar;
                        scalar_engine = std::make_unique<DescendEngine>(
                            automaton::CompiledQuery::compile(
                                engine_.compiled_query().source()),
                            scalar_options);
                    }
                    scratch.retry_matches.reset();
                    RunStats scalar_stats =
                        stream_governed || record_governed
                            ? scalar_engine->run_with_stats(
                                  input.subview(span.begin, span.size()),
                                  scratch.retry_matches, record_budget)
                            : scalar_engine->run_with_stats(
                                  input.subview(span.begin, span.size()),
                                  scratch.retry_matches);
                    ++local.retried;
                    local.counters.add(obs::Counter::kScalarRetries);
                    if (scalar_stats.status.code != outcome.status.code ||
                        scalar_stats.status.offset != outcome.status.offset) {
                        ++local.diverged;
                        local.counters.add(obs::Counter::kTierDivergences);
                    }
                    outcome.status = scalar_stats.status;
                    if (outcome.status.ok()) {
                        outcome.offsets.assign(
                            scratch.retry_matches.offsets().begin(),
                            scratch.retry_matches.offsets().end());
                    }
                } else if (outcome.status.ok()) {
                    outcome.offsets.assign(scratch.matches.offsets().begin(),
                                           scratch.matches.offsets().end());
                }
                if (!outcome.status.ok() && fail_fast) {
                    lower_floor(error_floor, r);
                }
                bool failed = !outcome.status.ok();
                out.push_back(std::move(outcome));
                if (fail_fast && failed) {
                    break;
                }
            }
            if (budget_tripped) {
                break;
            }
        }
    };

    if (workers <= 1) {
        worker(0);
    } else {
        std::vector<std::thread> pool;
        pool.reserve(workers);
        for (std::size_t i = 0; i < workers; ++i) {
            pool.emplace_back(worker, i);
        }
        for (std::thread& thread : pool) {
            thread.join();
        }
    }
    for (const ShardObs& shard : shard_obs) {
        result.counters.merge(shard.counters);
        result.timings.merge(shard.timings);
        result.record_blocks += shard.record_blocks;
        result.retried_records += shard.retried;
        result.tier_divergences += shard.diverged;
    }

    // Ordered replay: batches ascend and records ascend within each batch,
    // so a single pass delivers document order to the (single-threaded)
    // sink. Under fail-fast, everything past the floor is discarded — the
    // floor record itself is the stream's one reported error. The budget
    // floor acts the same way, except its floor record has no outcome of
    // its own (it never finished), so its error is synthesized after the
    // replay.
    const std::size_t floor = error_floor.load(std::memory_order_relaxed);
    const std::size_t bfloor = budget_floor.load(std::memory_order_relaxed);
    bool stopped = false;
    bool error_stopped = false;
    for (std::size_t batch = 0; batch < num_batches && !stopped; ++batch) {
        for (const RecordOutcome& outcome : outcomes[batch]) {
            if (outcome.record >= bfloor) {
                // Finished after the budget floor: discarded, like a
                // fail-fast record past the error floor.
                stopped = true;
                break;
            }
            if (fail_fast && outcome.record > floor) {
                stopped = true;
                error_stopped = true;
                break;
            }
            if (outcome.status.ok()) {
                for (std::size_t offset : outcome.offsets) {
                    sink.on_match(outcome.record, offset);
                }
                result.matches += outcome.offsets.size();
            } else {
                sink.on_record_error(outcome.record, outcome.status);
                ++result.failed_records;
                ++result.error_tally[static_cast<std::size_t>(outcome.status.code)];
                if (result.first_error_record == StreamResult::kNone) {
                    result.first_error_record = outcome.record;
                    result.first_error = outcome.status;
                    result.first_error_span_begin =
                        records[outcome.record].begin;
                }
                if (fail_fast) {
                    stopped = true;
                    error_stopped = true;
                    break;
                }
            }
        }
    }
    if (bfloor != kNoError && !error_stopped) {
        // The stream budget stopped the run: synthesize the floor record's
        // governance error. Offset 0 — none of the record was conclusively
        // processed.
        StatusCode code = stream_budget.exceeded();
        if (code == StatusCode::kOk) {
            // The deadline passed mid-run but a cancel token was since
            // reset; the floor is still authoritative.
            code = StatusCode::kDeadlineExceeded;
        }
        EngineStatus synthesized{code, 0};
        result.budget_stopped = true;
        sink.on_record_error(bfloor, synthesized);
        ++result.failed_records;
        ++result.error_tally[static_cast<std::size_t>(code)];
        if (result.first_error_record == StreamResult::kNone) {
            result.first_error_record = bfloor;
            result.first_error = synthesized;
            result.first_error_span_begin = records[bfloor].begin;
        }
    }
    return result;
}

}  // namespace descend::stream
