#include "descend/stream/stream_executor.h"

#include <algorithm>
#include <atomic>
#include <thread>
#include <utility>

namespace descend::stream {
namespace {

constexpr std::size_t kNoError = StreamResult::kNone;

/** One record's buffered run outcome, produced by a worker. */
struct RecordOutcome {
    std::size_t record = 0;
    EngineStatus status;
    /** Intra-record match offsets; populated only when status.ok(), so a
     *  failed record's partial matches can never leak into the sink. */
    std::vector<std::size_t> offsets;
};

/**
 * Atomic fetch-min. The floor only ever decreases, which is what makes
 * fail-fast deterministic: a worker skips record r only while r > floor,
 * so every record below the *final* floor is guaranteed to have been
 * processed by someone.
 */
void lower_floor(std::atomic<std::size_t>& floor, std::size_t candidate)
{
    std::size_t current = floor.load(std::memory_order_relaxed);
    while (candidate < current &&
           !floor.compare_exchange_weak(current, candidate,
                                        std::memory_order_relaxed)) {
    }
}

}  // namespace

StreamResult StreamExecutor::run(PaddedView input, StreamSink& sink) const
{
    const simd::Kernels& kernels = simd::kernels_for(options_.engine.simd);
    obs::PhaseStopwatch watch;
    std::vector<RecordSpan> records = split_records(input, kernels);
    std::uint64_t split_ns = watch.elapsed_ns();
    StreamResult result = run_records(input, records, sink);
    result.timings.add(obs::Phase::kSplit, split_ns);
    return result;
}

StreamResult StreamExecutor::run_records(PaddedView input,
                                         const std::vector<RecordSpan>& records,
                                         StreamSink& sink) const
{
    StreamResult result;
    result.records = records.size();
    if (records.empty()) {
        return result;
    }

    const std::size_t batch_size =
        options_.records_per_batch > 0 ? options_.records_per_batch : 1;
    const std::size_t num_batches =
        (records.size() + batch_size - 1) / batch_size;
    std::size_t workers = options_.threads != 0
                              ? options_.threads
                              : std::thread::hardware_concurrency();
    workers = std::min(std::max<std::size_t>(workers, 1), num_batches);

    const bool fail_fast = options_.policy == ErrorPolicy::kFailFast;
    std::vector<std::vector<RecordOutcome>> outcomes(num_batches);
    std::atomic<std::size_t> next_batch{0};
    std::atomic<std::size_t> error_floor{kNoError};

    // Per-shard obs aggregation: each worker owns one registry (no
    // synchronization in the hot path) and the merge below folds them into
    // the stream-level report after the join. All empty when the gate is
    // off — run_with_stats then degenerates to run().
    struct ShardObs {
        obs::Counters counters;
        obs::Timings timings;
        std::size_t record_blocks = 0;
    };
    std::vector<ShardObs> shard_obs(workers);

    auto worker = [&](std::size_t shard) {
        ShardObs& local = shard_obs[shard];
        for (;;) {
            std::size_t batch = next_batch.fetch_add(1, std::memory_order_relaxed);
            if (batch >= num_batches) {
                break;
            }
            std::size_t first = batch * batch_size;
            std::size_t last = std::min(first + batch_size, records.size());
            if (fail_fast && first > error_floor.load(std::memory_order_relaxed)) {
                continue;
            }
            std::vector<RecordOutcome>& out = outcomes[batch];
            out.reserve(last - first);
            for (std::size_t r = first; r < last; ++r) {
                if (fail_fast && r > error_floor.load(std::memory_order_relaxed)) {
                    break;
                }
                const RecordSpan& span = records[r];
                OffsetSink collector;
                RecordOutcome outcome;
                outcome.record = r;
                RunStats run_stats = engine_.run_with_stats(
                    input.subview(span.begin, span.size()), collector);
                outcome.status = run_stats.status;
                if constexpr (obs::kEnabled) {
                    local.counters.merge(run_stats.counters);
                    local.timings.merge(run_stats.timings);
                    local.record_blocks +=
                        (span.size() + simd::kBlockSize - 1) / simd::kBlockSize;
                }
                if (outcome.status.ok()) {
                    outcome.offsets = collector.take_offsets();
                } else if (fail_fast) {
                    lower_floor(error_floor, r);
                }
                bool failed = !outcome.status.ok();
                out.push_back(std::move(outcome));
                if (fail_fast && failed) {
                    break;
                }
            }
        }
    };

    if (workers <= 1) {
        worker(0);
    } else {
        std::vector<std::thread> pool;
        pool.reserve(workers);
        for (std::size_t i = 0; i < workers; ++i) {
            pool.emplace_back(worker, i);
        }
        for (std::thread& thread : pool) {
            thread.join();
        }
    }
    for (const ShardObs& shard : shard_obs) {
        result.counters.merge(shard.counters);
        result.timings.merge(shard.timings);
        result.record_blocks += shard.record_blocks;
    }

    // Ordered replay: batches ascend and records ascend within each batch,
    // so a single pass delivers document order to the (single-threaded)
    // sink. Under fail-fast, everything past the floor is discarded — the
    // floor record itself is the stream's one reported error.
    const std::size_t floor = error_floor.load(std::memory_order_relaxed);
    bool stopped = false;
    for (std::size_t batch = 0; batch < num_batches && !stopped; ++batch) {
        for (const RecordOutcome& outcome : outcomes[batch]) {
            if (fail_fast && outcome.record > floor) {
                stopped = true;
                break;
            }
            if (outcome.status.ok()) {
                for (std::size_t offset : outcome.offsets) {
                    sink.on_match(outcome.record, offset);
                }
                result.matches += outcome.offsets.size();
            } else {
                sink.on_record_error(outcome.record, outcome.status);
                ++result.failed_records;
                ++result.error_tally[static_cast<std::size_t>(outcome.status.code)];
                if (result.first_error_record == StreamResult::kNone) {
                    result.first_error_record = outcome.record;
                    result.first_error = outcome.status;
                }
                if (fail_fast) {
                    stopped = true;
                    break;
                }
            }
        }
    }
    return result;
}

}  // namespace descend::stream
