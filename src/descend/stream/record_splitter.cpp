#include "descend/stream/record_splitter.h"

#include "descend/classify/quote_classifier.h"
#include "descend/util/bits.h"
#include "descend/util/chars.h"

namespace descend::stream {
namespace {

using chars::is_ws_byte;

/** Trims [begin, end) and appends it when non-blank. */
void append_record(const std::uint8_t* data, std::size_t begin, std::size_t end,
                   std::vector<RecordSpan>& records)
{
    while (begin < end && is_ws_byte(data[begin])) {
        ++begin;
    }
    while (end > begin && is_ws_byte(data[end - 1])) {
        --end;
    }
    if (begin < end) {
        records.push_back({begin, end});
    }
}

}  // namespace

std::vector<RecordSpan> split_records(PaddedView input,
                                      const simd::Kernels& kernels)
{
    std::vector<RecordSpan> records;
    const std::uint8_t* data = input.data();
    std::size_t size = input.size();
    classify::QuoteClassifier quotes(kernels);
    std::size_t start = 0;
    for (std::size_t block = 0; block < size; block += simd::kBlockSize) {
        classify::QuoteMasks masks = quotes.classify(data + block);
        std::uint64_t valid =
            size - block >= simd::kBlockSize
                ? ~std::uint64_t{0}
                : bits::mask_below(static_cast<int>(size - block));
        // Separators: out-of-string LF and CR alike. A CRLF pair splits at
        // both bytes, but the middle segment between them is empty and
        // append_record drops blank segments, so the pair still yields a
        // single record boundary; a lone CR (classic-Mac / curl -w streams)
        // now separates records instead of fusing its neighbours.
        std::uint64_t newlines = (kernels.eq_mask(data + block, '\n') |
                                  kernels.eq_mask(data + block, '\r')) &
                                 ~masks.in_string & valid;
        for (bits::BitIter it(newlines); !it.done(); it.advance()) {
            std::size_t pos = block + static_cast<std::size_t>(it.index());
            append_record(data, start, pos, records);
            start = pos + 1;
        }
    }
    // Final record without a trailing newline (or with the stream's last
    // string left open — then this is the fused damaged tail).
    append_record(data, start, size, records);
    return records;
}

}  // namespace descend::stream
