#include "descend/engine/validation.h"

#include "descend/util/chars.h"

namespace descend {

using chars::is_ws_byte;

EngineStatus preflight_document(PaddedView document, const EngineLimits& limits)
{
    if (document.size() > limits.max_document_size) {
        return {StatusCode::kSizeLimit, limits.max_document_size};
    }
    const std::uint8_t* data = document.data();
    std::size_t size = document.size();
    if (size >= 3 && data[0] == 0xef && data[1] == 0xbb && data[2] == 0xbf) {
        // A UTF-8 byte-order mark is not valid JSON (RFC 8259 §8.1).
        return {StatusCode::kInvalidDocument, 0};
    }
    std::size_t first = 0;
    while (first < size && is_ws_byte(data[first])) {
        ++first;
    }
    if (first == size) {
        return {StatusCode::kEmptyDocument, size};
    }
    return {};
}

}  // namespace descend
