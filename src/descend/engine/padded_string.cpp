#include "descend/engine/padded_string.h"

#include <cassert>
#include <cstring>
#include <fstream>
#include <new>

#include "descend/simd/dispatch.h"
#include "descend/util/errors.h"

namespace descend {
namespace {

constexpr std::size_t kAlignment = 64;

// The classifiers read whole blocks: the final block may extend up to
// kBlockSize - 1 bytes past size(), and the quote classifier's
// escape-carry looks one byte further. Demand a full extra block of slack
// on top so no kernel read can ever leave the allocation.
static_assert(PaddedString::kPadding >= 2 * simd::kBlockSize,
              "padding must cover at least two SIMD blocks past the contents");

/** Debug guard for the classifiers' core assumption: everything between
 *  size() and size() + kPadding is inert whitespace. */
void assert_padding(const std::uint8_t* data, std::size_t logical_size)
{
#ifndef NDEBUG
    for (std::size_t i = 0; i < PaddedString::kPadding; ++i) {
        assert(data[logical_size + i] == ' ' &&
               "padded buffer tail must be spaces");
    }
#else
    (void)data;
    (void)logical_size;
#endif
}

std::uint8_t* allocate_padded(std::size_t logical_size)
{
    std::size_t total = logical_size + PaddedString::kPadding;
    auto* buffer = static_cast<std::uint8_t*>(
        ::operator new(total, std::align_val_t(kAlignment)));
    // Space padding keeps every classifier inert past the logical end.
    std::memset(buffer + logical_size, ' ', PaddedString::kPadding);
    return buffer;
}

}  // namespace

PaddedString::PaddedString(std::string_view contents) : size_(contents.size())
{
    data_ = allocate_padded(size_);
    std::memcpy(data_, contents.data(), size_);
    assert_padding(data_, size_);
}

PaddedString PaddedString::from_file(const std::string& path)
{
    std::ifstream file(path, std::ios::binary | std::ios::ate);
    if (!file) {
        throw Error("cannot open file: " + path);
    }
    std::streamsize size = file.tellg();
    file.seekg(0);
    PaddedString result;
    result.size_ = static_cast<std::size_t>(size);
    result.data_ = allocate_padded(result.size_);
    if (!file.read(reinterpret_cast<char*>(result.data_), size)) {
        throw Error("cannot read file: " + path);
    }
    assert_padding(result.data_, result.size_);
    return result;
}

PaddedString::PaddedString(PaddedString&& other) noexcept
    : data_(other.data_), size_(other.size_)
{
    other.data_ = nullptr;
    other.size_ = 0;
}

PaddedString& PaddedString::operator=(PaddedString&& other) noexcept
{
    if (this != &other) {
        release();
        data_ = other.data_;
        size_ = other.size_;
        other.data_ = nullptr;
        other.size_ = 0;
    }
    return *this;
}

PaddedString::~PaddedString()
{
    release();
}

void PaddedString::release() noexcept
{
    if (data_ != nullptr) {
        ::operator delete(data_, std::align_val_t(kAlignment));
        data_ = nullptr;
    }
}

}  // namespace descend
