#include "descend/engine/padded_string.h"

#include <cassert>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <new>

#include "descend/fault/failpoints.h"
#include "descend/simd/dispatch.h"
#include "descend/util/errors.h"

#if defined(__unix__) || defined(__APPLE__)
#define DESCEND_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace descend {
namespace {

constexpr std::size_t kAlignment = 64;

// The batched classifier reads whole kBatchSize batches: the last refill
// starts at the final (possibly partial) block, whose start offset is at
// most size() - 1, so the furthest read ends strictly below
// size() + kBatchSize. Demand a full batch of padding so no kernel read
// can ever leave the allocation.
static_assert(PaddedString::kPadding >= simd::kBatchSize,
              "padding must cover one classification batch past the contents");

/** Debug guard for the classifiers' core assumption: everything between
 *  size() and size() + kPadding is inert whitespace. */
void assert_padding(const std::uint8_t* data, std::size_t logical_size)
{
#ifndef NDEBUG
    for (std::size_t i = 0; i < PaddedString::kPadding; ++i) {
        assert(data[logical_size + i] == ' ' &&
               "padded buffer tail must be spaces");
    }
#else
    (void)data;
    (void)logical_size;
#endif
}

std::uint8_t* allocate_padded(std::size_t logical_size)
{
    std::size_t total = logical_size + PaddedString::kPadding;
    auto* buffer = static_cast<std::uint8_t*>(
        ::operator new(total, std::align_val_t(kAlignment)));
    // Space padding keeps every classifier inert past the logical end.
    std::memset(buffer + logical_size, ' ', PaddedString::kPadding);
    return buffer;
}

}  // namespace

std::size_t PaddedString::mmap_threshold()
{
    // Re-read per call (from_file is never hot): a test harness sets
    // DESCEND_MMAP_THRESHOLD to steer small fixtures onto the mmap path,
    // and per-call reads keep such tests order-independent.
    const char* override_text = std::getenv("DESCEND_MMAP_THRESHOLD");
    if (override_text == nullptr || *override_text == '\0') {
        return kMmapThreshold;
    }
    char* end = nullptr;
    unsigned long long value = std::strtoull(override_text, &end, 10);
    if (end == override_text || *end != '\0') {
        return kMmapThreshold;
    }
    return static_cast<std::size_t>(value);
}

PaddedString::PaddedString(std::string_view contents) : size_(contents.size())
{
    data_ = allocate_padded(size_);
    std::memcpy(data_, contents.data(), size_);
    assert_padding(data_, size_);
}

PaddedString PaddedString::from_file(const std::string& path)
{
    // Failpoints (no-ops unless built with DESCEND_FAULT=ON): force the
    // open failure and the mmap-degraded portable path deterministically.
    if constexpr (fault::kEnabled) {
        if (fault::should_fire(fault::Site::kFromFileOpen)) {
            throw Error("cannot open file: " + path);
        }
    }
#ifdef DESCEND_HAVE_MMAP
    // mmap fast path for large regular files: map the file copy-on-write
    // inside an anonymous reservation that supplies readable padding pages,
    // then write the space padding. The memset dirties only the file's
    // final partial page (copy-on-write) plus the first anonymous page, so
    // resident memory stays one file's worth instead of two.
    int fd = ::open(path.c_str(), O_RDONLY);
    if constexpr (fault::kEnabled) {
        // Simulated mmap failure: exercise the portable fall-through.
        if (fd >= 0 && fault::should_fire(fault::Site::kFromFileMmap)) {
            ::close(fd);
            fd = -1;
        }
    }
    if (fd >= 0) {
        struct stat st{};
        // st_size > 0: a zero-length file must take the portable path —
        // mmap with length 0 fails with EINVAL, and mapping the one
        // anonymous padding page for an empty document buys nothing.
        bool fits = ::fstat(fd, &st) == 0 && S_ISREG(st.st_mode) &&
                    st.st_size > 0 &&
                    static_cast<std::size_t>(st.st_size) >= mmap_threshold();
        if (fits) {
            auto size = static_cast<std::size_t>(st.st_size);
            auto page = static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
            std::size_t file_span = (size + page - 1) / page * page;
            // One extra page guarantees >= kPadding (one batch, 512 B; a
            // POSIX page is at least 4 KiB) readable bytes past the logical
            // end even when the file is page-aligned.
            std::size_t total = file_span + page;
            void* base = ::mmap(nullptr, total, PROT_READ | PROT_WRITE,
                                MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
            if (base != MAP_FAILED) {
                void* mapped = ::mmap(base, file_span, PROT_READ | PROT_WRITE,
                                      MAP_PRIVATE | MAP_FIXED, fd, 0);
                if (mapped != MAP_FAILED) {
                    ::close(fd);
                    auto* bytes = static_cast<std::uint8_t*>(base);
                    std::memset(bytes + size, ' ', kPadding);
                    // Re-seal everything below the padding; the tail page(s)
                    // stay writable, which is harmless (they are private).
                    std::size_t sealed = size / page * page;
                    if (sealed > 0) {
                        ::mprotect(base, sealed, PROT_READ);
                    }
                    PaddedString result;
                    result.data_ = bytes;
                    result.size_ = size;
                    result.mapped_bytes_ = total;
                    assert_padding(result.data_, result.size_);
                    return result;
                }
                ::munmap(base, total);
            }
            // Fall through to the portable path on any mmap failure.
        }
        ::close(fd);
    }
#endif
    std::ifstream file(path, std::ios::binary | std::ios::ate);
    if (!file) {
        throw Error("cannot open file: " + path);
    }
    std::streamsize size = file.tellg();
    file.seekg(0);
    PaddedString result;
    result.size_ = static_cast<std::size_t>(size);
    result.data_ = allocate_padded(result.size_);
    bool read_ok = static_cast<bool>(
        file.read(reinterpret_cast<char*>(result.data_), size));
    if constexpr (fault::kEnabled) {
        // Simulated short read: the stream succeeded but the failpoint
        // forces the error path a truncated device read would take.
        if (read_ok && fault::should_fire(fault::Site::kFromFileRead)) {
            read_ok = false;
        }
    }
    if (!read_ok) {
        throw Error("cannot read file: " + path);
    }
    assert_padding(result.data_, result.size_);
    return result;
}

PaddedString::PaddedString(PaddedString&& other) noexcept
    : data_(other.data_), size_(other.size_), mapped_bytes_(other.mapped_bytes_)
{
    other.data_ = nullptr;
    other.size_ = 0;
    other.mapped_bytes_ = 0;
}

PaddedString& PaddedString::operator=(PaddedString&& other) noexcept
{
    if (this != &other) {
        release();
        data_ = other.data_;
        size_ = other.size_;
        mapped_bytes_ = other.mapped_bytes_;
        other.data_ = nullptr;
        other.size_ = 0;
        other.mapped_bytes_ = 0;
    }
    return *this;
}

PaddedString::~PaddedString()
{
    release();
}

void PaddedString::release() noexcept
{
    if (data_ == nullptr) {
        return;
    }
#ifdef DESCEND_HAVE_MMAP
    if (mapped_bytes_ != 0) {
        ::munmap(data_, mapped_bytes_);
        data_ = nullptr;
        mapped_bytes_ = 0;
        return;
    }
#endif
    ::operator delete(data_, std::align_val_t(kAlignment));
    data_ = nullptr;
}

}  // namespace descend
