#include "descend/engine/structural_iterator.h"

#include <cassert>
#include <cstring>

#include "descend/util/bits.h"
#include "descend/util/chars.h"

namespace descend {

using chars::is_ws_byte;

StructuralIterator::StructuralIterator(PaddedView input,
                                       const simd::Kernels& kernels,
                                       StructuralValidator* validator,
                                       std::size_t max_skip_depth,
                                       obs::BlockAccountant* accountant,
                                       const RunBudget* budget)
    : data_(input.data()),
      size_(input.size()),
      end_((input.size() + simd::kBlockSize - 1) / simd::kBlockSize * simd::kBlockSize),
      blocks_(input.data(), kernels,
              accountant == nullptr ? nullptr : accountant->counters(), budget),
      validator_(validator),
      accountant_(accountant),
      max_skip_depth_(max_skip_depth)
{
    if (end_ > 0) {
        classify_block(/*with_structural=*/true);
    }
}

void StructuralIterator::fail(StatusCode code, std::size_t offset)
{
    if (status_.ok()) {
        status_ = {code, offset};
    }
    // Park at end of input: struct_mask_ stays empty, next() reports
    // kNone, and the engine observes status() in its end-of-input path.
    block_start_ = end_;
    struct_mask_ = 0;
    in_string_ = 0;
}

std::uint64_t StructuralIterator::block_valid_mask() const noexcept
{
    // Quote and escape analysis are strictly left-to-right within a block,
    // so bits below the end bound are correct no matter what the tail
    // bytes hold; clipping the masks is all slice support needs.
    std::size_t remaining = size_ - block_start_;
    return remaining >= simd::kBlockSize
               ? ~std::uint64_t{0}
               : bits::mask_below(static_cast<int>(remaining));
}

std::uint64_t StructuralIterator::compose_structural(
    const simd::BlockMasks& masks) const noexcept
{
    std::uint64_t composed = masks.open_braces | masks.close_braces |
                             masks.open_brackets | masks.close_brackets;
    if (commas_on_) {
        composed |= masks.commas;
    }
    if (colons_on_) {
        composed |= masks.colons;
    }
    return composed;
}

void StructuralIterator::classify_block(bool with_structural)
{
    const simd::BlockMasks& masks = blocks_.masks(block_start_);
    if (!blocks_.interrupt().ok()) {
        // A refill latched a budget violation (or an armed failpoint):
        // park exactly like malformed input — validator accounting stops
        // here too, which is fine because a non-ok status means the
        // structural verdict is never consulted.
        fail(blocks_.interrupt().code, blocks_.interrupt().offset);
        return;
    }
    block_entry_quote_state_ = classify::BatchedBlockStream::entry_state(masks);
    std::uint64_t valid = block_valid_mask();
    in_string_ = masks.in_string & valid;
    unescaped_quotes_ = masks.unescaped_quotes & valid;
    if (validator_ != nullptr) {
        validator_->account(masks, block_start_, in_string_, valid);
    }
    if (accountant_ != nullptr) {
        accountant_->account(block_start_);
    }
    struct_mask_ =
        with_structural ? (compose_structural(masks) & ~in_string_ & valid) : 0;
}

bool StructuralIterator::advance_block(bool with_structural)
{
    block_start_ += simd::kBlockSize;
    floor_ = 0;
    if (block_start_ >= end_) {
        block_start_ = end_;
        struct_mask_ = 0;
        // End of input inside a string: nothing within the bound can close
        // it, so the final string is unterminated. The last in-bound
        // in-string bit of the previous block is exactly "still open"
        // (opening quotes are in-string inclusive, closing exclusive);
        // for block-aligned input that is the block's top bit, which
        // equals the quote carry.
        std::size_t tail = size_ % simd::kBlockSize;
        int last_bit = tail == 0 ? 63 : static_cast<int>(tail) - 1;
        bool open_at_end = ((in_string_ >> last_bit) & 1) != 0;
        in_string_ = 0;
        if (open_at_end) {
            fail(StatusCode::kTruncatedString, size_);
        }
        return false;
    }
    classify_block(with_structural);
    // classify_block may have parked the iterator (budget interrupt): the
    // parked position is end_, which callers must observe as exhaustion —
    // a seek() or skip continuing past a park would underflow its floor.
    return block_start_ < end_;
}

StructuralIterator::Event StructuralIterator::event_at(int bit) const
{
    std::size_t pos = block_start_ + static_cast<std::size_t>(bit);
    std::uint8_t byte = data_[pos];
    Kind kind;
    switch (byte) {
        case classify::kOpenBrace:
        case classify::kOpenBracket: kind = Kind::kOpening; break;
        case classify::kCloseBrace:
        case classify::kCloseBracket: kind = Kind::kClosing; break;
        case classify::kColon: kind = Kind::kColon; break;
        default: kind = Kind::kComma; break;
    }
    return {kind, byte, pos};
}

StructuralIterator::Event StructuralIterator::next()
{
    while (struct_mask_ == 0) {
        if (block_start_ >= end_ || !advance_block(/*with_structural=*/true)) {
            return {Kind::kNone, 0, size_};
        }
    }
    int bit = bits::trailing_zeros(struct_mask_);
    struct_mask_ = bits::clear_lowest_bit(struct_mask_);
    floor_ = bit + 1;
    return event_at(bit);
}

StructuralIterator::Event StructuralIterator::peek()
{
    while (struct_mask_ == 0) {
        if (block_start_ >= end_ || !advance_block(/*with_structural=*/true)) {
            return {Kind::kNone, 0, size_};
        }
    }
    return event_at(bits::trailing_zeros(struct_mask_));
}

void StructuralIterator::set_commas(bool enabled, bool eager_disable)
{
    if (commas_on_ == enabled) {
        return;
    }
    commas_on_ = enabled;
    if ((enabled || eager_disable) && block_start_ < end_) {
        struct_mask_ = compose_structural(blocks_.masks(block_start_)) &
                       ~in_string_ & bits::mask_from(floor_) & block_valid_mask();
    }
}

void StructuralIterator::set_colons(bool enabled, bool eager_disable)
{
    if (colons_on_ == enabled) {
        return;
    }
    colons_on_ = enabled;
    if ((enabled || eager_disable) && block_start_ < end_) {
        struct_mask_ = compose_structural(blocks_.masks(block_start_)) &
                       ~in_string_ & bits::mask_from(floor_) & block_valid_mask();
    }
}

std::optional<std::string_view> StructuralIterator::label_before(std::size_t pos) const
{
    // Backtrack over whitespace (and the colon, when called for an opening
    // character) to the closing quote of the label.
    std::size_t i = pos;
    while (i > 0 && is_ws_byte(data_[i - 1])) {
        --i;
    }
    if (i == 0) {
        return std::nullopt;
    }
    if (data_[i - 1] == classify::kColon) {
        --i;
        while (i > 0 && is_ws_byte(data_[i - 1])) {
            --i;
        }
        if (i == 0) {
            return std::nullopt;
        }
    }
    if (data_[i - 1] != '"') {
        // A comma, an opening bracket, or the start of the document: the
        // element is an array entry (or the root) and carries the
        // artificial label.
        return std::nullopt;
    }
    std::size_t close = i - 1;
    // Find the matching opening quote, skipping escaped quotes: a quote is
    // escaped iff preceded by an odd-length backslash run.
    std::size_t j = close;
    while (j > 0) {
        --j;
        if (data_[j] != '"') {
            continue;
        }
        std::size_t backslashes = 0;
        while (j > backslashes && data_[j - 1 - backslashes] == '\\') {
            ++backslashes;
        }
        if (backslashes % 2 == 0) {
            // Unescaped quote: the label starts after it.
            return std::string_view(reinterpret_cast<const char*>(data_ + j + 1),
                                    close - j - 1);
        }
        j -= backslashes;
    }
    return std::nullopt;
}

void StructuralIterator::skip_until_depth_zero(classify::BracketKind kind,
                                               bool consume_closer,
                                               std::size_t base_depth)
{
    // The limit is absolute: @p base_depth containers surround the element
    // whose nesting the counters below track, so the relative bound is
    // what remains of the budget. Callers guarantee the skipped element
    // itself is within the limit (base_depth < max_skip_depth_).
    //
    // Two counters: relative_depth counts @p kind only — per §4.3 the
    // matching closer is the same-kind closer at depth zero, so one kind
    // suffices to *terminate*. The depth LIMIT is about total nesting, and
    // a subtree can nest arbitrarily through the other bracket kind while
    // the kind-counter stays flat — true_depth counts every bracket so the
    // budget cannot be dodged that way.
    const std::size_t max_relative =
        max_skip_depth_ - (base_depth < max_skip_depth_ ? base_depth
                                                        : max_skip_depth_);
    int relative_depth = 1;
    int true_depth = 1;
    std::uint64_t live = bits::mask_from(floor_);
    while (block_start_ < end_) {
        const simd::BlockMasks& block_masks = blocks_.masks(block_start_);
        classify::DepthMasks masks = classify::depth_masks(block_masks, kind);
        std::uint64_t in_bound = ~in_string_ & live & block_valid_mask();
        masks.openers &= in_bound;
        masks.closers &= in_bound;
        std::uint64_t all_openers =
            (block_masks.open_braces | block_masks.open_brackets) & in_bound;
        std::uint64_t all_closers =
            (block_masks.close_braces | block_masks.close_brackets) & in_bound;
        int index;
        if (static_cast<std::size_t>(true_depth) +
                static_cast<std::size_t>(bits::popcount(all_openers)) >
            max_relative) {
            // The bit-parallel step would hide an intra-block depth
            // excursion past the limit: enforce it with an exact scan of
            // this block (the guard almost never fires at sane limits).
            index = -1;
            for (bits::BitIter it(all_openers | all_closers); !it.done();
                 it.advance()) {
                int bit = it.index();
                std::uint64_t bit_mask = 1ULL << bit;
                if (all_openers & bit_mask) {
                    // true_depth can be negative on malformed input (stray
                    // other-kind closers); that is unbalanced structure for
                    // a later stage, not a depth-limit hit.
                    if (true_depth >= 0 &&
                        static_cast<std::size_t>(true_depth) >= max_relative) {
                        fail(StatusCode::kDepthLimit,
                             block_start_ + static_cast<std::size_t>(bit));
                        return;
                    }
                    ++true_depth;
                    if (masks.openers & bit_mask) {
                        ++relative_depth;
                    }
                } else {
                    --true_depth;
                    if ((masks.closers & bit_mask) && --relative_depth == 0) {
                        index = bit;
                        break;
                    }
                }
            }
        } else {
            index = classify::find_depth_zero(masks, relative_depth);
            true_depth += bits::popcount(all_openers) -
                          bits::popcount(all_closers);
        }
        if (index >= 0) {
            floor_ = consume_closer ? index + 1 : index;
            struct_mask_ = compose_structural(block_masks) & ~in_string_ &
                           bits::mask_from(floor_) & block_valid_mask();
            return;
        }
        if (true_depth > 0 &&
            static_cast<std::size_t>(true_depth) > max_relative) {
            fail(StatusCode::kDepthLimit, block_start_ + simd::kBlockSize);
            return;
        }
        if (!advance_block(/*with_structural=*/false)) {
            // Malformed input: the element never closed. advance_block
            // already flagged a truncated string if one swallowed the
            // closer; otherwise the structure is unbalanced.
            fail(StatusCode::kUnbalancedStructure, size_);
            return;
        }
        live = ~0ULL;
    }
}

void StructuralIterator::skip_element(std::uint8_t opening_byte,
                                      std::size_t base_depth)
{
    obs::ModeScope mode(accountant_, obs::BlockMode::kChildSkip);
    skip_until_depth_zero(opening_byte == classify::kOpenBrace
                              ? classify::BracketKind::kObject
                              : classify::BracketKind::kArray,
                          /*consume_closer=*/true, base_depth);
}

void StructuralIterator::skip_to_parent_close(bool parent_is_object,
                                              std::size_t base_depth)
{
    obs::ModeScope mode(accountant_, obs::BlockMode::kSiblingSkip);
    skip_until_depth_zero(parent_is_object ? classify::BracketKind::kObject
                                           : classify::BracketKind::kArray,
                          /*consume_closer=*/false, base_depth);
}

void StructuralIterator::seek(std::size_t pos)
{
    std::size_t target_block = pos / simd::kBlockSize * simd::kBlockSize;
    while (block_start_ < target_block) {
        if (!advance_block(/*with_structural=*/false)) {
            return;
        }
    }
    if (block_start_ >= end_) {
        // Parked (failed/interrupted) before reaching @p pos: stay parked
        // instead of computing a negative floor against end_.
        return;
    }
    floor_ = static_cast<int>(pos - block_start_);
    struct_mask_ = compose_structural(blocks_.masks(block_start_)) & ~in_string_ &
                   bits::mask_from(floor_) & block_valid_mask();
}

StructuralIterator::WithinResult StructuralIterator::skip_to_label_within(
    std::string_view escaped_label, BitStack& opened, int& relative_depth,
    std::size_t base_depth)
{
    const simd::Kernels& kernels = blocks_.kernels();
    obs::ModeScope mode(accountant_, obs::BlockMode::kWithinSkip);
    // Absolute-depth budget, as in skip_until_depth_zero.
    const std::size_t max_relative =
        max_skip_depth_ - (base_depth < max_skip_depth_ ? base_depth
                                                        : max_skip_depth_);
    WithinResult result;
    std::uint64_t live = bits::mask_from(floor_);
    while (block_start_ < end_) {
        const std::uint8_t* block = data_ + block_start_;
        const simd::BlockMasks& block_masks = blocks_.masks(block_start_);
        std::uint64_t not_string = ~in_string_ & live & block_valid_mask();
        std::uint64_t openers =
            (block_masks.open_braces | block_masks.open_brackets) & not_string;
        std::uint64_t closers =
            (block_masks.close_braces | block_masks.close_brackets) & not_string;
        // Candidate labels: string-opening quotes, prefiltered by the
        // label's first byte (bit 63's successor lives in the next block,
        // so it is kept and left to bytewise verification).
        std::uint64_t candidates = unescaped_quotes_ & in_string_ & live;
        if (!escaped_label.empty()) {
            std::uint64_t first = kernels.eq_mask(
                block, static_cast<std::uint8_t>(escaped_label[0]));
            candidates &= (first >> 1) | (1ULL << 63);
        }
        std::uint64_t combined = openers | closers | candidates;
        for (bits::BitIter it(combined); !it.done(); it.advance()) {
            int bit = it.index();
            std::uint64_t bit_mask = 1ULL << bit;
            std::size_t pos = block_start_ + static_cast<std::size_t>(bit);
            if (openers & bit_mask) {
                ++relative_depth;
                if (static_cast<std::size_t>(relative_depth) > max_relative) {
                    fail(StatusCode::kDepthLimit, pos);
                    result.outcome = WithinResult::Outcome::kInputEnd;
                    return result;
                }
                opened.push(data_[pos] == classify::kOpenBrace);
                continue;
            }
            if (closers & bit_mask) {
                if (--relative_depth == 0) {
                    // The element closed: leave the closer pending.
                    seek(pos);
                    result.outcome = WithinResult::Outcome::kElementEnd;
                    return result;
                }
                opened.pop();
                continue;
            }
            // Candidate: verify "<label>" followed by a colon.
            obs::add(obs_counters(), obs::Counter::kLabelSearchCandidates);
            std::size_t content = pos + 1;
            if (content + escaped_label.size() + 1 > size_ ||
                std::memcmp(data_ + content, escaped_label.data(),
                            escaped_label.size()) != 0 ||
                data_[content + escaped_label.size()] != '"') {
                continue;
            }
            std::size_t after = first_non_ws(content + escaped_label.size() + 1);
            if (after >= size_ || data_[after] != classify::kColon) {
                continue;
            }
            obs::add(obs_counters(), obs::Counter::kLabelSearchHits);
            result.outcome = WithinResult::Outcome::kFoundLabel;
            result.colon_pos = after;
            result.value_pos = first_non_ws(after + 1);
            seek(result.value_pos);
            return result;
        }
        if (!advance_block(/*with_structural=*/false)) {
            // The element never closed (or its closer sits beyond the
            // in-string flag advance_block raised): unbalanced structure.
            fail(StatusCode::kUnbalancedStructure, size_);
            break;
        }
        live = ~0ULL;
    }
    result.outcome = WithinResult::Outcome::kInputEnd;
    return result;
}

ResumePoint StructuralIterator::resume_point() const
{
    return {block_start_, block_entry_quote_state_, floor_};
}

void StructuralIterator::resume(const ResumePoint& point)
{
    block_start_ = point.block_start;
    // floor == 64 is a legal "block spent" handoff (a producer that
    // consumed bit 63); mask_from copes with it, but never let a negative
    // floor reach the shift below.
    floor_ = point.floor < 0 ? 0 : point.floor;
    if (block_start_ >= end_) {
        block_start_ = end_;
        struct_mask_ = 0;
        in_string_ = 0;
        return;
    }
    blocks_.restart(point.quote_state);
    classify_block(/*with_structural=*/true);
    struct_mask_ &= bits::mask_from(floor_);
}

std::size_t StructuralIterator::first_non_ws(std::size_t pos) const noexcept
{
    while (pos < size_ && is_ws_byte(data_[pos])) {
        ++pos;
    }
    return pos;
}

}  // namespace descend
