/**
 * @file
 * Reusable per-worker run scratch, shared by every long-lived execution
 * path (the NDJSON stream executor's workers and the serve daemon's
 * request workers).
 *
 * A one-shot engine run allocates its working state fresh: an OffsetSink
 * grows a new offsets vector, and a request body is copied into a new
 * PaddedString. Long-lived workers running millions of records/requests
 * pay that allocation churn on every single unit of work. RunScratch
 * hoists the state to the worker: buffers are cleared between runs but
 * keep their capacity, so the steady state allocates only when a run's
 * needs exceed every previous run's (and copies results out only for the
 * minority of runs that actually match).
 *
 * Nothing here is thread-safe — one RunScratch belongs to one worker
 * thread, mirroring the obs layer's one-registry-per-shard rule.
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>
#include <string_view>
#include <vector>

#include "descend/engine/api.h"
#include "descend/engine/padded_string.h"

namespace descend {

/**
 * A MatchSink that retains its buffer capacity across runs: reset()
 * clears the collected offsets without releasing memory, so a worker
 * reuses one allocation for every record/request it ever serves.
 */
class ReusableOffsetSink final : public MatchSink {
public:
    void on_match(std::size_t offset) override { offsets_.push_back(offset); }

    /** Clears the collected offsets, keeping the capacity. */
    void reset() noexcept { offsets_.clear(); }

    const std::vector<std::size_t>& offsets() const noexcept { return offsets_; }
    bool empty() const noexcept { return offsets_.empty(); }
    std::size_t size() const noexcept { return offsets_.size(); }

private:
    std::vector<std::size_t> offsets_;
};

/**
 * A grow-only padded document buffer: assign() copies arbitrary bytes
 * (a request body, a record) into an owned 64-byte-aligned buffer with a
 * full PaddedString::kPadding of trailing spaces and returns a conforming
 * PaddedView of them. The buffer is reused across assigns — it only ever
 * grows, so a worker's steady state performs zero allocations.
 *
 * The returned view is invalidated by the next assign() (and by
 * destruction); callers hold it only for the duration of one run.
 */
class PaddedArena {
public:
    PaddedArena() = default;
    PaddedArena(const PaddedArena&) = delete;
    PaddedArena& operator=(const PaddedArena&) = delete;

    PaddedArena(PaddedArena&& other) noexcept
        : data_(other.data_), capacity_(other.capacity_)
    {
        other.data_ = nullptr;
        other.capacity_ = 0;
    }

    PaddedArena& operator=(PaddedArena&& other) noexcept
    {
        if (this != &other) {
            release();
            data_ = other.data_;
            capacity_ = other.capacity_;
            other.data_ = nullptr;
            other.capacity_ = 0;
        }
        return *this;
    }

    ~PaddedArena() { release(); }

    /** Copies @p contents into the arena (padding it) and views them. */
    PaddedView assign(std::string_view contents)
    {
        return assign(reinterpret_cast<const std::uint8_t*>(contents.data()),
                      contents.size());
    }

    PaddedView assign(const std::uint8_t* data, std::size_t size)
    {
        reserve(size);
        if (size != 0) {
            std::memcpy(data_, data, size);
        }
        // Space padding keeps every classifier inert past the logical end
        // (the same contract PaddedString guarantees).
        std::memset(data_ + size, ' ', PaddedString::kPadding);
        return {data_, size};
    }

    /** Bytes the arena can hold without reallocating. */
    std::size_t capacity() const noexcept { return capacity_; }

private:
    static constexpr std::size_t kAlignment = 64;

    void reserve(std::size_t size)
    {
        // data_ must be checked too: an empty assign on a fresh arena
        // still needs a buffer to hold the padding.
        if (size <= capacity_ && data_ != nullptr) {
            return;
        }
        // Geometric growth so a ramp of slowly growing bodies settles
        // after O(log n) reallocations.
        std::size_t grown = capacity_ + capacity_ / 2;
        std::size_t target = size > grown ? size : grown;
        release();
        data_ = static_cast<std::uint8_t*>(::operator new(
            target + PaddedString::kPadding, std::align_val_t(kAlignment)));
        capacity_ = target;
    }

    void release() noexcept
    {
        if (data_ != nullptr) {
            ::operator delete(data_, std::align_val_t(kAlignment));
            data_ = nullptr;
            capacity_ = 0;
        }
    }

    std::uint8_t* data_ = nullptr;
    std::size_t capacity_ = 0;
};

/**
 * Everything one worker reuses across the records/requests it serves:
 * the primary match collector, a secondary collector for re-runs (the
 * stream executor's scalar-tier retry), and a padded body arena (the
 * serve daemon copies each request body through it; the zero-copy stream
 * path never needs it and leaves it unallocated).
 */
struct RunScratch {
    ReusableOffsetSink matches;
    ReusableOffsetSink retry_matches;
    PaddedArena document;
};

}  // namespace descend
