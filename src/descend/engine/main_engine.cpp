#include "descend/engine/main_engine.h"

#include "descend/engine/label_search.h"
#include "descend/engine/validation.h"
#include "descend/project/filter_eval.h"
#include "descend/util/bit_stack.h"
#include "descend/util/inline_vector.h"
#include "descend/util/utf8.h"

namespace descend {
namespace {

/** A sparse depth-stack frame: the state to restore and the depth at which
 *  to restore it (paper Section 3.2). */
struct Frame {
    int state;
    int depth;
};

/** Inline frame capacity mirrors the paper's SmallVec bound: the stack
 *  lives on the thread's stack up to 128 frames. */
using DepthStack = InlineVector<Frame, 128>;

/**
 * The paper's main algorithm (Section 3.4), templated over the sink so the
 * counting path is fully monomorphized (as rsonpath's generic recorder is).
 */
template <typename Sink>
class Simulation {
public:
    /** @param budget the run's governance (null when inactive); threaded
     *  into the pipelines run_head_skip constructs itself.
     *  @param document / @p kernels the run's view and kernel tier — the
     *  filter gate extends candidate spans over them when the query
     *  carries a trailing predicate. */
    Simulation(const automaton::CompiledQuery& query, const EngineOptions& options,
               Sink& sink, RunStats& stats, PaddedView document,
               const simd::Kernels& kernels, const RunBudget* budget = nullptr)
        : cq_(query),
          options_(options),
          sink_(sink),
          stats_(stats),
          budget_(budget),
          other_(query.alphabet().other_symbol()),
          counting_(query.has_indices())
    {
        if (const query::FilterExpr* filter = query.filter()) {
            filter_gate_.emplace(*filter, document, kernels, &stats.counters);
        }
    }

    /** First problem encountered during the run (ok when none was). */
    const EngineStatus& status() const noexcept { return status_; }

    /**
     * Simulates the automaton from the iterator's current position until
     * the enclosing element closes (depth returns to zero) or input ends.
     * @param at_document_root the first opening character is the document
     *        root, which triggers no automaton transition (the initial
     *        state *is* the root's state); head-skip subruns pass false so
     *        the value's label transition fires normally.
     */
    void run_main_loop(StructuralIterator& iter, bool at_document_root)
    {
        using Kind = StructuralIterator::Kind;
        const automaton::CompiledQuery& cq = cq_;
        const automaton::Alphabet& alphabet = cq.alphabet();

        int state = cq.initial_state();
        int depth = 0;
        DepthStack stack;
        BitStack kinds;
        InlineVector<std::uint64_t, 64> counts;

        if (!options_.leaf_skipping) {
            // Leaf-skipping ablation: iterate every structural character.
            iter.set_commas(true);
            iter.set_colons(true);
        }
        // Toggling (Section 3.4): enable colons when an object member's
        // label can take the automaton to an accepting state in one step;
        // enable commas when an array entry can (or when entry counting is
        // required by the index-selector extension). Disables are lazy
        // (stale events are stepped over; Section 4.3) except for commas
        // under counting, where a stale comma would corrupt the counters.
        auto toggle = [&](int current_state, bool is_object) {
            if (!options_.leaf_skipping) {
                return;
            }
            const automaton::StateFlags& flags = cq.flags(current_state);
            iter.set_colons(is_object && flags.colon_toggle);
            iter.set_commas(!is_object && (flags.comma_toggle || counting_),
                            /*eager_disable=*/counting_);
        };

        // The symbol of the current array entry: a concrete index symbol
        // when the query uses index selectors, the artificial label else.
        auto array_entry_symbol = [&](std::uint64_t entry_index) {
            return counting_ ? alphabet.index_symbol(entry_index) : other_;
        };

        // The Section 4.5 extension: in a waiting, non-accepting state,
        // fast-forward straight to the awaited label anywhere within the
        // current element (or to the element's closer). Sound because every
        // skipped event would leave the state unchanged and cannot match;
        // atoms carrying the label are reported in-line. Returns with the
        // iterator positioned either at a matching member's container value
        // (depth/kinds extended to the containers opened on the way) or at
        // the element's pending closer.
        auto within_skip = [&](int current_state, int& current_depth,
                               BitStack& current_kinds) {
            int symbol = cq.waiting_symbol(current_state);
            if (symbol < 0 || cq.flags(current_state).accepting || counting_) {
                return;
            }
            const std::string& label = alphabet.label(symbol);
            bool leaf_accepting =
                cq.flags(cq.transition(current_state, symbol)).accepting;
            BitStack opened;
            int relative_depth = 1;
            while (true) {
                StructuralIterator::WithinResult found = iter.skip_to_label_within(
                    label, opened, relative_depth,
                    static_cast<std::size_t>(current_depth) - 1);
                stats_.counters.add(obs::Counter::kWithinSkips);
                if (found.outcome != StructuralIterator::WithinResult::Outcome::
                                         kFoundLabel) {
                    return;  // element closer pending (or malformed input)
                }
                std::uint8_t first = found.value_pos < iter.size()
                                         ? iter.data()[found.value_pos]
                                         : 0;
                if (first == classify::kOpenBrace ||
                    first == classify::kOpenBracket) {
                    // The main loop takes over at the value's opening; its
                    // label transition fires there. Account for the
                    // containers the scan entered on the way.
                    for (std::size_t i = 0; i < opened.size(); ++i) {
                        current_kinds.push(opened.bit_at(i));
                    }
                    current_depth += static_cast<int>(opened.size());
                    if (static_cast<std::size_t>(current_depth) >
                        options_.limits.max_depth) {
                        fail(StatusCode::kDepthLimit, found.value_pos);
                    }
                    return;
                }
                if (leaf_accepting) {
                    report(found.value_pos);
                    if (!status_.ok()) {
                        return;
                    }
                }
                // Atomic value: keep scanning from just past it.
            }
        };

        // First item of an array (Section 3.4, try_match_first_item): it is
        // not preceded by a comma, so atoms are matched here.
        auto try_match_first_item = [&](std::size_t open_pos, int current_state) {
            int target = cq.transition(current_state, array_entry_symbol(0));
            if (!cq.flags(target).accepting) {
                return;
            }
            StructuralIterator::Event following = iter.peek();
            if (following.kind == Kind::kOpening) {
                return;  // handled by the Opening case
            }
            std::size_t item = iter.first_non_ws(open_pos + 1);
            if (item >= following.pos) {
                return;  // empty array
            }
            report(item);
        };

        // Resolves the symbol of the label before @p pos, validating the
        // label's bytes; nullopt for the array-entry/artificial label.
        auto label_symbol_before = [&](std::size_t pos) -> std::optional<int> {
            auto label = iter.label_before(pos);
            if (!label.has_value()) {
                return std::nullopt;
            }
            if (!util::is_valid_utf8(*label)) {
                fail(StatusCode::kInvalidUtf8InLabel,
                     static_cast<std::size_t>(
                         reinterpret_cast<const std::uint8_t*>(label->data()) -
                         iter.data()));
            }
            return alphabet.label_symbol(*label);
        };

        while (status_.ok()) {
            StructuralIterator::Event event = iter.next();
            if (event.kind == Kind::kNone) {
                // End of input. Any problem the iterator hit (truncated
                // string, a fast-forward running off the end, skip depth)
                // surfaces here; a still-open container means the document
                // itself ended early.
                if (!iter.status().ok()) {
                    fail(iter.status().code, iter.status().offset);
                } else if (depth > 0) {
                    fail(StatusCode::kUnbalancedStructure, iter.size());
                }
                return;
            }
            stats_.counters.add(obs::Counter::kStructuralEvents);
            switch (event.kind) {
                case Kind::kOpening: {
                    stats_.counters.add(obs::Counter::kOpeningEvents);
                    bool is_object = event.byte == classify::kOpenBrace;
                    // Depth limit before the skip decision: an engine that
                    // descends (the DOM baseline) flags this opener no
                    // matter whether the subtree could match, so a skipped
                    // subtree must not slip past the limit either.
                    if (static_cast<std::size_t>(depth) >= options_.limits.max_depth) {
                        fail(StatusCode::kDepthLimit, event.pos);
                        return;
                    }
                    if (depth > 0 || !at_document_root) {
                        int symbol;
                        if (auto label = label_symbol_before(event.pos)) {
                            symbol = *label;
                        } else {
                            symbol = array_entry_symbol(
                                counting_ && !counts.empty() ? counts.back() : 0);
                        }
                        if (!status_.ok()) {
                            return;
                        }
                        int target = cq.transition(state, symbol);
                        if (cq.flags(target).rejecting && options_.child_skipping) {
                            // Skipping children: nothing below can match.
                            stats_.counters.add(obs::Counter::kChildSkips);
                            iter.skip_element(event.byte,
                                              static_cast<std::size_t>(depth));
                            continue;
                        }
                        if (target != state) {
                            // A frame is needed only when the transition
                            // changes behaviour; row-equivalent targets
                            // (differing in acceptance alone) restore to
                            // themselves, keeping the stack at O(n) for
                            // child-free queries (Section 3.2).
                            if (cq.row_class(target) != cq.row_class(state)) {
                                stack.push_back({state, depth});
                                stats_.counters.add(obs::Counter::kDepthStackPushes);
                                stats_.counters.raise(obs::Counter::kDepthStackMax,
                                                      stack.size());
                            }
                            state = target;
                        }
                    }
                    ++depth;
                    kinds.push(is_object);
                    if (counting_ && !is_object) {
                        counts.push_back(0);
                    }
                    if (cq.flags(state).accepting) {
                        report(event.pos);
                    }
                    toggle(state, is_object);
                    if (!is_object) {
                        try_match_first_item(event.pos, state);
                    }
                    if (options_.label_within_skipping) {
                        within_skip(state, depth, kinds);
                    }
                    break;
                }
                case Kind::kClosing: {
                    if (depth == 0) {
                        // A closer with nothing open: report the stray
                        // byte instead of silently truncating the run.
                        fail(StatusCode::kUnbalancedStructure, event.pos);
                        return;
                    }
                    bool closed_is_object = kinds.top();
                    if (closed_is_object != (event.byte == classify::kCloseBrace)) {
                        // '}' closing an array or ']' closing an object.
                        fail(StatusCode::kUnbalancedStructure, event.pos);
                        return;
                    }
                    --depth;
                    kinds.pop();
                    if (counting_ && !closed_is_object) {
                        counts.pop_back();
                    }
                    if (depth == 0) {
                        return;  // the (sub)document root closed
                    }
                    if (!stack.empty() && stack.back().depth == depth) {
                        // Sibling skipping is sound only when the closed
                        // child advanced the automaton (its label was the
                        // unitary state's unique live label). With child
                        // skipping disabled the engine also descends into
                        // rejected subtrees, whose frames must not trigger
                        // the skip.
                        bool child_advanced = !cq.flags(state).rejecting;
                        state = stack.back().state;
                        stack.pop_back();
                        if (child_advanced && cq.flags(state).unitary &&
                            options_.sibling_skipping) {
                            // Labels do not repeat among siblings: the
                            // parent holds no further matches.
                            stats_.counters.add(obs::Counter::kSiblingSkips);
                            iter.skip_to_parent_close(
                                kinds.top(), static_cast<std::size_t>(depth) - 1);
                            continue;
                        }
                    }
                    toggle(state, kinds.top());
                    if (options_.label_within_skipping) {
                        within_skip(state, depth, kinds);
                    }
                    break;
                }
                case Kind::kColon: {
                    // An object member; only act if its value is an atom
                    // (the Opening case owns container values).
                    if (kinds.empty() || iter.peek().kind == Kind::kOpening) {
                        break;
                    }
                    int symbol = other_;
                    if (auto label = label_symbol_before(event.pos)) {
                        symbol = *label;
                    }
                    if (!status_.ok()) {
                        return;
                    }
                    int target = cq.transition(state, symbol);
                    if (cq.flags(target).accepting) {
                        report(iter.first_non_ws(event.pos + 1));
                        if (cq.flags(state).unitary && options_.sibling_skipping) {
                            // The unitary state's unique label just matched
                            // an atomic member: skip the remaining siblings.
                            stats_.counters.add(obs::Counter::kSiblingSkips);
                            iter.skip_to_parent_close(
                                kinds.top(), static_cast<std::size_t>(depth) - 1);
                        }
                    }
                    break;
                }
                case Kind::kComma: {
                    if (kinds.empty() || kinds.top()) {
                        break;  // object member separator (or malformed input)
                    }
                    if (counting_) {
                        ++counts.back();
                    }
                    StructuralIterator::Event following = iter.peek();
                    if (following.kind == Kind::kOpening ||
                        following.kind == Kind::kNone) {
                        break;
                    }
                    int target = cq.transition(
                        state, array_entry_symbol(counting_ ? counts.back() : 0));
                    if (cq.flags(target).accepting) {
                        report(iter.first_non_ws(event.pos + 1));
                    }
                    break;
                }
                case Kind::kNone:
                    // A parked iterator (budget interrupt latched at a
                    // refill) runs dry exactly like end-of-input; surface
                    // its status so the interrupt is not mistaken for a
                    // clean finish.
                    if (!iter.status().ok()) {
                        fail(iter.status().code, iter.status().offset);
                    }
                    return;
            }
        }
    }

    /** Skipping to a label (Sections 3.3-3.4): jump between occurrences of
     *  the head label, running the main loop on each subdocument only.
     *  The validator is shared by the search and the iterator: the
     *  stop/resume protocol hands blocks between the two pipelines
     *  monotonically, so each block is accounted exactly once. */
    void run_head_skip(PaddedView document, const simd::Kernels& kernels,
                       StructuralValidator* validator,
                       obs::BlockAccountant* accountant)
    {
        const automaton::CompiledQuery& cq = cq_;
        const std::string& label = *cq.head_skip_label();
        int label_symbol = cq.alphabet().label_symbol(label);
        int target_of_label = cq.transition(cq.initial_state(), label_symbol);
        bool leaf_accepting = cq.flags(target_of_label).accepting;

        // The search is constructed first: it owns block 0 until the first
        // handoff, so the accountant attributes the lead-in to head-skip.
        LabelSearch search(document, kernels, label, validator, accountant,
                           budget_);
        StructuralIterator iter(document, kernels, validator,
                                options_.limits.max_depth, accountant, budget_);

        while (auto occurrence = search.next()) {
            stats_.counters.add(obs::Counter::kHeadSkipJumps);
            std::size_t value = iter.first_non_ws(occurrence->colon_pos + 1);
            if (value >= document.size()) {
                break;
            }
            std::uint8_t first = document.data()[value];
            if (first == classify::kOpenBrace || first == classify::kOpenBracket) {
                // Container value: hand the pipeline to the structural
                // iterator, run the main algorithm on the subdocument,
                // then hand it back.
                iter.resume(search.resume_point_at(value));
                run_main_loop(iter, /*at_document_root=*/false);
                if (!status_.ok()) {
                    return;
                }
                search.resume(iter.resume_point());
            } else if (leaf_accepting) {
                // Atomic value: report directly; the search continues and
                // the quote classifier keeps string contents excluded.
                report(value);
                if (!status_.ok()) {
                    return;
                }
            }
        }
        // A budget violation inside either pipeline parks it silently
        // (next() runs dry); surface it here, before the caller consults
        // the validator verdict on a stream that was never fully accounted.
        // The search and the iterator are separate block streams, so each
        // latch must be consulted on its own.
        if (status_.ok() && !search.status().ok()) {
            fail(search.status().code, search.status().offset);
        }
        if (status_.ok() && !iter.status().ok()) {
            fail(iter.status().code, iter.status().offset);
        }
    }

private:
    /** Records the first problem; later reports keep the original. */
    void fail(StatusCode code, std::size_t offset)
    {
        if (status_.ok()) {
            status_ = {code, offset};
        }
    }

    /** Reports a match, enforcing EngineLimits::max_match_count. With a
     *  filter query this is the candidate-accepting choke point: the
     *  predicate runs over the candidate span first, and a rejected
     *  candidate is not a match (it does not count toward the limit —
     *  mirroring the DOM oracle, which never reports it at all). */
    void report(std::size_t offset)
    {
        if (filter_gate_.has_value() && !filter_gate_->admits(offset)) {
            return;
        }
        if (++matches_ > options_.limits.max_match_count) {
            fail(StatusCode::kMatchLimit, offset);
            return;
        }
        sink_.on_match(offset);
    }

    const automaton::CompiledQuery& cq_;
    const EngineOptions& options_;
    Sink& sink_;
    RunStats& stats_;
    const RunBudget* budget_ = nullptr;
    const int other_;
    const bool counting_;
    /** Present iff the query carries a trailing filter predicate. */
    std::optional<project::FilterGate> filter_gate_;
    EngineStatus status_;
    std::size_t matches_ = 0;
};

}  // namespace

DescendEngine::DescendEngine(automaton::CompiledQuery query, EngineOptions options)
    : query_(std::move(query)),
      options_(options),
      kernels_(&simd::kernels_for(options.simd))
{
}

std::string DescendEngine::name() const
{
    return std::string("descend-") + kernels_->name;
}

namespace {

/** Books a governance outcome in the obs counters (deadline/cancel hits
 *  are rare; the tally rides the failure path only). */
void count_governance(RunStats& stats)
{
    if (stats.status.code == StatusCode::kDeadlineExceeded) {
        stats.counters.add(obs::Counter::kDeadlineHits);
    } else if (stats.status.code == StatusCode::kCancelled) {
        stats.counters.add(obs::Counter::kCancelHits);
    }
}

}  // namespace

template <typename Sink>
RunStats DescendEngine::dispatch(PaddedView document, Sink& sink,
                                 const RunBudget& budget) const
{
    RunStats stats;
    // Shared by every pipeline over this document (exactly like the
    // validator below): attributes each block, once, to the mode that
    // first classified it. finish() closes the books on every return
    // path, so the accounting invariant — the six block counters sum to
    // ceil(size / kBlockSize) — holds for any status, any options.
    obs::BlockAccountant accountant(&stats.counters);
    // Null when inactive: the block stream then skips governance
    // entirely, keeping the default path at one pointer test per refill.
    const RunBudget* budget_ptr = budget.active() ? &budget : nullptr;
    stats.status = preflight_document(document, options_.limits);
    if (stats.status.ok() && budget_ptr != nullptr) {
        // An already-violated budget fails before any work, at offset 0 —
        // the deterministic floor the stream executor's semantics pin on.
        StatusCode over = budget.exceeded();
        if (over != StatusCode::kOk) {
            stats.status = {over, 0};
        }
    }
    if (!stats.status.ok()) {
        count_governance(stats);
        accountant.finish(document.size());
        return stats;
    }
    if (query_.root_accepting()) {
        // The query is exactly `$`: it selects the whole document. This
        // path deliberately stays O(1) and unvalidated — the document is
        // never scanned, so no structural verdict is possible (see
        // DESIGN.md, "Error handling & limits").
        StructuralIterator iter(document, *kernels_, nullptr,
                                EngineLimits::kUnlimited, &accountant);
        std::size_t start = iter.first_non_ws(0);
        if (start < document.size()) {
            sink.on_match(start);
        }
        accountant.finish(document.size());
        return stats;
    }
    // Whole-document validation rides along with block classification:
    // per-kind bracket balances plus the end-of-input string state. The
    // event-driven checks in the simulation catch most damage early with
    // an exact offset; the verdict below catches what kind-filtered
    // fast-forwards can step across.
    StructuralValidator validator;
    StructuralValidator* vptr = options_.validate_structure ? &validator : nullptr;
    Simulation<Sink> simulation(query_, options_, sink, stats, document,
                                *kernels_, budget_ptr);
    if (query_.head_skip_label().has_value() && options_.head_skipping) {
        simulation.run_head_skip(document, *kernels_, vptr, &accountant);
        stats.status = simulation.status();
        // No trailing-content check here: head-skipping never tracks the
        // root element, so "after the root closed" is undefined for it.
        if (stats.status.ok() && vptr != nullptr) {
            stats.status = validator.verdict(document.size());
        }
        count_governance(stats);
        accountant.finish(document.size());
        return stats;
    }
    StructuralIterator iter(document, *kernels_, vptr, options_.limits.max_depth,
                            &accountant, budget_ptr);
    simulation.run_main_loop(iter, /*at_document_root=*/true);
    stats.status = simulation.status();
    if (stats.status.ok()) {
        std::size_t after = iter.first_non_ws(iter.position());
        if (after < document.size()) {
            stats.status = {StatusCode::kTrailingContent, after};
        }
    }
    if (stats.status.ok() && vptr != nullptr) {
        // Sound even though blocks past the root's closer were never
        // accounted: the trailing check above guarantees they hold only
        // whitespace, which cannot move a balance (the accountant books
        // them as the tail).
        stats.status = validator.verdict(document.size());
    }
    count_governance(stats);
    accountant.finish(document.size());
    return stats;
}

EngineStatus DescendEngine::run(PaddedView document, MatchSink& sink) const
{
    return dispatch(document, sink, options_.budget).status;
}

RunStats DescendEngine::run_with_stats(PaddedView document, MatchSink& sink) const
{
    return run_with_stats(document, sink, options_.budget);
}

RunStats DescendEngine::run_with_stats(PaddedView document, MatchSink& sink,
                                       const RunBudget& budget) const
{
    // A stopwatch rather than a scoped timer: the timing must land in the
    // returned object, and a destructor firing after the return-value copy
    // would miss it.
    obs::PhaseStopwatch watch;
    RunStats stats = dispatch(document, sink, budget);
    stats.timings.add(obs::Phase::kAutomaton, watch.elapsed_ns());
    return stats;
}

namespace {

/** Concrete counting sink: no virtual dispatch inside the hot loop. */
struct DirectCounter {
    std::size_t count = 0;
    void on_match(std::size_t) { ++count; }
};

}  // namespace

CountResult DescendEngine::count_checked(PaddedView document) const
{
    DirectCounter counter;
    CountResult result;
    result.status = dispatch(document, counter, options_.budget).status;
    result.count = counter.count;
    return result;
}

}  // namespace descend
