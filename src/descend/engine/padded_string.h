/**
 * @file
 * Input buffer for the streaming engines.
 *
 * The batched classifier reads whole 512-byte batches (simd::kBatchSize),
 * so engine input must be over-allocated: PaddedString owns a 64-byte-
 * aligned buffer whose logical contents are followed by at least one full
 * batch of spaces (whitespace is inert for every classifier). This mirrors
 * simdjson's padded_string, widened to the batch unit.
 *
 * PaddedView is the non-owning counterpart used for zero-copy record
 * streams: a window into a larger padded buffer. Its contract is weaker —
 * the kPadding bytes past the logical end must merely be *readable* (for a
 * mid-stream record they are the following records, not spaces), so every
 * classifier masks the final partial block to the logical end instead of
 * relying on inert padding. See DESIGN.md ("Record streams & parallel
 * sharding") for the slice-run contract.
 */
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace descend {

class PaddedString {
public:
    /**
     * Padding guaranteed past size(): one full classification batch.
     *
     * This is the worst case a batch refill can read: the last refill
     * starts at the final (possibly partial) block, whose start is at most
     * size() - 1, and reads kBatchSize bytes from there — so the read end
     * stays strictly below size() + kBatchSize.
     */
    static constexpr std::size_t kPadding = 512;

    PaddedString() = default;

    /** Copies the contents into a fresh padded buffer. */
    explicit PaddedString(std::string_view contents);

    /**
     * Reads a whole file into a padded buffer. Throws Error on failure.
     *
     * Large regular files take an mmap fast path on POSIX systems: the file
     * is mapped copy-on-write and only the final partial page is touched to
     * install the space padding, so multi-GB stream inputs do not double
     * resident memory. Small files, pipes, and non-POSIX builds use the
     * portable read-into-buffer fallback.
     */
    static PaddedString from_file(const std::string& path);

    /**
     * Files at or above this size are mmapped by from_file (POSIX only).
     * The DESCEND_MMAP_THRESHOLD env var overrides it — tests lower it to
     * exercise the mmap path with small fixture files. Zero-length files
     * always take the portable path: mmap of an empty region is an EINVAL,
     * not a buffer.
     */
    static constexpr std::size_t kMmapThreshold = std::size_t{1} << 22;

    /** The effective threshold: kMmapThreshold, or the
     *  DESCEND_MMAP_THRESHOLD env override (re-read per call). */
    static std::size_t mmap_threshold();

    PaddedString(PaddedString&& other) noexcept;
    PaddedString& operator=(PaddedString&& other) noexcept;
    PaddedString(const PaddedString&) = delete;
    PaddedString& operator=(const PaddedString&) = delete;
    ~PaddedString();

    const std::uint8_t* data() const noexcept { return data_; }
    std::size_t size() const noexcept { return size_; }
    bool empty() const noexcept { return size_ == 0; }

    std::string_view view() const noexcept
    {
        return {reinterpret_cast<const char*>(data_), size_};
    }

private:
    void release() noexcept;

    std::uint8_t* data_ = nullptr;
    std::size_t size_ = 0;
    /** Nonzero when data_ is an mmap region of this many bytes (munmap on
     *  release) rather than a heap allocation. */
    std::size_t mapped_bytes_ = 0;
};

/**
 * A non-owning read-only window into padded input.
 *
 * Contract: at least PaddedString::kPadding bytes past data() + size() are
 * readable. Unlike a PaddedString they need NOT be whitespace — a record
 * slice of a stream buffer is followed by the remaining records. The
 * classifier pipeline therefore treats size() as a hard end bound and
 * masks the final partial block; no event, quote, or validator accounting
 * ever leaks in from past-the-end bytes.
 *
 * Any in-bounds subview of a conforming view conforms as well: shrinking
 * the window only grows the readable tail.
 */
class PaddedView {
public:
    PaddedView() = default;

    PaddedView(const std::uint8_t* data, std::size_t size) noexcept
        : data_(data), size_(size)
    {
    }

    /** A PaddedString is trivially a conforming view of itself. */
    PaddedView(const PaddedString& owner) noexcept
        : data_(owner.data()), size_(owner.size())
    {
    }

    const std::uint8_t* data() const noexcept { return data_; }
    std::size_t size() const noexcept { return size_; }
    bool empty() const noexcept { return size_ == 0; }

    std::string_view view() const noexcept
    {
        return {reinterpret_cast<const char*>(data_), size_};
    }

    /** The in-bounds window [offset, offset + length); conforming. */
    PaddedView subview(std::size_t offset, std::size_t length) const noexcept
    {
        assert(offset <= size_ && length <= size_ - offset &&
               "subview must stay within the parent view");
        return {data_ + offset, length};
    }

private:
    const std::uint8_t* data_ = nullptr;
    std::size_t size_ = 0;
};

}  // namespace descend
