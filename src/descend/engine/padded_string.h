/**
 * @file
 * Input buffer for the streaming engines.
 *
 * All SIMD kernels read whole 64-byte blocks, so engine input must be
 * over-allocated: PaddedString owns a 64-byte-aligned buffer whose logical
 * contents are followed by at least one full block of spaces (whitespace is
 * inert for every classifier). This mirrors simdjson's padded_string.
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace descend {

class PaddedString {
public:
    /** Padding guaranteed past size(): one full SIMD block plus slack. */
    static constexpr std::size_t kPadding = 128;

    PaddedString() = default;

    /** Copies the contents into a fresh padded buffer. */
    explicit PaddedString(std::string_view contents);

    /** Reads a whole file into a padded buffer. Throws Error on failure. */
    static PaddedString from_file(const std::string& path);

    PaddedString(PaddedString&& other) noexcept;
    PaddedString& operator=(PaddedString&& other) noexcept;
    PaddedString(const PaddedString&) = delete;
    PaddedString& operator=(const PaddedString&) = delete;
    ~PaddedString();

    const std::uint8_t* data() const noexcept { return data_; }
    std::size_t size() const noexcept { return size_; }
    bool empty() const noexcept { return size_ == 0; }

    std::string_view view() const noexcept
    {
        return {reinterpret_cast<const char*>(data_), size_};
    }

private:
    void release() noexcept;

    std::uint8_t* data_ = nullptr;
    std::size_t size_ = 0;
};

}  // namespace descend
