/**
 * @file
 * Skipping to a label (paper Sections 3.3 and 3.4): when a query begins
 * with a descendant selector `..label`, the initial DFA state is *waiting*
 * and the engine jumps straight from one occurrence of the label to the
 * next, running the main algorithm only on the associated subdocuments.
 *
 * rsonpath uses memchr's memmem for this. Here the search is built from
 * the same block kernels as the rest of the pipeline: each block yields
 * the mask of *string-opening* quote positions (unescaped quotes that are
 * outside strings — the quote classifier keeps running, so occurrences of
 * the pattern inside string values are rejected for free), pre-filtered by
 * the label's first byte; the surviving candidates are verified bytewise
 * and must be followed by a colon to count as a member label.
 */
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "descend/classify/block_batch.h"
#include "descend/classify/quote_classifier.h"
#include "descend/engine/structural_iterator.h"

namespace descend {

class LabelSearch {
public:
    /** @param input the document or record slice to search; size() is a
     *  hard end bound (candidates in the final partial block are masked to
     *  it, matching StructuralIterator's slice contract).
     *  @param escaped_label the label's comparison form (raw bytes between
     *  quotes in a minimally-escaped document).
     *  @param validator optional whole-document validator shared with the
     *  structural iterator; blocks this search classifies are accounted
     *  there (the resume protocol guarantees each block is accounted by
     *  exactly one of the two pipelines).
     *  @param accountant optional shared obs accountant: blocks this
     *  search classifies first are attributed to head-skip, and the
     *  candidate/hit counters of the bytewise verification are fed.
     *  @param budget optional run budget, polled at batch-refill
     *  granularity; a violation parks the search (next() reports end) and
     *  latches status(). Must outlive the search when non-null. */
    LabelSearch(PaddedView input, const simd::Kernels& kernels,
                std::string_view escaped_label,
                StructuralValidator* validator = nullptr,
                obs::BlockAccountant* accountant = nullptr,
                const RunBudget* budget = nullptr);

    /**
     * Governance flag raised while searching: a budget violation parks the
     * search at end of input, so the engine observes the status when
     * next() runs dry (mirroring StructuralIterator::status()).
     */
    const EngineStatus& status() const noexcept { return status_; }

    struct Occurrence {
        std::size_t quote_pos;  ///< the label's opening quote
        std::size_t colon_pos;  ///< the colon following the label
    };

    /** Finds the next genuine label occurrence, or nullopt at end. */
    std::optional<Occurrence> next();

    /**
     * Rolls the quote pipeline forward to @p pos (which must be at or
     * beyond the current position) and returns a ResumePoint there, for a
     * StructuralIterator to take over.
     */
    ResumePoint resume_point_at(std::size_t pos);

    /** Takes the pipeline back over from an iterator's ResumePoint. */
    void resume(const ResumePoint& point);

private:
    bool advance_block();
    void classify_block();
    bool verify(std::size_t quote_pos, std::size_t& colon_pos) const;

    const std::uint8_t* data_;
    std::size_t size_;
    std::size_t end_;
    classify::BatchedBlockStream blocks_;
    std::string label_;
    StructuralValidator* validator_ = nullptr;
    obs::BlockAccountant* accountant_ = nullptr;
    EngineStatus status_;

    std::size_t block_start_ = 0;
    std::uint64_t candidates_ = 0;
    classify::QuoteState block_entry_quote_state_;
};

}  // namespace descend
