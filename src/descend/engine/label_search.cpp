#include "descend/engine/label_search.h"

#include <cstring>

#include "descend/util/bits.h"
#include "descend/util/chars.h"

namespace descend {

using chars::is_ws_byte;

LabelSearch::LabelSearch(PaddedView input, const simd::Kernels& kernels,
                         std::string_view escaped_label,
                         StructuralValidator* validator,
                         obs::BlockAccountant* accountant,
                         const RunBudget* budget)
    : data_(input.data()),
      size_(input.size()),
      end_((input.size() + simd::kBlockSize - 1) / simd::kBlockSize * simd::kBlockSize),
      blocks_(input.data(), kernels,
              accountant == nullptr ? nullptr : accountant->counters(), budget),
      label_(escaped_label),
      validator_(validator),
      accountant_(accountant)
{
    if (end_ > 0) {
        classify_block();
    }
}

void LabelSearch::classify_block()
{
    const simd::BlockMasks& masks = blocks_.masks(block_start_);
    if (!blocks_.interrupt().ok()) {
        // Budget violation latched by the refill: park the search; the
        // engine reads status() once next() runs dry.
        if (status_.ok()) {
            status_ = blocks_.interrupt();
        }
        block_start_ = end_;
        candidates_ = 0;
        return;
    }
    block_entry_quote_state_ = classify::BatchedBlockStream::entry_state(masks);
    // Slice end bound: clip the final partial block so candidates (and the
    // validator's balances) never come from past-the-end bytes.
    std::uint64_t valid = size_ - block_start_ >= simd::kBlockSize
                              ? ~std::uint64_t{0}
                              : bits::mask_below(static_cast<int>(size_ - block_start_));
    std::uint64_t in_string = masks.in_string & valid;
    std::uint64_t unescaped_quotes = masks.unescaped_quotes & valid;
    if (validator_ != nullptr) {
        validator_->account(masks, block_start_, in_string, valid);
    }
    if (accountant_ != nullptr) {
        accountant_->account_as(block_start_, obs::BlockMode::kHeadSkip);
    }
    // String-opening quotes: unescaped quotes whose in-string bit is set
    // (the opening quote is inside its own string under our convention).
    candidates_ = unescaped_quotes & in_string;
    if (!label_.empty()) {
        // First-byte prefilter: the byte after the opening quote must be the
        // label's first byte. Bit 63's successor lives in the next block, so
        // it is kept unconditionally and left to bytewise verification.
        std::uint64_t first = blocks_.kernels().eq_mask(
            data_ + block_start_, static_cast<std::uint8_t>(label_[0]));
        candidates_ &= (first >> 1) | (1ULL << 63);
    }
}

bool LabelSearch::advance_block()
{
    block_start_ += simd::kBlockSize;
    if (block_start_ >= end_) {
        block_start_ = end_;
        candidates_ = 0;
        return false;
    }
    classify_block();
    // classify_block may have parked the search on a budget interrupt.
    return block_start_ < end_;
}

bool LabelSearch::verify(std::size_t quote_pos, std::size_t& colon_pos) const
{
    std::size_t content = quote_pos + 1;
    if (content + label_.size() + 1 > size_) {
        return false;
    }
    if (std::memcmp(data_ + content, label_.data(), label_.size()) != 0) {
        return false;
    }
    if (data_[content + label_.size()] != '"') {
        return false;
    }
    std::size_t after = content + label_.size() + 1;
    while (after < size_ && is_ws_byte(data_[after])) {
        ++after;
    }
    if (after >= size_ || data_[after] != ':') {
        return false;
    }
    colon_pos = after;
    return true;
}

std::optional<LabelSearch::Occurrence> LabelSearch::next()
{
    while (block_start_ < end_) {
        while (candidates_ != 0) {
            int bit = bits::trailing_zeros(candidates_);
            candidates_ = bits::clear_lowest_bit(candidates_);
            std::size_t quote_pos = block_start_ + static_cast<std::size_t>(bit);
            std::size_t colon_pos = 0;
            obs::Counters* counters =
                accountant_ == nullptr ? nullptr : accountant_->counters();
            obs::add(counters, obs::Counter::kLabelSearchCandidates);
            if (verify(quote_pos, colon_pos)) {
                obs::add(counters, obs::Counter::kLabelSearchHits);
                return Occurrence{quote_pos, colon_pos};
            }
        }
        if (!advance_block()) {
            break;
        }
    }
    return std::nullopt;
}

ResumePoint LabelSearch::resume_point_at(std::size_t pos)
{
    std::size_t target_block = pos / simd::kBlockSize * simd::kBlockSize;
    while (block_start_ < target_block && advance_block()) {
    }
    ResumePoint point;
    point.block_start = block_start_;
    point.quote_state = block_entry_quote_state_;
    // Normalize the floor into [0, kBlockSize): when @p pos sits at or past
    // the end of the classified range (a block boundary, or beyond the
    // final partial block), advance_block() parked at end_ and the naive
    // pos - block_start_ would be >= 64 — an out-of-range shift amount for
    // the receiver's resume mask. Park such points at the aligned end with
    // floor 0 instead; every receiver treats block_start >= end as spent.
    if (pos <= block_start_) {
        point.floor = 0;
    } else if (pos - block_start_ >= simd::kBlockSize) {
        point.block_start = end_;
        point.floor = 0;
    } else {
        point.floor = static_cast<int>(pos - block_start_);
    }
    return point;
}

void LabelSearch::resume(const ResumePoint& point)
{
    block_start_ = point.block_start;
    if (block_start_ >= end_) {
        block_start_ = end_;
        candidates_ = 0;
        return;
    }
    blocks_.restart(point.quote_state);
    classify_block();
    // An iterator that consumed bit 63 legitimately hands over floor == 64
    // ("this block is spent"); clamp so the mask index stays in range.
    int floor = point.floor < 0 ? 0 : point.floor;
    if (floor >= static_cast<int>(simd::kBlockSize)) {
        candidates_ = 0;
        return;
    }
    candidates_ &= bits::mask_from(floor);
}

}  // namespace descend
