/**
 * @file
 * The engine-facing public API: match sinks, engine options, and the
 * common interface implemented by the main engine and all three baselines,
 * so that tests and benchmarks are engine-generic. Run statistics
 * (RunStats) live in obs/run_stats.h with the rest of the observability
 * layer and are re-exported here.
 *
 * A match is reported as the byte offset of the first character of the
 * matched value (the opening brace/bracket for containers, the first
 * non-whitespace character for atoms). All engines in this repository
 * agree on this convention, which is how the differential tests compare
 * full result sets — not just counts.
 */
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "descend/engine/padded_string.h"
#include "descend/obs/run_stats.h"
#include "descend/simd/dispatch.h"
#include "descend/util/budget.h"
#include "descend/util/status.h"

namespace descend {

/** Receiver of query matches, invoked in document order. */
class MatchSink {
public:
    virtual ~MatchSink() = default;
    /** @param offset byte offset of the matched value's first character. */
    virtual void on_match(std::size_t offset) = 0;
};

/** Counts matches — the benchmark sink (as in the paper's JSONSki tweak). */
class CountSink final : public MatchSink {
public:
    void on_match(std::size_t) override { ++count_; }
    std::size_t count() const noexcept { return count_; }

private:
    std::size_t count_ = 0;
};

/** Collects match offsets for verification and extraction. */
class OffsetSink final : public MatchSink {
public:
    void on_match(std::size_t offset) override { offsets_.push_back(offset); }
    const std::vector<std::size_t>& offsets() const noexcept { return offsets_; }

    /** Moves the collected offsets out (for the checked convenience API). */
    std::vector<std::size_t> take_offsets() noexcept { return std::move(offsets_); }

private:
    std::vector<std::size_t> offsets_;
};

/** Adapts a callable to a sink. */
class CallbackSink final : public MatchSink {
public:
    explicit CallbackSink(std::function<void(std::size_t)> callback)
        : callback_(std::move(callback))
    {
    }
    void on_match(std::size_t offset) override { callback_(offset); }

private:
    std::function<void(std::size_t)> callback_;
};

/**
 * Main-engine knobs. Defaults reproduce the paper's engine; the individual
 * switches exist for the ablation benchmarks and for differential testing
 * (every combination must produce identical matches).
 */
struct EngineOptions {
    /** SIMD level for the classifier pipeline (best available, capped by
     *  the DESCEND_SIMD_LEVEL env var). */
    simd::Level simd = simd::default_level();
    /** Toggle commas/colons off in internal states (skipping leaves). */
    bool leaf_skipping = true;
    /** Depth-classifier fast-forward over rejected subtrees (children). */
    bool child_skipping = true;
    /** Fast-forward after a unitary state's unique label matched (siblings). */
    bool sibling_skipping = true;
    /** memmem-based skipping to the label for `$..label`-style queries. */
    bool head_skipping = true;
    /**
     * The Section 4.5 "more refined classifier" extension (not part of the
     * paper's engine, hence off by default): in waiting, non-accepting
     * states, fast-forward to the next occurrence of the awaited label
     * within the current element instead of stepping through every
     * subtree. The paper names this as the improvement opportunity for
     * C2r-style queries; see bench_ablation.
     */
    bool label_within_skipping = false;
    /**
     * Whole-document structural validation (per-kind bracket balances and
     * end-of-input string state, accounted during block classification —
     * see engine/validation.h). On by default: garbage-in must produce a
     * diagnosable EngineStatus, never a silently truncated match set. The
     * ablation benchmarks may switch it off to measure the paper's
     * original trust-the-input pipeline.
     */
    bool validate_structure = true;
    /** Resource limits enforced during the run (see util/status.h). */
    EngineLimits limits;
    /**
     * Run governance (see util/budget.h): a steady-clock deadline plus an
     * optional CancelToken, polled at batch-refill granularity (once per
     * simd::kBatchSize bytes) in the batched engines and at an equivalent
     * stride in the scalar baselines. The default is inactive — no clock
     * reads, no overhead beyond one null test per refill. A violation
     * surfaces as kDeadlineExceeded/kCancelled with the offset of the
     * first unprocessed block. The referenced CancelToken (if any) must
     * outlive every run using these options.
     */
    RunBudget budget;
};

// RunStats lives in obs/run_stats.h: it backs the engine's status paths in
// every build and carries the full observability registry when DESCEND_OBS
// is on.

/** Status-carrying outcome of a counting convenience run. */
struct CountResult {
    EngineStatus status;
    /** Matches counted before the run completed or failed; meaningful as a
     *  complete answer only when status.ok(). */
    std::size_t count = 0;

    bool ok() const noexcept { return status.ok(); }
};

/** Status-carrying outcome of an offset-collecting convenience run. */
struct OffsetsResult {
    EngineStatus status;
    /** Offsets reported before the run completed or failed; a complete
     *  match set only when status.ok(). */
    std::vector<std::size_t> offsets;

    bool ok() const noexcept { return status.ok(); }
};

/** Common interface of the main engine and the baseline engines. */
class JsonPathEngine {
public:
    virtual ~JsonPathEngine() = default;

    /** Engine name for benchmark tables (e.g. "descend", "jsonski"). */
    virtual std::string name() const = 0;

    /**
     * Runs the compiled query over the document, reporting all matches.
     *
     * Result-style API: the returned EngineStatus is ok() for a complete
     * run over well-formed input, and otherwise carries the malformed-
     * input or resource-limit classification plus the byte offset where
     * the problem was detected. Matches reported before the problem was
     * discovered remain in the sink; a non-ok status means the match set
     * must be treated as incomplete. Never throws on document content;
     * use raise_status() (util/errors.h) to convert to exceptions.
     */
    virtual EngineStatus run(const PaddedString& document, MatchSink& sink) const = 0;

    /**
     * Runs with a counting sink and reports the status alongside the
     * count, so a truncated run cannot be mistaken for a small or empty
     * match set. Virtual so engines can provide a devirtualized counting
     * path (rsonpath monomorphizes its recorder the same way via Rust
     * generics).
     */
    virtual CountResult count_checked(const PaddedString& document) const
    {
        CountSink sink;
        CountResult result;
        result.status = run(document, sink);
        result.count = sink.count();
        return result;
    }

    /** Runs, collecting match offsets together with the run's status. */
    OffsetsResult offsets_checked(const PaddedString& document) const
    {
        OffsetSink sink;
        OffsetsResult result;
        result.status = run(document, sink);
        result.offsets = sink.take_offsets();
        return result;
    }

    /**
     * Convenience counting run that DISCARDS the EngineStatus: a failed
     * run is indistinguishable from a genuinely small match set. Only for
     * inputs already known to be well-formed (e.g. generated workloads);
     * prefer count_checked() everywhere else.
     */
    std::size_t count(const PaddedString& document) const
    {
        return count_checked(document).count;
    }

    /**
     * Convenience offset collection that DISCARDS the EngineStatus; same
     * caveat as count() — prefer offsets_checked().
     */
    std::vector<std::size_t> offsets(const PaddedString& document) const
    {
        return offsets_checked(document).offsets;
    }
};

}  // namespace descend
