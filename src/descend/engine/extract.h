/**
 * @file
 * Helpers turning reported match offsets into value slices. The engine
 * reports only where a match begins (that is all the streaming algorithm
 * knows); these helpers scan forward to delimit the complete value, so
 * examples and applications can materialize results.
 */
#pragma once

#include <string_view>
#include <vector>

#include "descend/engine/padded_string.h"

namespace descend {

/**
 * The complete JSON value starting at @p offset: for containers the
 * balanced {...}/[...] slice, for strings the quoted literal, for other
 * atoms the literal up to the next delimiter. String-aware.
 */
std::string_view extract_value(PaddedView document, std::size_t offset);

/** Extracts every match in one pass. */
std::vector<std::string_view> extract_values(PaddedView document,
                                             const std::vector<std::size_t>& offsets);

}  // namespace descend
