/**
 * @file
 * The descend engine: the paper's main algorithm (Section 3.4).
 *
 * A compiled query automaton is simulated over the structural-event stream
 * with a *depth-stack* (Section 3.2): one depth counter, a kind bit-stack
 * (object vs array per open element), and a sparse stack of
 * (state, depth) frames pushed only when a label transition changes the
 * DFA state. All four skipping techniques of Section 3.3 are employed:
 * leaves (comma/colon toggling), children (depth-classifier fast-forward
 * on transitions into the trash state), siblings (fast-forward after a
 * unitary state's unique label matched), and skipping to a label
 * (memmem-style head-skipping for queries that begin with `..label`).
 */
#pragma once

#include "descend/automaton/compiled.h"
#include "descend/engine/api.h"
#include "descend/engine/structural_iterator.h"

namespace descend {

/**
 * All run entry points are const and touch no mutable engine state: one
 * engine instance (and the compiled automaton it owns) can safely serve
 * concurrent runs from many threads, which is how the record-stream shard
 * scheduler (src/descend/stream) shares a single compiled query.
 */
class DescendEngine final : public JsonPathEngine {
public:
    DescendEngine(automaton::CompiledQuery query, EngineOptions options = {});

    /** Convenience: parse, compile and wrap a query. */
    static DescendEngine for_query(std::string_view query_text,
                                   EngineOptions options = {})
    {
        return DescendEngine(automaton::CompiledQuery::compile(query_text), options);
    }

    std::string name() const override;

    EngineStatus run(const PaddedString& document, MatchSink& sink) const override
    {
        return run(PaddedView(document), sink);
    }

    /**
     * Zero-copy slice run: @p document may be a window of a larger padded
     * buffer (a record of an NDJSON stream). Its size() is a hard end
     * bound — the classifiers mask the final partial block, so the bytes
     * beyond (the following records) are never interpreted. Reported
     * offsets and status offsets are relative to the slice start.
     */
    EngineStatus run(PaddedView document, MatchSink& sink) const;

    /** Devirtualized counting path (the sink is monomorphized away). */
    CountResult count_checked(const PaddedString& document) const override
    {
        return count_checked(PaddedView(document));
    }

    CountResult count_checked(PaddedView document) const;

    /** Like run(), additionally reporting what the engine did. */
    RunStats run_with_stats(PaddedView document, MatchSink& sink) const;

    /**
     * Budget-override run: governs this one run by @p budget instead of
     * options().budget — how the stream executor gives each record its
     * own slice of a stream-level budget without rebuilding engines.
     */
    RunStats run_with_stats(PaddedView document, MatchSink& sink,
                            const RunBudget& budget) const;

    const automaton::CompiledQuery& compiled_query() const noexcept { return query_; }
    const EngineOptions& options() const noexcept { return options_; }

private:
    /**
     * The simulation itself lives in main_engine.cpp as a template over
     * the sink type: the generic entry points instantiate it with the
     * abstract MatchSink, the counting path with a concrete counter.
     * @p budget governs the run (the plain entry points pass
     * options().budget; the stream executor passes per-record budgets).
     */
    template <typename Sink>
    RunStats dispatch(PaddedView document, Sink& sink,
                      const RunBudget& budget) const;

    automaton::CompiledQuery query_;
    EngineOptions options_;
    const simd::Kernels* kernels_;
};

}  // namespace descend
