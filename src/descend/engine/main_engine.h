/**
 * @file
 * The descend engine: the paper's main algorithm (Section 3.4).
 *
 * A compiled query automaton is simulated over the structural-event stream
 * with a *depth-stack* (Section 3.2): one depth counter, a kind bit-stack
 * (object vs array per open element), and a sparse stack of
 * (state, depth) frames pushed only when a label transition changes the
 * DFA state. All four skipping techniques of Section 3.3 are employed:
 * leaves (comma/colon toggling), children (depth-classifier fast-forward
 * on transitions into the trash state), siblings (fast-forward after a
 * unitary state's unique label matched), and skipping to a label
 * (memmem-style head-skipping for queries that begin with `..label`).
 */
#pragma once

#include "descend/automaton/compiled.h"
#include "descend/engine/api.h"
#include "descend/engine/structural_iterator.h"

namespace descend {

class DescendEngine final : public JsonPathEngine {
public:
    DescendEngine(automaton::CompiledQuery query, EngineOptions options = {});

    /** Convenience: parse, compile and wrap a query. */
    static DescendEngine for_query(std::string_view query_text,
                                   EngineOptions options = {})
    {
        return DescendEngine(automaton::CompiledQuery::compile(query_text), options);
    }

    std::string name() const override;
    EngineStatus run(const PaddedString& document, MatchSink& sink) const override;

    /** Devirtualized counting path (the sink is monomorphized away). */
    std::size_t count(const PaddedString& document) const override;

    /** Like run(), additionally reporting what the engine did. */
    RunStats run_with_stats(const PaddedString& document, MatchSink& sink) const;

    const automaton::CompiledQuery& compiled_query() const noexcept { return query_; }
    const EngineOptions& options() const noexcept { return options_; }

private:
    /**
     * The simulation itself lives in main_engine.cpp as a template over
     * the sink type: the generic entry points instantiate it with the
     * abstract MatchSink, the counting path with a concrete counter.
     */
    template <typename Sink>
    RunStats dispatch(const PaddedString& document, Sink& sink) const;

    automaton::CompiledQuery query_;
    EngineOptions options_;
    const simd::Kernels* kernels_;
};

}  // namespace descend
