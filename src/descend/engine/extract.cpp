#include "descend/engine/extract.h"

#include "descend/util/chars.h"

namespace descend {
namespace {

using chars::is_ws_byte;

/** Position one past the closing quote of the string opening at pos. */
std::size_t scan_string(const std::uint8_t* data, std::size_t size, std::size_t pos)
{
    ++pos;
    while (pos < size) {
        if (data[pos] == '\\') {
            pos += 2;
        } else if (data[pos] == '"') {
            return pos + 1;
        } else {
            ++pos;
        }
    }
    return size;
}

}  // namespace

std::string_view extract_value(PaddedView document, std::size_t offset)
{
    const std::uint8_t* data = document.data();
    std::size_t size = document.size();
    if (offset >= size) {
        return {};
    }
    std::uint8_t first = data[offset];
    std::size_t end = offset;
    if (first == '{' || first == '[') {
        std::uint8_t open = first;
        std::uint8_t close = first == '{' ? '}' : ']';
        int depth = 0;
        while (end < size) {
            std::uint8_t byte = data[end];
            if (byte == '"') {
                end = scan_string(data, size, end);
                continue;
            }
            if (byte == open) {
                ++depth;
            } else if (byte == close) {
                --depth;
                if (depth == 0) {
                    ++end;
                    break;
                }
            }
            ++end;
        }
    } else if (first == '"') {
        end = scan_string(data, size, offset);
    } else {
        while (end < size && !is_ws_byte(data[end]) && data[end] != ',' &&
               data[end] != '}' && data[end] != ']') {
            ++end;
        }
    }
    return {reinterpret_cast<const char*>(data + offset), end - offset};
}

std::vector<std::string_view> extract_values(PaddedView document,
                                             const std::vector<std::size_t>& offsets)
{
    std::vector<std::string_view> values;
    values.reserve(offsets.size());
    for (std::size_t offset : offsets) {
        values.push_back(extract_value(document, offset));
    }
    return values;
}

}  // namespace descend
