/**
 * @file
 * Malformed-input detection shared by the streaming engines.
 *
 * Two pieces:
 *
 *  - preflight_document(): O(1)-ish checks every engine performs before
 *    touching the classifier pipeline — size limit, UTF-8 BOM, and
 *    empty/whitespace-only input.
 *
 *  - StructuralValidator: a whole-document structural check that rides
 *    along with block classification instead of re-scanning. Every 64-byte
 *    block flows through exactly one quote-classification site (the
 *    structural iterator or the label search; the stop/resume protocol
 *    guarantees in-order, no-gap coverage), and each site reports its
 *    block here once. The validator accumulates per-kind bracket balances
 *    ('{'/'}' and '['/']' counted separately, in-string positions masked
 *    out) and remembers whether the final block ended inside a string.
 *
 *    The per-kind balances catch what the skipping engines structurally
 *    cannot see locally: any single byte-level corruption of a bracket
 *    (delete / insert / kind-flip) leaves at least one balance nonzero,
 *    even when a kind-filtered fast-forward would happily jump across the
 *    damage. The end-of-input string state catches unterminated strings,
 *    including a lone '\\' swallowing the padding. Cost: four eq_mask +
 *    four popcount per block, only in paths that already classify blocks.
 */
#pragma once

#include <cstddef>
#include <cstdint>

#include "descend/engine/padded_string.h"
#include "descend/simd/dispatch.h"
#include "descend/util/bits.h"
#include "descend/util/status.h"

namespace descend {

/** Size / BOM / emptiness checks shared by all four engines. */
EngineStatus preflight_document(PaddedView document, const EngineLimits& limits);

class StructuralValidator {
public:
    /**
     * Accounts one classified block from its pre-computed batch masks.
     * Call with the block's start offset and its clipped in-string mask;
     * blocks must arrive in order and are counted exactly once
     * (re-classification of an already-counted block, as the resume
     * protocol performs, is ignored via the monotone counter).
     *
     * @param valid mask of positions within the input's end bound. All
     *        ones for full blocks; a low-bits mask for the final partial
     *        block of a PaddedView slice, whose tail bytes belong to the
     *        surrounding buffer and must not move any balance. The
     *        in-string mask must already be clipped to @p valid.
     */
    void account(const simd::BlockMasks& masks, std::size_t block_start,
                 std::uint64_t in_string,
                 std::uint64_t valid = ~std::uint64_t{0}) noexcept
    {
        if (block_start != counted_until_) {
            return;
        }
        counted_until_ += simd::kBlockSize;
        std::uint64_t not_string = ~in_string & valid;
        obj_balance_ +=
            static_cast<std::int64_t>(bits::popcount(masks.open_braces & not_string));
        obj_balance_ -=
            static_cast<std::int64_t>(bits::popcount(masks.close_braces & not_string));
        arr_balance_ +=
            static_cast<std::int64_t>(bits::popcount(masks.open_brackets & not_string));
        arr_balance_ -=
            static_cast<std::int64_t>(bits::popcount(masks.close_brackets & not_string));
        // The string state at the end bound: the highest valid position's
        // in-string bit (valid is a contiguous low mask, so its popcount
        // is the index one past the top bit).
        int top = bits::popcount(valid) - 1;
        ends_in_string_ = top >= 0 && ((in_string >> top) & 1) != 0;
    }

    /** Number of bytes covered by accounted blocks so far. */
    std::size_t counted_until() const noexcept { return counted_until_; }

    /**
     * Final verdict once the engine has either classified the whole
     * document or verified that the unclassified tail is whitespace-only
     * (whitespace holds no brackets and cannot keep a string open, so the
     * accounted prefix is the whole structural story either way).
     */
    EngineStatus verdict(std::size_t document_size) const noexcept
    {
        if (ends_in_string_) {
            return {StatusCode::kTruncatedString, document_size};
        }
        if (obj_balance_ != 0 || arr_balance_ != 0) {
            return {StatusCode::kUnbalancedStructure, document_size};
        }
        return {};
    }

private:
    std::size_t counted_until_ = 0;
    std::int64_t obj_balance_ = 0;
    std::int64_t arr_balance_ = 0;
    bool ends_in_string_ = false;
};

}  // namespace descend
