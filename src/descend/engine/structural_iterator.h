/**
 * @file
 * The structural iterator (paper Sections 3.4 and 4.3): the abstraction the
 * main algorithm uses for all access to the stream. It runs the
 * multi-classifier pipeline (Section 4.5) on top of the batched block
 * stream: every block's masks (quotes, in-string, brackets, commas,
 * colons) come pre-classified from a single load of the block's bytes,
 * and the per-mode views are recompositions of those masks —
 *
 *  - normal iteration composes the structural mask (brackets always,
 *    commas/colons toggled on demand);
 *  - skip fast-forwards compose depth masks for one bracket kind.
 *
 * Switching between iterator and label search is the stop/resume protocol:
 * the quote-carry state at a block entry plus the block position form a
 * ResumePoint that both this iterator and the label search (head-skipping)
 * can save and restore, so classification is never repeated or lost.
 */
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

#include "descend/classify/block_batch.h"
#include "descend/classify/depth_classifier.h"
#include "descend/classify/quote_classifier.h"
#include "descend/classify/structural_classifier.h"
#include "descend/engine/padded_string.h"
#include "descend/engine/validation.h"
#include "descend/obs/accounting.h"
#include "descend/simd/dispatch.h"
#include "descend/util/bit_stack.h"
#include "descend/util/budget.h"
#include "descend/util/status.h"

namespace descend {

/** A saved pipeline position: block start, quote state on entry to that
 *  block, and the first unconsumed bit within it. */
struct ResumePoint {
    std::size_t block_start = 0;
    classify::QuoteState quote_state;
    int floor = 0;
};

class StructuralIterator {
public:
    enum class Kind : std::uint8_t {
        kNone,     ///< end of input
        kOpening,  ///< '{' or '['
        kClosing,  ///< '}' or ']'
        kColon,
        kComma,
    };

    struct Event {
        Kind kind = Kind::kNone;
        std::uint8_t byte = 0;
        std::size_t pos = 0;
    };

    /**
     * @param input the document or slice to iterate. size() is a hard end
     *        bound: when @p input is a mid-stream record slice, the bytes
     *        past it belong to the following records, so the final partial
     *        block's classification is masked to the bound — no event,
     *        quote state, or validator accounting ever leaks in from
     *        past-the-end bytes.
     * @param validator optional shared whole-document validator; every
     *        block this iterator classifies is accounted there once.
     * @param max_skip_depth relative-nesting bound enforced inside the
     *        depth-classifier fast-forwards (the engine bounds the depth
     *        it tracks itself; this guards the depth the skips traverse).
     * @param accountant optional shared obs block accountant: each block
     *        this iterator classifies is attributed (exactly once, like
     *        the validator's accounting) to the pipeline mode active at
     *        its first classification — structural iteration or one of
     *        the skip fast-forwards.
     * @param budget optional run budget, polled at batch-refill
     *        granularity by the underlying block stream. A violation
     *        parks the iterator (like malformed input) with status()
     *        kDeadlineExceeded/kCancelled at the first unprocessed block.
     *        Must outlive the iterator when non-null.
     */
    StructuralIterator(PaddedView input, const simd::Kernels& kernels,
                       StructuralValidator* validator = nullptr,
                       std::size_t max_skip_depth = EngineLimits::kUnlimited,
                       obs::BlockAccountant* accountant = nullptr,
                       const RunBudget* budget = nullptr);

    /**
     * Malformed-input flag raised while iterating: truncated string at
     * end of input, a fast-forward running off the end (unbalanced
     * structure), or the skip-depth limit. Once set, the iterator parks
     * at end of input and next() reports kNone, so engines observe the
     * status at their end-of-input handling.
     */
    const EngineStatus& status() const noexcept { return status_; }

    /** Consumes and returns the next enabled structural character. */
    Event next();

    /** Returns the next enabled structural character without consuming. */
    Event peek();

    /**
     * Enables/disables comma and colon events. Enabling recomposes the
     * remainder of the current block's structural mask so the new events
     * surface immediately (a free mask operation on the cached batch —
     * no re-classification). Disabling recomposes only when
     * @p eager_disable is set; otherwise, per Section 4.3 of the paper,
     * already-surfaced occurrences in the current block are simply stepped
     * over by the consumer (the engine's event handlers verify transitions
     * explicitly, so stale events are harmless — except to the
     * index-counting extension, which passes eager_disable).
     */
    void set_commas(bool enabled, bool eager_disable = false);
    void set_colons(bool enabled, bool eager_disable = false);
    bool commas_enabled() const noexcept { return commas_on_; }
    bool colons_enabled() const noexcept { return colons_on_; }

    /**
     * The label preceding the structural character at @p pos, obtained by
     * backtracking through whitespace (and a colon, for opening characters)
     * as described in Section 3.4. Returns the raw bytes between the label
     * quotes, or nullopt for the artificial label of array entries and the
     * document root.
     */
    std::optional<std::string_view> label_before(std::size_t pos) const;

    /**
     * Skipping children (Section 3.3): fast-forwards from just after an
     * opening character of the given kind to just after its matching
     * closer, using the depth-mask view of the batch stream.
     *
     * @param base_depth containers already open *around* the element being
     *        skipped. The fast-forward enforces the depth limit in
     *        absolute terms (base + relative nesting), so a limit hit
     *        inside a skipped region reports the same kDepthLimit offset
     *        an engine that descends (e.g. the DOM baseline) would.
     */
    void skip_element(std::uint8_t opening_byte, std::size_t base_depth = 0);

    /**
     * Skipping siblings (Section 3.3): fast-forwards to the closing
     * character of the element we are currently inside, leaving that
     * closer as the next event (it still drives the depth-stack).
     * @param base_depth containers open around the *parent* element.
     */
    void skip_to_parent_close(bool parent_is_object, std::size_t base_depth = 0);

    /** Outcome of skip_to_label_within (the Section 4.5 extension). */
    struct WithinResult {
        enum class Outcome : std::uint8_t {
            kFoundLabel,   ///< a member with the label found inside the element
            kElementEnd,   ///< the element closed first (closer left pending)
            kInputEnd,     ///< ran off the end (malformed input)
        };
        Outcome outcome = Outcome::kInputEnd;
        std::size_t colon_pos = 0;  ///< kFoundLabel: the member's colon
        std::size_t value_pos = 0;  ///< kFoundLabel: first byte of the value
    };

    /**
     * The "more refined classifier" the paper's Section 4.5 envisions:
     * fast-forwards to the next occurrence of @p escaped_label as a member
     * label anywhere inside the element the iterator is currently in,
     * or to the element's closing character, whichever comes first.
     *
     * Tracks only bracket characters and candidate string-openings instead
     * of full structural classification — no label backtracking, no
     * automaton transitions for the skipped subtrees. The containers that
     * are still open when the label is found are appended to @p opened
     * (their kinds, outermost first), so the caller can extend its own
     * bookkeeping; @p relative_depth carries the scan depth across calls
     * (start it at 1 when just inside the element).
     *
     * Only sound for *waiting*, non-accepting automaton states (nothing in
     * the skipped stream can change the state or produce a match); the
     * engine checks that. @p base_depth: containers open around the element
     * being scanned (absolute-depth limit enforcement, as skip_element).
     */
    WithinResult skip_to_label_within(std::string_view escaped_label,
                                      BitStack& opened, int& relative_depth,
                                      std::size_t base_depth = 0);

    /** Absolute offset of the next unconsumed byte. */
    std::size_t position() const noexcept
    {
        return block_start_ + static_cast<std::size_t>(floor_);
    }

    /** Saves the pipeline position for another component to resume from. */
    ResumePoint resume_point() const;

    /** Restores the pipeline to a saved position. */
    void resume(const ResumePoint& point);

    /** First non-whitespace byte at or after @p pos (clamped to size). */
    std::size_t first_non_ws(std::size_t pos) const noexcept;

    const std::uint8_t* data() const noexcept { return data_; }
    std::size_t size() const noexcept { return size_; }

private:
    /** Mask of positions within the end bound for the current block: all
     *  ones except in the final partial block of a slice, where only bits
     *  below size() - block_start_ are live. Callable only while
     *  block_start_ < end_. */
    std::uint64_t block_valid_mask() const noexcept;

    /** The structural mask of a pre-classified block under the current
     *  comma/colon toggles — a pure recomposition of cached masks. */
    std::uint64_t compose_structural(const simd::BlockMasks& masks) const noexcept;

    /** Pulls the block at block_start_ from the batch stream (quotes
     *  always; the structural mask unless we are about to run the depth
     *  view instead). */
    void classify_block(bool with_structural);

    /** Advances to the next block; returns false at end of input. */
    bool advance_block(bool with_structural);

    /** Shared fast-forward core for both skip flavours. */
    void skip_until_depth_zero(classify::BracketKind kind, bool consume_closer,
                               std::size_t base_depth);

    Event event_at(int bit) const;

    /** Records the first malformed-input condition and parks at end. */
    void fail(StatusCode code, std::size_t offset);

    const std::uint8_t* data_;
    std::size_t size_;
    std::size_t end_;  ///< block-aligned end of classified input

    classify::BatchedBlockStream blocks_;
    bool commas_on_ = false;
    bool colons_on_ = false;
    StructuralValidator* validator_ = nullptr;
    obs::BlockAccountant* accountant_ = nullptr;
    std::size_t max_skip_depth_;
    EngineStatus status_;

    /** The shared obs registry, for counters beyond block attribution
     *  (label-search candidates in the within-skip scan). */
    obs::Counters* obs_counters() const noexcept
    {
        return accountant_ == nullptr ? nullptr : accountant_->counters();
    }

    /** Repositions to @p pos (>= current position), rolling the batch
     *  stream forward and recomposing the target block from there. */
    void seek(std::size_t pos);

    std::size_t block_start_ = 0;
    int floor_ = 0;
    std::uint64_t in_string_ = 0;
    std::uint64_t unescaped_quotes_ = 0;
    std::uint64_t struct_mask_ = 0;
    classify::QuoteState block_entry_quote_state_;
};

}  // namespace descend
