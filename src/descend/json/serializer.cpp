#include "descend/json/serializer.h"

#include <charconv>
#include <cmath>

namespace descend::json {
namespace {

void append_number(std::string& out, double number)
{
    // Integral values within the exact double range print without a decimal
    // point, which keeps generated datasets compact and readable.
    if (number == std::floor(number) && std::abs(number) < 1e15) {
        char buffer[32];
        auto [ptr, ec] = std::to_chars(buffer, buffer + sizeof(buffer),
                                       static_cast<long long>(number));
        out.append(buffer, ptr);
        return;
    }
    char buffer[40];
    auto [ptr, ec] = std::to_chars(buffer, buffer + sizeof(buffer), number);
    out.append(buffer, ptr);
}

class Serializer {
public:
    explicit Serializer(const SerializeOptions& options) : options_(options) {}

    std::string run(const Value& value)
    {
        write(value, 0);
        return std::move(out_);
    }

private:
    void newline(int depth)
    {
        if (options_.indent >= 0) {
            out_.push_back('\n');
            out_.append(static_cast<std::size_t>(options_.indent * depth), ' ');
        }
    }

    void write(const Value& value, int depth)
    {
        switch (value.type()) {
            case Type::kNull: out_ += "null"; break;
            case Type::kBool: out_ += value.as_bool() ? "true" : "false"; break;
            case Type::kNumber: append_number(out_, value.as_number()); break;
            case Type::kString:
                out_.push_back('"');
                out_ += escape(value.as_string());
                out_.push_back('"');
                break;
            case Type::kObject: {
                out_.push_back('{');
                bool first = true;
                for (const Member& member : value.members()) {
                    if (!first) {
                        out_.push_back(',');
                    }
                    first = false;
                    newline(depth + 1);
                    out_.push_back('"');
                    out_ += member.key;  // keys are stored raw (pre-escaped)
                    out_ += "\":";
                    if (options_.indent >= 0) {
                        out_.push_back(' ');
                    }
                    write(*member.value, depth + 1);
                }
                if (!value.members().empty()) {
                    newline(depth);
                }
                out_.push_back('}');
                break;
            }
            case Type::kArray: {
                out_.push_back('[');
                bool first = true;
                for (const Value* element : value.elements()) {
                    if (!first) {
                        out_.push_back(',');
                    }
                    first = false;
                    newline(depth + 1);
                    write(*element, depth + 1);
                }
                if (!value.elements().empty()) {
                    newline(depth);
                }
                out_.push_back(']');
                break;
            }
        }
    }

    SerializeOptions options_;
    std::string out_;
};

}  // namespace

std::string serialize(const Value& value, const SerializeOptions& options)
{
    return Serializer(options).run(value);
}

}  // namespace descend::json
