/**
 * @file
 * A scalar, byte-at-a-time SAX tokenizer.
 *
 * This is the substrate of the JsonSurfer-like baseline engine: the same
 * streaming computational model as the paper's slow competitor — every
 * byte inspected sequentially, events delivered through a handler, a full
 * stack maintained by the consumer, and no SIMD anywhere.
 *
 * The tokenizer is permissive about token grammar (like the streaming
 * engines) but handles strings/escapes exactly, and reports a structured
 * status for input that ends inside a string.
 */
#pragma once

#include <cstddef>
#include <string_view>

#include "descend/util/status.h"

namespace descend::json {

/**
 * Receiver of SAX events. Offsets are byte positions into the document.
 * Keys and atoms are passed in raw form (string contents still escaped,
 * numbers as text).
 */
class SaxHandler {
public:
    virtual ~SaxHandler() = default;

    virtual void on_object_start(std::size_t offset) = 0;
    virtual void on_object_end(std::size_t offset) = 0;
    virtual void on_array_start(std::size_t offset) = 0;
    virtual void on_array_end(std::size_t offset) = 0;
    /** An object member key (raw bytes between the quotes). */
    virtual void on_key(std::string_view raw_key, std::size_t offset) = 0;
    /** Any atomic value: string (raw, without quotes), number, bool, null. */
    virtual void on_atom(std::string_view raw_atom, std::size_t offset) = 0;
};

/**
 * Streams the document through the handler. Returns kTruncatedString
 * (offset of the opening quote) when the input ends inside a string —
 * including a lone '\\' as the final byte; structural balance is the
 * consumer's job (the handler sees every bracket event).
 */
EngineStatus sax_parse(std::string_view text, SaxHandler& handler);

}  // namespace descend::json
