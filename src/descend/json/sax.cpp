#include "descend/json/sax.h"

namespace descend::json {
namespace {

bool is_ws(char c)
{
    return c == ' ' || c == '\t' || c == '\n' || c == '\r';
}

struct StringScan {
    std::size_t end;  ///< one past the closing quote (input size if unclosed)
    bool closed;
};

/** Scans a raw string starting at the opening quote. */
StringScan scan_string(std::string_view text, std::size_t pos)
{
    ++pos;  // opening quote
    while (pos < text.size()) {
        char c = text[pos];
        if (c == '\\') {
            if (pos + 1 >= text.size()) {
                // A lone backslash as the final byte: the escape — and the
                // string — are truncated.
                return {text.size(), false};
            }
            pos += 2;
        } else if (c == '"') {
            return {pos + 1, true};
        } else {
            ++pos;
        }
    }
    return {text.size(), false};
}

/** Scans a non-string atom (number / true / false / null). Every
 *  structural byte ends the atom — including openers and quotes, which are
 *  grammatically impossible inside an atom but must surface as events so
 *  damaged input (e.g. `12{3`) is seen the same way the SIMD engines'
 *  classifiers see it: brackets outside strings are always structural. */
std::size_t scan_atom(std::string_view text, std::size_t pos)
{
    while (pos < text.size()) {
        char c = text[pos];
        if (is_ws(c) || c == ',' || c == ':' || c == '}' || c == ']' ||
            c == '{' || c == '[' || c == '"') {
            return pos;
        }
        ++pos;
    }
    return pos;
}

}  // namespace

EngineStatus sax_parse(std::string_view text, SaxHandler& handler)
{
    std::size_t pos = 0;
    while (pos < text.size()) {
        char c = text[pos];
        if (is_ws(c) || c == ',' || c == ':') {
            ++pos;
            continue;
        }
        switch (c) {
            case '{': handler.on_object_start(pos); ++pos; break;
            case '}': handler.on_object_end(pos); ++pos; break;
            case '[': handler.on_array_start(pos); ++pos; break;
            case ']': handler.on_array_end(pos); ++pos; break;
            case '"': {
                StringScan scan = scan_string(text, pos);
                if (!scan.closed) {
                    return {StatusCode::kTruncatedString, pos};
                }
                std::string_view raw = text.substr(pos + 1, scan.end - pos - 2);
                // A string followed (after whitespace) by a colon is a key.
                std::size_t after = scan.end;
                while (after < text.size() && is_ws(text[after])) {
                    ++after;
                }
                if (after < text.size() && text[after] == ':') {
                    handler.on_key(raw, pos);
                    pos = after + 1;
                } else {
                    handler.on_atom(raw, pos);
                    pos = scan.end;
                }
                break;
            }
            default: {
                std::size_t end = scan_atom(text, pos);
                handler.on_atom(text.substr(pos, end - pos), pos);
                pos = end;
                break;
            }
        }
    }
    return {};
}

}  // namespace descend::json
