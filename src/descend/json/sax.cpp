#include "descend/json/sax.h"

namespace descend::json {
namespace {

bool is_ws(char c)
{
    return c == ' ' || c == '\t' || c == '\n' || c == '\r';
}

/** Scans a raw string starting at the opening quote; returns the position
 *  one past the closing quote. */
std::size_t scan_string(std::string_view text, std::size_t pos)
{
    ++pos;  // opening quote
    while (pos < text.size()) {
        char c = text[pos];
        if (c == '\\') {
            pos += 2;
        } else if (c == '"') {
            return pos + 1;
        } else {
            ++pos;
        }
    }
    return pos;
}

/** Scans a non-string atom (number / true / false / null). */
std::size_t scan_atom(std::string_view text, std::size_t pos)
{
    while (pos < text.size()) {
        char c = text[pos];
        if (is_ws(c) || c == ',' || c == '}' || c == ']') {
            return pos;
        }
        ++pos;
    }
    return pos;
}

}  // namespace

void sax_parse(std::string_view text, SaxHandler& handler)
{
    std::size_t pos = 0;
    while (pos < text.size()) {
        char c = text[pos];
        if (is_ws(c) || c == ',' || c == ':') {
            ++pos;
            continue;
        }
        switch (c) {
            case '{': handler.on_object_start(pos); ++pos; break;
            case '}': handler.on_object_end(pos); ++pos; break;
            case '[': handler.on_array_start(pos); ++pos; break;
            case ']': handler.on_array_end(pos); ++pos; break;
            case '"': {
                std::size_t end = scan_string(text, pos);
                std::string_view raw = text.substr(pos + 1, end - pos - 2);
                // A string followed (after whitespace) by a colon is a key.
                std::size_t after = end;
                while (after < text.size() && is_ws(text[after])) {
                    ++after;
                }
                if (after < text.size() && text[after] == ':') {
                    handler.on_key(raw, pos);
                    pos = after + 1;
                } else {
                    handler.on_atom(raw, pos);
                    pos = end;
                }
                break;
            }
            default: {
                std::size_t end = scan_atom(text, pos);
                handler.on_atom(text.substr(pos, end - pos), pos);
                pos = end;
                break;
            }
        }
    }
}

}  // namespace descend::json
