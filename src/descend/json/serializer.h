/**
 * @file
 * JSON serialization of DOM values.
 */
#pragma once

#include <string>

#include "descend/json/dom.h"

namespace descend::json {

struct SerializeOptions {
    /** Spaces per indent level; negative means compact single-line output. */
    int indent = -1;
};

/** Serializes a value (and its subtree) back to JSON text. */
std::string serialize(const Value& value, const SerializeOptions& options = {});

}  // namespace descend::json
