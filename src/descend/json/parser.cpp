/**
 * @file
 * Strict recursive-descent JSON parser for the DOM.
 */
#include <cctype>
#include <charconv>
#include <cstring>

#include "descend/json/dom.h"
#include "descend/util/errors.h"
#include "descend/util/utf8.h"

namespace descend::json {
namespace {

bool is_ws(char c)
{
    return c == ' ' || c == '\t' || c == '\n' || c == '\r';
}

bool is_hex(char c)
{
    return (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F');
}

}  // namespace

class Parser {
public:
    Parser(std::string_view text, const ParseOptions& options)
        : text_(text), options_(options)
    {
    }

    Document parse()
    {
        Document document;
        document_ = &document;
        skip_ws();
        document.root_ = parse_value(0);
        skip_ws();
        if (pos_ != text_.size()) {
            fail("trailing content after document", StatusCode::kTrailingContent);
        }
        return document;
    }

private:
    [[noreturn]] void fail(const std::string& message,
                           StatusCode code = StatusCode::kInvalidDocument) const
    {
        throw ParseError(message, pos_, code);
    }

    bool at_end() const { return pos_ >= text_.size(); }

    char peek() const
    {
        if (at_end()) {
            // A value or separator was expected: the structure is open.
            throw ParseError("unexpected end of input", pos_,
                             StatusCode::kUnbalancedStructure);
        }
        return text_[pos_];
    }

    char advance()
    {
        char c = peek();
        ++pos_;
        return c;
    }

    void expect(char c)
    {
        if (peek() != c) {
            fail(std::string("expected '") + c + "'");
        }
        ++pos_;
    }

    void skip_ws()
    {
        while (pos_ < text_.size() && is_ws(text_[pos_])) {
            ++pos_;
        }
    }

    Value* parse_value(std::size_t depth)
    {
        Value* value = document_->allocate();
        value->offset_ = pos_;
        switch (peek()) {
            case '{': parse_object(value, depth); break;
            case '[': parse_array(value, depth); break;
            case '"':
                value->type_ = Type::kString;
                value->string_ = unescape(parse_raw_string());
                break;
            case 't': parse_literal("true"); value->type_ = Type::kBool;
                      value->bool_ = true; break;
            case 'f': parse_literal("false"); value->type_ = Type::kBool;
                      value->bool_ = false; break;
            case 'n': parse_literal("null"); value->type_ = Type::kNull; break;
            default: parse_number(value); break;
        }
        return value;
    }

    void parse_literal(const char* literal)
    {
        std::size_t length = std::strlen(literal);
        if (text_.size() - pos_ < length ||
            text_.compare(pos_, length, literal) != 0) {
            fail(std::string("invalid literal, expected '") + literal + "'");
        }
        pos_ += length;
    }

    void parse_object(Value* value, std::size_t depth)
    {
        // @p depth containers enclose this one; opening it makes depth + 1,
        // which must stay within the limit (matching the streaming engines'
        // open-container count exactly).
        if (depth >= options_.max_depth) {
            fail("maximum nesting depth exceeded", StatusCode::kDepthLimit);
        }
        value->type_ = Type::kObject;
        expect('{');
        skip_ws();
        if (peek() == '}') {
            ++pos_;
            return;
        }
        while (true) {
            skip_ws();
            if (peek() != '"') {
                fail("expected object key");
            }
            std::size_t key_offset = pos_ + 1;  // first byte after the quote
            std::string key(parse_raw_string());
            // Validate the key's escapes eagerly; the raw form is stored.
            unescape(key);
            if (!util::is_valid_utf8(key)) {
                throw ParseError("invalid UTF-8 in object key", key_offset,
                                 StatusCode::kInvalidUtf8InLabel);
            }
            skip_ws();
            expect(':');
            skip_ws();
            Value* member = parse_value(depth + 1);
            value->members_.push_back({std::move(key), member});
            skip_ws();
            char c = advance();
            if (c == '}') {
                return;
            }
            if (c != ',') {
                --pos_;
                fail("expected ',' or '}' in object",
                     StatusCode::kUnbalancedStructure);
            }
        }
    }

    void parse_array(Value* value, std::size_t depth)
    {
        if (depth >= options_.max_depth) {
            fail("maximum nesting depth exceeded", StatusCode::kDepthLimit);
        }
        value->type_ = Type::kArray;
        expect('[');
        skip_ws();
        if (peek() == ']') {
            ++pos_;
            return;
        }
        while (true) {
            skip_ws();
            value->elements_.push_back(parse_value(depth + 1));
            skip_ws();
            char c = advance();
            if (c == ']') {
                return;
            }
            if (c != ',') {
                --pos_;
                fail("expected ',' or ']' in array",
                     StatusCode::kUnbalancedStructure);
            }
        }
    }

    /** Parses a quoted string, returning the raw bytes between the quotes. */
    std::string_view parse_raw_string()
    {
        expect('"');
        std::size_t open = pos_ - 1;
        std::size_t start = pos_;
        while (true) {
            if (at_end()) {
                throw ParseError("unterminated string", open,
                                 StatusCode::kTruncatedString);
            }
            char c = text_[pos_++];
            if (c == '"') {
                return text_.substr(start, pos_ - 1 - start);
            }
            if (c == '\\') {
                if (at_end()) {
                    // A lone backslash as the final byte truncates both the
                    // escape and the string.
                    throw ParseError("unterminated string", open,
                                     StatusCode::kTruncatedString);
                }
                char escaped = text_[pos_++];
                if (escaped == 'u') {
                    for (int i = 0; i < 4; ++i) {
                        if (at_end() || !is_hex(text_[pos_])) {
                            fail("invalid \\u escape");
                        }
                        ++pos_;
                    }
                } else if (std::strchr("\"\\/bfnrt", escaped) == nullptr) {
                    --pos_;
                    fail("invalid escape character");
                }
            } else if (static_cast<unsigned char>(c) < 0x20) {
                --pos_;
                fail("unescaped control character in string");
            }
        }
    }

    void parse_number(Value* value)
    {
        std::size_t start = pos_;
        if (peek() == '-') {
            ++pos_;
        }
        if (at_end() || !std::isdigit(static_cast<unsigned char>(peek()))) {
            fail("invalid number");
        }
        if (peek() == '0') {
            ++pos_;
        } else {
            while (!at_end() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
                ++pos_;
            }
        }
        if (!at_end() && text_[pos_] == '.') {
            ++pos_;
            if (at_end() || !std::isdigit(static_cast<unsigned char>(peek()))) {
                fail("digit expected after decimal point");
            }
            while (!at_end() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
                ++pos_;
            }
        }
        if (!at_end() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            ++pos_;
            if (!at_end() && (text_[pos_] == '+' || text_[pos_] == '-')) {
                ++pos_;
            }
            if (at_end() || !std::isdigit(static_cast<unsigned char>(peek()))) {
                fail("digit expected in exponent");
            }
            while (!at_end() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
                ++pos_;
            }
        }
        value->type_ = Type::kNumber;
        std::string_view digits = text_.substr(start, pos_ - start);
        double parsed = 0;
        auto [ptr, ec] = std::from_chars(digits.data(), digits.data() + digits.size(),
                                         parsed);
        if (ec != std::errc() || ptr != digits.data() + digits.size()) {
            fail("number out of range");
        }
        value->number_ = parsed;
    }

    std::string_view text_;
    ParseOptions options_;
    std::size_t pos_ = 0;
    Document* document_ = nullptr;
};

Document parse(std::string_view text, const ParseOptions& options)
{
    return Parser(text, options).parse();
}

bool is_valid(std::string_view text)
{
    try {
        parse(text);
        return true;
    } catch (const ParseError&) {
        return false;
    }
}

std::string unescape(std::string_view raw)
{
    std::string result;
    result.reserve(raw.size());
    for (std::size_t i = 0; i < raw.size(); ++i) {
        char c = raw[i];
        if (c != '\\') {
            result.push_back(c);
            continue;
        }
        if (i + 1 >= raw.size()) {
            throw ParseError("dangling backslash", i);
        }
        char escaped = raw[++i];
        switch (escaped) {
            case '"': result.push_back('"'); break;
            case '\\': result.push_back('\\'); break;
            case '/': result.push_back('/'); break;
            case 'b': result.push_back('\b'); break;
            case 'f': result.push_back('\f'); break;
            case 'n': result.push_back('\n'); break;
            case 'r': result.push_back('\r'); break;
            case 't': result.push_back('\t'); break;
            case 'u': {
                if (i + 4 >= raw.size()) {
                    throw ParseError("truncated \\u escape", i);
                }
                unsigned code = 0;
                for (int k = 0; k < 4; ++k) {
                    char h = raw[++i];
                    code <<= 4;
                    if (h >= '0' && h <= '9') {
                        code |= static_cast<unsigned>(h - '0');
                    } else if (h >= 'a' && h <= 'f') {
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    } else if (h >= 'A' && h <= 'F') {
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    } else {
                        throw ParseError("invalid \\u escape", i);
                    }
                }
                // Encode as UTF-8. Surrogate pairs are passed through as two
                // separate code units encoded independently (lossy but
                // round-trippable for our purposes).
                if (code < 0x80) {
                    result.push_back(static_cast<char>(code));
                } else if (code < 0x800) {
                    result.push_back(static_cast<char>(0xc0 | (code >> 6)));
                    result.push_back(static_cast<char>(0x80 | (code & 0x3f)));
                } else {
                    result.push_back(static_cast<char>(0xe0 | (code >> 12)));
                    result.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
                    result.push_back(static_cast<char>(0x80 | (code & 0x3f)));
                }
                break;
            }
            default:
                throw ParseError("invalid escape character", i);
        }
    }
    return result;
}

std::string escape(std::string_view text)
{
    static const char* hex = "0123456789abcdef";
    std::string result;
    result.reserve(text.size());
    for (char c : text) {
        unsigned char byte = static_cast<unsigned char>(c);
        switch (c) {
            case '"': result += "\\\""; break;
            case '\\': result += "\\\\"; break;
            case '\b': result += "\\b"; break;
            case '\f': result += "\\f"; break;
            case '\n': result += "\\n"; break;
            case '\r': result += "\\r"; break;
            case '\t': result += "\\t"; break;
            default:
                if (byte < 0x20) {
                    result += "\\u00";
                    result.push_back(hex[byte >> 4]);
                    result.push_back(hex[byte & 0x0f]);
                } else {
                    result.push_back(c);
                }
        }
    }
    return result;
}

}  // namespace descend::json
