/**
 * @file
 * A straightforward JSON Document Object Model.
 *
 * This is the substrate for the correctness oracle (baselines/dom_engine),
 * for validating generated workloads, and for the examples. It is *not* on
 * the streaming engine's hot path — the whole point of the paper is that
 * the engine never materializes a DOM.
 *
 * Object member keys are stored in their raw form (the bytes between the
 * quotes, escapes untouched), because that is what the streaming engine
 * compares labels against; string *values* are stored unescaped for
 * convenience. Duplicate keys are preserved in document order.
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace descend::json {

enum class Type : std::uint8_t {
    kNull,
    kBool,
    kNumber,
    kString,
    kObject,
    kArray,
};

class Value;

/** An object member: raw key plus value, in document order. */
struct Member {
    std::string key;  ///< raw bytes between the key's quotes
    Value* value;     ///< owned by the enclosing Document arena
};

/**
 * One JSON value. Values are arena-allocated by Document and referenced by
 * raw pointer internally; users normally interact through Document::root().
 */
class Value {
public:
    Type type() const noexcept { return type_; }
    bool is_object() const noexcept { return type_ == Type::kObject; }
    bool is_array() const noexcept { return type_ == Type::kArray; }
    bool is_container() const noexcept { return is_object() || is_array(); }
    bool is_string() const noexcept { return type_ == Type::kString; }
    bool is_number() const noexcept { return type_ == Type::kNumber; }
    bool is_bool() const noexcept { return type_ == Type::kBool; }
    bool is_null() const noexcept { return type_ == Type::kNull; }

    /** Byte offset of this value's first character in the source text. */
    std::size_t source_offset() const noexcept { return offset_; }

    bool as_bool() const noexcept { return bool_; }
    double as_number() const noexcept { return number_; }
    /** Unescaped string contents. */
    const std::string& as_string() const noexcept { return string_; }

    const std::vector<Member>& members() const noexcept { return members_; }
    const std::vector<Value*>& elements() const noexcept { return elements_; }

    /** First member with the given raw key, or nullptr. */
    const Value* find(std::string_view raw_key) const noexcept;

    /** Number of nodes in the subtree rooted here (including this node). */
    std::size_t subtree_size() const noexcept;

    /** Maximum nesting depth of the subtree (a leaf has depth 1). */
    std::size_t subtree_depth() const noexcept;

private:
    friend class Document;
    friend class Parser;

    Type type_ = Type::kNull;
    std::size_t offset_ = 0;
    bool bool_ = false;
    double number_ = 0;
    std::string string_;
    std::vector<Member> members_;
    std::vector<Value*> elements_;
};

/**
 * An owning parsed document: an arena of values plus the root. Movable,
 * non-copyable.
 */
class Document {
public:
    Document() = default;
    Document(Document&&) noexcept = default;
    Document& operator=(Document&&) noexcept = default;
    Document(const Document&) = delete;
    Document& operator=(const Document&) = delete;

    const Value& root() const noexcept { return *root_; }
    bool empty() const noexcept { return root_ == nullptr; }

private:
    friend class Parser;

    Value* allocate();

    std::vector<std::unique_ptr<Value>> arena_;
    Value* root_ = nullptr;
};

/** Options for the strict parser. */
struct ParseOptions {
    /** Maximum container nesting; protects the recursive parser's stack
     *  (matches EngineLimits::max_depth and simdjson's default). */
    std::size_t max_depth = 1024;
};

/**
 * Strictly parses a JSON document. Throws ParseError (with byte offset) on
 * malformed input. Validates structure, literals, numbers and escape
 * sequences; does not validate raw UTF-8 byte sequences inside strings.
 */
Document parse(std::string_view text, const ParseOptions& options = {});

/** True iff the text parses cleanly. */
bool is_valid(std::string_view text);

/** Unescapes the raw contents of a JSON string (no surrounding quotes).
 *  Throws ParseError on invalid escapes. */
std::string unescape(std::string_view raw);

/** Escapes a raw byte string into minimal JSON string contents. */
std::string escape(std::string_view text);

}  // namespace descend::json
