#include "descend/json/dom.h"

#include <algorithm>

namespace descend::json {

const Value* Value::find(std::string_view raw_key) const noexcept
{
    for (const Member& member : members_) {
        if (member.key == raw_key) {
            return member.value;
        }
    }
    return nullptr;
}

std::size_t Value::subtree_size() const noexcept
{
    std::size_t total = 1;
    for (const Member& member : members_) {
        total += member.value->subtree_size();
    }
    for (const Value* element : elements_) {
        total += element->subtree_size();
    }
    return total;
}

std::size_t Value::subtree_depth() const noexcept
{
    std::size_t deepest = 0;
    for (const Member& member : members_) {
        deepest = std::max(deepest, member.value->subtree_depth());
    }
    for (const Value* element : elements_) {
        deepest = std::max(deepest, element->subtree_depth());
    }
    return deepest + 1;
}

Value* Document::allocate()
{
    arena_.push_back(std::make_unique<Value>());
    return arena_.back().get();
}

}  // namespace descend::json
