#include "descend/automaton/nfa.h"

#include <algorithm>

#include "descend/util/errors.h"

namespace descend::automaton {

Alphabet Alphabet::from_query(const query::Query& query)
{
    Alphabet alphabet;
    for (const query::Selector& selector : query.selectors()) {
        switch (selector.kind) {
            case query::SelectorKind::kChild:
            case query::SelectorKind::kDescendant:
                if (std::find(alphabet.labels_.begin(), alphabet.labels_.end(),
                              selector.label_escaped) == alphabet.labels_.end()) {
                    alphabet.labels_.push_back(selector.label_escaped);
                }
                break;
            case query::SelectorKind::kChildIndex:
                if (std::find(alphabet.indices_.begin(), alphabet.indices_.end(),
                              selector.index) == alphabet.indices_.end()) {
                    alphabet.indices_.push_back(selector.index);
                }
                break;
            default:
                break;
        }
    }
    return alphabet;
}

Alphabet Alphabet::from_queries(const std::vector<query::Query>& queries)
{
    Alphabet alphabet;
    for (const query::Query& query : queries) {
        for (const query::Selector& selector : query.selectors()) {
            switch (selector.kind) {
                case query::SelectorKind::kChild:
                case query::SelectorKind::kDescendant:
                    if (std::find(alphabet.labels_.begin(), alphabet.labels_.end(),
                                  selector.label_escaped) ==
                        alphabet.labels_.end()) {
                        alphabet.labels_.push_back(selector.label_escaped);
                    }
                    break;
                case query::SelectorKind::kChildIndex:
                    if (std::find(alphabet.indices_.begin(),
                                  alphabet.indices_.end(),
                                  selector.index) == alphabet.indices_.end()) {
                        alphabet.indices_.push_back(selector.index);
                    }
                    break;
                default:
                    break;
            }
        }
    }
    return alphabet;
}

int Alphabet::label_symbol(std::string_view escaped_label) const noexcept
{
    for (std::size_t i = 0; i < labels_.size(); ++i) {
        if (labels_[i] == escaped_label) {
            return static_cast<int>(i);
        }
    }
    return other_symbol();
}

int Alphabet::index_symbol(std::uint64_t index) const noexcept
{
    for (std::size_t i = 0; i < indices_.size(); ++i) {
        if (indices_[i] == index) {
            return num_labels() + static_cast<int>(i);
        }
    }
    return other_symbol();
}

Nfa Nfa::from_query(const query::Query& query)
{
    if (query.size() > 63) {
        throw LimitError("queries are limited to 63 selectors");
    }
    Nfa nfa;
    nfa.alphabet_ = Alphabet::from_query(query);
    nfa.states_.resize(query.size() + 1);
    const auto& selectors = query.selectors();
    // Selector k (1-based among non-root selectors) configures the advance
    // arc out of state k-1.
    for (std::size_t k = 1; k < selectors.size(); ++k) {
        const query::Selector& selector = selectors[k];
        NfaState& state = nfa.states_[k - 1];
        switch (selector.kind) {
            case query::SelectorKind::kChild:
                state.advance_symbol =
                    nfa.alphabet_.label_symbol(selector.label_escaped);
                break;
            case query::SelectorKind::kChildWildcard:
                state.wildcard_advance = true;
                break;
            case query::SelectorKind::kChildIndex:
                state.advance_symbol = nfa.alphabet_.index_symbol(selector.index);
                break;
            case query::SelectorKind::kDescendant:
                state.recursive = true;
                state.advance_symbol =
                    nfa.alphabet_.label_symbol(selector.label_escaped);
                break;
            case query::SelectorKind::kDescendantWildcard:
                state.recursive = true;
                state.wildcard_advance = true;
                break;
            case query::SelectorKind::kRoot:
                break;
        }
    }
    return nfa;
}

bool Nfa::advances_on(int i, int symbol) const
{
    const NfaState& state = states_[static_cast<std::size_t>(i)];
    if (i == accepting_state()) {
        return false;
    }
    if (state.wildcard_advance) {
        return true;
    }
    return state.advance_symbol == symbol;
}

}  // namespace descend::automaton
