#include "descend/automaton/nfa.h"

#include <algorithm>
#include <unordered_set>
#include <utility>

#include "descend/util/errors.h"

namespace descend::automaton {
namespace {

/** Below this many symbols a linear scan beats a hash probe; the interned
 *  lists stay in one or two cache lines for typical single queries. */
constexpr std::size_t kHashedLookupThreshold = 8;

using IndexRange = std::pair<std::uint64_t, std::uint64_t>;

/** Interns one query's labels and collects its index/slice ranges. */
void collect_symbols(const query::Query& query, std::vector<std::string>& labels,
                     std::unordered_set<std::string_view>& seen_labels,
                     std::vector<IndexRange>& ranges)
{
    auto add_label = [&](const std::string& escaped) {
        if (seen_labels.insert(escaped).second) {
            labels.push_back(escaped);
        }
    };
    for (const query::Selector& selector : query.selectors()) {
        switch (selector.kind) {
            case query::SelectorKind::kChild:
            case query::SelectorKind::kDescendant:
                add_label(selector.label_escaped);
                break;
            case query::SelectorKind::kChildUnion:
                for (const query::LabelRef& member : selector.union_members) {
                    add_label(member.escaped);
                }
                break;
            case query::SelectorKind::kChildIndex:
                ranges.emplace_back(selector.index, selector.index + 1);
                break;
            case query::SelectorKind::kChildSlice:
                ranges.emplace_back(selector.slice_lo, selector.slice_hi);
                break;
            case query::SelectorKind::kRoot:
            case query::SelectorKind::kChildWildcard:
            case query::SelectorKind::kChildFilter:
            case query::SelectorKind::kDescendantWildcard:
                // No path symbols: wildcards (and filters, which advance
                // like wildcards and test the candidate at report time)
                // ride the fallback arc.
                break;
        }
    }
}

}  // namespace

void Alphabet::build_lookup_tables()
{
    if (labels_.size() >= kHashedLookupThreshold) {
        label_ids_.reserve(labels_.size());
        for (std::size_t i = 0; i < labels_.size(); ++i) {
            label_ids_.emplace(labels_[i], static_cast<int>(i));
        }
    }
}

void Alphabet::build_intervals(std::vector<IndexRange> ranges)
{
    // Boundary set: every selector bound. A cell between two consecutive
    // boundaries is either wholly inside a selector's range or wholly
    // outside every one — so selector guards are unions of whole cells.
    std::vector<std::uint64_t> bounds;
    for (const IndexRange& range : ranges) {
        if (range.first >= range.second) {
            continue;  // empty slice: no coverage, no symbols
        }
        bounds.push_back(range.first);
        if (range.second != query::kSliceUnbounded) {
            bounds.push_back(range.second);
        }
    }
    std::sort(bounds.begin(), bounds.end());
    bounds.erase(std::unique(bounds.begin(), bounds.end()), bounds.end());
    for (std::size_t i = 0; i < bounds.size(); ++i) {
        std::uint64_t lo = bounds[i];
        std::uint64_t hi =
            i + 1 < bounds.size() ? bounds[i + 1] : query::kSliceUnbounded;
        bool covered = std::any_of(ranges.begin(), ranges.end(),
                                   [&](const IndexRange& range) {
                                       return range.first <= lo &&
                                              lo < range.second;
                                   });
        if (covered) {
            intervals_.push_back({lo, hi});
        }
    }
}

Alphabet Alphabet::from_query(const query::Query& query)
{
    Alphabet alphabet;
    std::unordered_set<std::string_view> seen_labels;
    std::vector<IndexRange> ranges;
    collect_symbols(query, alphabet.labels_, seen_labels, ranges);
    alphabet.build_intervals(std::move(ranges));
    alphabet.build_lookup_tables();
    return alphabet;
}

Alphabet Alphabet::from_queries(const std::vector<query::Query>& queries)
{
    Alphabet alphabet;
    std::unordered_set<std::string_view> seen_labels;
    std::vector<IndexRange> ranges;
    for (const query::Query& query : queries) {
        collect_symbols(query, alphabet.labels_, seen_labels, ranges);
    }
    alphabet.build_intervals(std::move(ranges));
    alphabet.build_lookup_tables();
    return alphabet;
}

int Alphabet::label_symbol(std::string_view escaped_label) const noexcept
{
    if (!label_ids_.empty()) {
        auto found = label_ids_.find(escaped_label);
        return found != label_ids_.end() ? found->second : other_symbol();
    }
    for (std::size_t i = 0; i < labels_.size(); ++i) {
        if (labels_[i] == escaped_label) {
            return static_cast<int>(i);
        }
    }
    return other_symbol();
}

int Alphabet::index_symbol(std::uint64_t index) const noexcept
{
    // First interval with lo > index; the candidate is its predecessor.
    auto after = std::upper_bound(intervals_.begin(), intervals_.end(), index,
                                  [](std::uint64_t value, const IndexInterval& iv) {
                                      return value < iv.lo;
                                  });
    if (after == intervals_.begin()) {
        return other_symbol();
    }
    const IndexInterval& candidate = *std::prev(after);
    if (!candidate.contains(index)) {
        return other_symbol();
    }
    return num_labels() +
           static_cast<int>(std::prev(after) - intervals_.begin());
}

std::vector<int> Alphabet::symbols_in_range(std::uint64_t lo,
                                            std::uint64_t hi) const
{
    std::vector<int> symbols;
    for (std::size_t i = 0; i < intervals_.size(); ++i) {
        const IndexInterval& iv = intervals_[i];
        if (iv.lo >= lo && iv.lo < hi) {
            symbols.push_back(num_labels() + static_cast<int>(i));
        }
    }
    return symbols;
}

Nfa Nfa::from_query(const query::Query& query)
{
    if (query.size() > 63) {
        throw LimitError("queries are limited to 63 selectors");
    }
    Nfa nfa;
    nfa.alphabet_ = Alphabet::from_query(query);
    nfa.states_.resize(query.size() + 1);
    const auto& selectors = query.selectors();
    // Selector k (1-based among non-root selectors) configures the advance
    // arc out of state k-1.
    for (std::size_t k = 1; k < selectors.size(); ++k) {
        const query::Selector& selector = selectors[k];
        NfaState& state = nfa.states_[k - 1];
        switch (selector.kind) {
            case query::SelectorKind::kChild:
                state.advance_symbols.push_back(
                    nfa.alphabet_.label_symbol(selector.label_escaped));
                break;
            case query::SelectorKind::kChildWildcard:
                state.wildcard_advance = true;
                break;
            case query::SelectorKind::kChildIndex:
                state.advance_symbols.push_back(
                    nfa.alphabet_.index_symbol(selector.index));
                break;
            case query::SelectorKind::kChildSlice:
                // An empty slice contributes no symbols: the guard is
                // unsatisfiable and the state can never advance.
                state.advance_symbols = nfa.alphabet_.symbols_in_range(
                    selector.slice_lo, selector.slice_hi);
                break;
            case query::SelectorKind::kChildUnion:
                for (const query::LabelRef& member : selector.union_members) {
                    state.advance_symbols.push_back(
                        nfa.alphabet_.label_symbol(member.escaped));
                }
                break;
            case query::SelectorKind::kChildFilter:
                // The path guard of a filter is a wildcard; the predicate
                // runs over the candidate span at report time.
                state.wildcard_advance = true;
                break;
            case query::SelectorKind::kDescendant:
                state.recursive = true;
                state.advance_symbols.push_back(
                    nfa.alphabet_.label_symbol(selector.label_escaped));
                break;
            case query::SelectorKind::kDescendantWildcard:
                state.recursive = true;
                state.wildcard_advance = true;
                break;
            case query::SelectorKind::kRoot:
                break;
        }
        std::sort(state.advance_symbols.begin(), state.advance_symbols.end());
    }
    return nfa;
}

bool Nfa::advances_on(int i, int symbol) const
{
    const NfaState& state = states_[static_cast<std::size_t>(i)];
    if (i == accepting_state()) {
        return false;
    }
    if (state.wildcard_advance) {
        return true;
    }
    return std::binary_search(state.advance_symbols.begin(),
                              state.advance_symbols.end(), symbol);
}

}  // namespace descend::automaton
