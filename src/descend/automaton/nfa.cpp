#include "descend/automaton/nfa.h"

#include <algorithm>
#include <unordered_set>

#include "descend/util/errors.h"

namespace descend::automaton {
namespace {

/** Below this many symbols a linear scan beats a hash probe; the interned
 *  lists stay in one or two cache lines for typical single queries. */
constexpr std::size_t kHashedLookupThreshold = 8;

}  // namespace

void Alphabet::build_lookup_tables()
{
    if (labels_.size() >= kHashedLookupThreshold) {
        label_ids_.reserve(labels_.size());
        for (std::size_t i = 0; i < labels_.size(); ++i) {
            label_ids_.emplace(labels_[i], static_cast<int>(i));
        }
    }
    if (indices_.size() >= kHashedLookupThreshold) {
        index_ids_.reserve(indices_.size());
        for (std::size_t i = 0; i < indices_.size(); ++i) {
            index_ids_.emplace(indices_[i],
                               num_labels() + static_cast<int>(i));
        }
    }
}

Alphabet Alphabet::from_query(const query::Query& query)
{
    Alphabet alphabet;
    for (const query::Selector& selector : query.selectors()) {
        switch (selector.kind) {
            case query::SelectorKind::kChild:
            case query::SelectorKind::kDescendant:
                if (std::find(alphabet.labels_.begin(), alphabet.labels_.end(),
                              selector.label_escaped) == alphabet.labels_.end()) {
                    alphabet.labels_.push_back(selector.label_escaped);
                }
                break;
            case query::SelectorKind::kChildIndex:
                if (std::find(alphabet.indices_.begin(), alphabet.indices_.end(),
                              selector.index) == alphabet.indices_.end()) {
                    alphabet.indices_.push_back(selector.index);
                }
                break;
            default:
                break;
        }
    }
    alphabet.build_lookup_tables();
    return alphabet;
}

Alphabet Alphabet::from_queries(const std::vector<query::Query>& queries)
{
    Alphabet alphabet;
    // Set-sized dedup: a 1k-query set can mention thousands of distinct
    // labels, so interning scans would go quadratic. Symbol order remains
    // first-occurrence across the set.
    std::unordered_set<std::string_view> seen_labels;
    std::unordered_set<std::uint64_t> seen_indices;
    for (const query::Query& query : queries) {
        for (const query::Selector& selector : query.selectors()) {
            switch (selector.kind) {
                case query::SelectorKind::kChild:
                case query::SelectorKind::kDescendant:
                    if (seen_labels.insert(selector.label_escaped).second) {
                        alphabet.labels_.push_back(selector.label_escaped);
                    }
                    break;
                case query::SelectorKind::kChildIndex:
                    if (seen_indices.insert(selector.index).second) {
                        alphabet.indices_.push_back(selector.index);
                    }
                    break;
                default:
                    break;
            }
        }
    }
    alphabet.build_lookup_tables();
    return alphabet;
}

int Alphabet::label_symbol(std::string_view escaped_label) const noexcept
{
    if (!label_ids_.empty()) {
        auto found = label_ids_.find(escaped_label);
        return found != label_ids_.end() ? found->second : other_symbol();
    }
    for (std::size_t i = 0; i < labels_.size(); ++i) {
        if (labels_[i] == escaped_label) {
            return static_cast<int>(i);
        }
    }
    return other_symbol();
}

int Alphabet::index_symbol(std::uint64_t index) const noexcept
{
    if (!index_ids_.empty()) {
        auto found = index_ids_.find(index);
        return found != index_ids_.end() ? found->second : other_symbol();
    }
    for (std::size_t i = 0; i < indices_.size(); ++i) {
        if (indices_[i] == index) {
            return num_labels() + static_cast<int>(i);
        }
    }
    return other_symbol();
}

Nfa Nfa::from_query(const query::Query& query)
{
    if (query.size() > 63) {
        throw LimitError("queries are limited to 63 selectors");
    }
    Nfa nfa;
    nfa.alphabet_ = Alphabet::from_query(query);
    nfa.states_.resize(query.size() + 1);
    const auto& selectors = query.selectors();
    // Selector k (1-based among non-root selectors) configures the advance
    // arc out of state k-1.
    for (std::size_t k = 1; k < selectors.size(); ++k) {
        const query::Selector& selector = selectors[k];
        NfaState& state = nfa.states_[k - 1];
        switch (selector.kind) {
            case query::SelectorKind::kChild:
                state.advance_symbol =
                    nfa.alphabet_.label_symbol(selector.label_escaped);
                break;
            case query::SelectorKind::kChildWildcard:
                state.wildcard_advance = true;
                break;
            case query::SelectorKind::kChildIndex:
                state.advance_symbol = nfa.alphabet_.index_symbol(selector.index);
                break;
            case query::SelectorKind::kDescendant:
                state.recursive = true;
                state.advance_symbol =
                    nfa.alphabet_.label_symbol(selector.label_escaped);
                break;
            case query::SelectorKind::kDescendantWildcard:
                state.recursive = true;
                state.wildcard_advance = true;
                break;
            case query::SelectorKind::kRoot:
                break;
        }
    }
    return nfa;
}

bool Nfa::advances_on(int i, int symbol) const
{
    const NfaState& state = states_[static_cast<std::size_t>(i)];
    if (i == accepting_state()) {
        return false;
    }
    if (state.wildcard_advance) {
        return true;
    }
    return state.advance_symbol == symbol;
}

}  // namespace descend::automaton
