/**
 * @file
 * CompiledQuery: the minimal DFA plus the per-state structural properties
 * that drive the engine's runtime decisions (paper Section 3.3):
 *
 *  - rejecting: the trash state — no accepting state reachable; entering it
 *    for a child triggers *skipping children*.
 *  - internal:  no single transition reaches an accepting state; while in
 *    such a state the engine keeps commas/colons toggled off, which is
 *    *skipping leaves*.
 *  - unitary:   exactly one live transition, over a concrete label, with
 *    the fallback going to trash; after the unique label matched, the
 *    engine *skips siblings*.
 *  - waiting:   exactly one non-looping transition over a concrete label,
 *    fallback looping; when the initial state is waiting the engine
 *    *skips to the label* with memmem head-skipping.
 *
 * Plus the toggling predicates of Section 3.4: whether a state can accept
 * in one step via an object member (colons) or an array entry (commas).
 */
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "descend/automaton/dfa.h"
#include "descend/query/query.h"

namespace descend::automaton {

struct StateFlags {
    bool accepting = false;
    bool rejecting = false;
    bool internal = false;
    bool unitary = false;
    bool waiting = false;
    /** A label transition (concrete or fallback) can accept in one step. */
    bool colon_toggle = false;
    /** An array-entry transition can accept in one step. */
    bool comma_toggle = false;
};

class CompiledQuery {
public:
    /** Compiles a parsed query: NFA -> DFA -> minimal DFA -> properties. */
    static CompiledQuery compile(const query::Query& query);

    /** Convenience: parse + compile. */
    static CompiledQuery compile(std::string_view query_text)
    {
        return compile(query::Query::parse(query_text));
    }

    const Dfa& dfa() const noexcept { return dfa_; }
    const Alphabet& alphabet() const noexcept { return dfa_.alphabet(); }
    const query::Query& source() const noexcept { return query_; }

    int initial_state() const noexcept { return dfa_.initial_state(); }
    int transition(int state, int symbol) const noexcept
    {
        return dfa_.transition(state, symbol);
    }
    int fallback(int state) const noexcept { return dfa_.fallback(state); }

    const StateFlags& flags(int state) const noexcept
    {
        return flags_[static_cast<std::size_t>(state)];
    }

    /**
     * Behavioural class of a state: states share a class iff their whole
     * transition rows coincide (they can then differ only in acceptance,
     * which matters solely at transition time). The engine pushes a
     * depth-stack frame only when a transition crosses classes — this is
     * what realizes the paper's Section 3.2 bound of O(n) frames for
     * child-free queries (the frames correspond to the depth registers),
     * even on documents that alternate the query's labels forever.
     */
    int row_class(int state) const noexcept
    {
        return row_class_[static_cast<std::size_t>(state)];
    }

    /**
     * For waiting states: the unique live label symbol the state waits
     * for; -1 otherwise. Drives the within-element label skip (the
     * Section 4.5 "more refined classifier" extension).
     */
    int waiting_symbol(int state) const noexcept
    {
        return waiting_symbol_[static_cast<std::size_t>(state)];
    }

    /** True when the query guards children by array position (index or
     *  slice selectors); the engine then tracks array-entry counters. */
    bool has_indices() const noexcept { return has_indices_; }

    /**
     * The query's trailing filter predicate, or nullptr. The automaton
     * treats the filter selector as a wildcard arc; every report from a
     * state accepting through it must first evaluate the predicate over
     * the candidate span (engines do this in their report paths).
     */
    const query::FilterExpr* filter() const noexcept { return query_.filter(); }

    /** Whole-document match: the query is exactly `$`. */
    bool root_accepting() const noexcept { return flags(initial_state()).accepting; }

    /**
     * The label to memmem for when head-skipping applies: set iff the
     * initial state is waiting on a concrete label (query begins with a
     * `..label` selector). Escaped comparison form.
     */
    const std::optional<std::string>& head_skip_label() const noexcept
    {
        return head_skip_label_;
    }

private:
    CompiledQuery() = default;

    query::Query query_;
    Dfa dfa_;
    std::vector<StateFlags> flags_;
    std::vector<int> row_class_;
    std::vector<int> waiting_symbol_;
    bool has_indices_ = false;
    std::optional<std::string> head_skip_label_;
};

}  // namespace descend::automaton
