#include "descend/automaton/dfa.h"

#include <cstdint>
#include <map>

#include "descend/util/errors.h"

namespace descend::automaton {

Dfa Dfa::determinize(const Nfa& nfa, int max_states)
{
    const Alphabet& alphabet = nfa.alphabet();
    const int symbols = alphabet.total_symbols();
    const int accept = nfa.accepting_state();

    // Subsets of the <= 64 NFA states are single machine words.
    auto successor = [&](std::uint64_t subset, int symbol) {
        std::uint64_t next = 0;
        for (int i = 0; i < nfa.num_states(); ++i) {
            if (!(subset & (1ULL << i))) {
                continue;
            }
            if (nfa.state(i).recursive) {
                next |= 1ULL << i;
            }
            if (nfa.advances_on(i, symbol)) {
                next |= 1ULL << (i + 1);
            }
        }
        return next;
    };

    Dfa dfa;
    dfa.alphabet_ = alphabet;
    dfa.total_symbols_ = symbols;

    std::map<std::uint64_t, int> ids;
    std::vector<std::uint64_t> worklist;
    auto intern = [&](std::uint64_t subset) {
        auto [it, inserted] = ids.emplace(subset, static_cast<int>(ids.size()));
        if (inserted) {
            if (static_cast<int>(ids.size()) > max_states) {
                throw LimitError("query automaton exceeds the state limit");
            }
            worklist.push_back(subset);
            dfa.transitions_.resize(ids.size() * static_cast<std::size_t>(symbols), 0);
            dfa.accepting_.push_back((subset >> accept) & 1);
        }
        return it->second;
    };

    dfa.initial_ = intern(1ULL << 0);
    // Materialize the trash state eagerly so it always exists.
    intern(0);

    for (std::size_t processed = 0; processed < worklist.size(); ++processed) {
        std::uint64_t subset = worklist[processed];
        int from = ids.at(subset);
        for (int symbol = 0; symbol < symbols; ++symbol) {
            int to = intern(successor(subset, symbol));
            dfa.transitions_[static_cast<std::size_t>(from) *
                                 static_cast<std::size_t>(symbols) +
                             static_cast<std::size_t>(symbol)] = to;
        }
    }
    dfa.num_states_ = static_cast<int>(ids.size());
    return dfa;
}

}  // namespace descend::automaton
