#include <vector>

#include "descend/automaton/compiled.h"

namespace descend::automaton {
namespace {

/** States from which some accepting state is reachable. */
std::vector<bool> productive_states(const Dfa& dfa)
{
    int n = dfa.num_states();
    std::vector<bool> productive(static_cast<std::size_t>(n), false);
    // Fixpoint iteration; query automata are tiny.
    bool changed = true;
    for (int s = 0; s < n; ++s) {
        productive[static_cast<std::size_t>(s)] = dfa.accepting(s);
    }
    while (changed) {
        changed = false;
        for (int s = 0; s < n; ++s) {
            if (productive[static_cast<std::size_t>(s)]) {
                continue;
            }
            for (int symbol = 0; symbol < dfa.total_symbols(); ++symbol) {
                if (productive[static_cast<std::size_t>(dfa.transition(s, symbol))]) {
                    productive[static_cast<std::size_t>(s)] = true;
                    changed = true;
                    break;
                }
            }
        }
    }
    return productive;
}

}  // namespace

CompiledQuery CompiledQuery::compile(const query::Query& query)
{
    CompiledQuery compiled;
    compiled.query_ = query;
    compiled.has_indices_ = query.has_indices();
    compiled.dfa_ = Dfa::determinize(Nfa::from_query(query)).minimized();

    const Dfa& dfa = compiled.dfa_;
    const Alphabet& alphabet = dfa.alphabet();
    std::vector<bool> productive = productive_states(dfa);

    compiled.flags_.resize(static_cast<std::size_t>(dfa.num_states()));
    for (int s = 0; s < dfa.num_states(); ++s) {
        StateFlags& flags = compiled.flags_[static_cast<std::size_t>(s)];
        flags.accepting = dfa.accepting(s);
        flags.rejecting = !productive[static_cast<std::size_t>(s)];

        int fallback = dfa.fallback(s);
        bool fallback_rejecting = !productive[static_cast<std::size_t>(fallback)];

        // internal: no single transition reaches an accepting state.
        flags.internal = true;
        for (int symbol = 0; symbol < dfa.total_symbols(); ++symbol) {
            if (dfa.accepting(dfa.transition(s, symbol))) {
                flags.internal = false;
                break;
            }
        }

        // Live concrete transitions: those differing from the fallback in a
        // way that matters (target differs from fallback target).
        int live_labels = 0;
        int live_indices = 0;
        int unique_live_label = -1;
        for (int symbol = 0; symbol < alphabet.num_concrete(); ++symbol) {
            if (dfa.transition(s, symbol) != fallback) {
                if (alphabet.symbol_is_label(symbol)) {
                    ++live_labels;
                    unique_live_label = symbol;
                } else {
                    ++live_indices;
                }
            }
        }

        // unitary: one live concrete label, fallback to trash, nothing else.
        flags.unitary = !flags.rejecting && fallback_rejecting && live_labels == 1 &&
                        live_indices == 0 &&
                        productive[static_cast<std::size_t>(
                            dfa.transition(s, unique_live_label))];

        // waiting: fallback self-loops, exactly one concrete label leaves.
        flags.waiting = fallback == s && live_labels == 1 && live_indices == 0;

        // Toggling predicates: can a one-step transition accept?
        flags.colon_toggle = false;
        for (int symbol = 0; symbol < alphabet.num_labels(); ++symbol) {
            if (dfa.accepting(dfa.transition(s, symbol))) {
                flags.colon_toggle = true;
                break;
            }
        }
        if (dfa.accepting(fallback)) {
            flags.colon_toggle = true;
            flags.comma_toggle = true;
        }
        for (int symbol = alphabet.num_labels(); symbol < alphabet.num_concrete();
             ++symbol) {
            if (dfa.accepting(dfa.transition(s, symbol))) {
                flags.comma_toggle = true;
                break;
            }
        }
    }

    // Waiting symbols: the unique live label of each waiting state.
    compiled.waiting_symbol_.assign(static_cast<std::size_t>(dfa.num_states()), -1);
    for (int s = 0; s < dfa.num_states(); ++s) {
        if (!compiled.flags_[static_cast<std::size_t>(s)].waiting) {
            continue;
        }
        for (int symbol = 0; symbol < alphabet.num_labels(); ++symbol) {
            if (dfa.transition(s, symbol) != s) {
                compiled.waiting_symbol_[static_cast<std::size_t>(s)] = symbol;
                break;
            }
        }
    }

    // Row classes: states with identical transition rows are behaviourally
    // interchangeable after a restore (see CompiledQuery::row_class).
    compiled.row_class_.resize(static_cast<std::size_t>(dfa.num_states()));
    {
        std::vector<std::vector<int>> seen_rows;
        for (int s = 0; s < dfa.num_states(); ++s) {
            std::vector<int> row(static_cast<std::size_t>(dfa.total_symbols()));
            for (int symbol = 0; symbol < dfa.total_symbols(); ++symbol) {
                row[static_cast<std::size_t>(symbol)] = dfa.transition(s, symbol);
            }
            std::size_t id = 0;
            while (id < seen_rows.size() && seen_rows[id] != row) {
                ++id;
            }
            if (id == seen_rows.size()) {
                seen_rows.push_back(std::move(row));
            }
            compiled.row_class_[static_cast<std::size_t>(s)] = static_cast<int>(id);
        }
    }

    const StateFlags& initial_flags = compiled.flags(dfa.initial_state());
    if (initial_flags.waiting) {
        for (int symbol = 0; symbol < alphabet.num_labels(); ++symbol) {
            if (dfa.transition(dfa.initial_state(), symbol) != dfa.initial_state()) {
                compiled.head_skip_label_ = alphabet.label(symbol);
                break;
            }
        }
    }
    return compiled;
}

}  // namespace descend::automaton
