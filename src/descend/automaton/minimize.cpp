#include "descend/automaton/dfa.h"

#include <map>
#include <vector>

namespace descend::automaton {

Dfa Dfa::minimized() const
{
    // Moore partition refinement. Initial partition: accepting vs not.
    std::vector<int> block(static_cast<std::size_t>(num_states_));
    for (int s = 0; s < num_states_; ++s) {
        block[static_cast<std::size_t>(s)] = accepting_[static_cast<std::size_t>(s)] ? 1 : 0;
    }

    int num_blocks = 2;
    bool changed = true;
    while (changed) {
        changed = false;
        // Signature: own block plus blocks of all successors.
        std::map<std::vector<int>, int> signature_ids;
        std::vector<int> next_block(static_cast<std::size_t>(num_states_));
        for (int s = 0; s < num_states_; ++s) {
            std::vector<int> signature;
            signature.reserve(static_cast<std::size_t>(total_symbols_) + 1);
            signature.push_back(block[static_cast<std::size_t>(s)]);
            for (int symbol = 0; symbol < total_symbols_; ++symbol) {
                signature.push_back(block[static_cast<std::size_t>(transition(s, symbol))]);
            }
            auto [it, inserted] =
                signature_ids.emplace(std::move(signature),
                                      static_cast<int>(signature_ids.size()));
            next_block[static_cast<std::size_t>(s)] = it->second;
        }
        if (static_cast<int>(signature_ids.size()) != num_blocks) {
            num_blocks = static_cast<int>(signature_ids.size());
            changed = true;
        }
        block = std::move(next_block);
    }

    Dfa result;
    result.alphabet_ = alphabet_;
    result.total_symbols_ = total_symbols_;
    result.num_states_ = num_blocks;
    result.initial_ = block[static_cast<std::size_t>(initial_)];
    result.transitions_.assign(
        static_cast<std::size_t>(num_blocks) * static_cast<std::size_t>(total_symbols_),
        0);
    result.accepting_.assign(static_cast<std::size_t>(num_blocks), false);
    for (int s = 0; s < num_states_; ++s) {
        int b = block[static_cast<std::size_t>(s)];
        for (int symbol = 0; symbol < total_symbols_; ++symbol) {
            result.transitions_[static_cast<std::size_t>(b) *
                                    static_cast<std::size_t>(total_symbols_) +
                                static_cast<std::size_t>(symbol)] =
                block[static_cast<std::size_t>(transition(s, symbol))];
        }
        if (accepting_[static_cast<std::size_t>(s)]) {
            result.accepting_[static_cast<std::size_t>(b)] = true;
        }
    }
    return result;
}

}  // namespace descend::automaton
