/**
 * @file
 * Deterministic query automaton: subset construction over the query NFA
 * and Moore partition-refinement minimization (paper Section 3.1).
 *
 * The DFA is stored as a dense transition matrix over the interned symbols
 * plus OTHER (the fallback). There is always exactly one all-rejecting
 * trash state after minimization.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "descend/automaton/nfa.h"

namespace descend::automaton {

class Dfa {
public:
    /** An empty automaton; meaningful instances come from determinize(). */
    Dfa() = default;

    /**
     * Subset construction. @p max_states guards against the exponential
     * blowup that descendant-plus-wildcard queries can exhibit (Section
     * 3.1); LimitError is raised beyond it.
     */
    static Dfa determinize(const Nfa& nfa, int max_states = 1 << 14);

    /** Language-preserving minimization (Moore partition refinement —
     *  query automata are tiny, so O(n^2 |Sigma|) is immaterial). */
    Dfa minimized() const;

    const Alphabet& alphabet() const noexcept { return alphabet_; }
    int num_states() const noexcept { return num_states_; }
    int initial_state() const noexcept { return initial_; }

    int transition(int state, int symbol) const noexcept
    {
        return transitions_[static_cast<std::size_t>(state) *
                                static_cast<std::size_t>(total_symbols_) +
                            static_cast<std::size_t>(symbol)];
    }

    /** The fallback transition (over the OTHER symbol). */
    int fallback(int state) const noexcept
    {
        return transition(state, alphabet_.other_symbol());
    }

    bool accepting(int state) const noexcept
    {
        return accepting_[static_cast<std::size_t>(state)];
    }

    int total_symbols() const noexcept { return total_symbols_; }

private:
    Alphabet alphabet_;
    int num_states_ = 0;
    int initial_ = 0;
    int total_symbols_ = 0;
    std::vector<int> transitions_;   ///< num_states x total_symbols
    std::vector<bool> accepting_;
};

}  // namespace descend::automaton
