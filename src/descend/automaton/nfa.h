/**
 * @file
 * Query NFA construction (paper Section 3.1).
 *
 * A query with n selectors yields an NFA with n+1 states; state i means
 * "the first i selectors have matched on the current path". Descendant
 * selectors make their source state *recursive* (a self-loop over every
 * label). The automaton runs over the sequence of labels on a root-to-node
 * path; array entries carry an artificial label that matches only wildcard
 * and recursive arcs (and, with the index-selector extension, index arcs).
 *
 * Input symbols are interned per query by Alphabet: the concrete labels
 * (in their escaped comparison form), then the concrete array indices,
 * plus one implicit OTHER symbol standing for every remaining label and
 * for unmatched array positions.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "descend/query/query.h"

namespace descend::automaton {

/** Transparent string hash so label lookups take string_view without
 *  materializing a std::string per structural event. */
struct LabelHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view text) const noexcept
    {
        return std::hash<std::string_view>{}(text);
    }
};

/** Interned input symbols of a query automaton. */
class Alphabet {
public:
    static Alphabet from_query(const query::Query& query);

    /**
     * The union alphabet of a query set (fused multi-query execution):
     * every label and index occurring in any of @p queries, interned once.
     * Symbol order is first-occurrence across the set, so single-query
     * alphabets embed as prefixes when the set is a singleton.
     */
    static Alphabet from_queries(const std::vector<query::Query>& queries);

    int num_labels() const noexcept { return static_cast<int>(labels_.size()); }
    int num_indices() const noexcept { return static_cast<int>(indices_.size()); }

    /** Concrete symbols (labels then indices), excluding OTHER. */
    int num_concrete() const noexcept { return num_labels() + num_indices(); }

    /** The OTHER symbol: any label/index not occurring in the query. */
    int other_symbol() const noexcept { return num_concrete(); }

    /** Total number of symbols including OTHER. */
    int total_symbols() const noexcept { return num_concrete() + 1; }

    bool symbol_is_label(int symbol) const noexcept { return symbol < num_labels(); }
    bool symbol_is_index(int symbol) const noexcept
    {
        return symbol >= num_labels() && symbol < num_concrete();
    }

    /** Symbol for an escaped label, or other_symbol() when absent. */
    int label_symbol(std::string_view escaped_label) const noexcept;

    /** Symbol for an array index, or other_symbol() when absent. */
    int index_symbol(std::uint64_t index) const noexcept;

    const std::string& label(int symbol) const { return labels_[symbol]; }
    std::uint64_t index(int symbol) const
    {
        return indices_[static_cast<std::size_t>(symbol - num_labels())];
    }

    const std::vector<std::string>& labels() const noexcept { return labels_; }
    const std::vector<std::uint64_t>& indices() const noexcept { return indices_; }

private:
    /** Builds the hashed lookup side tables once interning is complete.
     *  Linear scans are faster below a handful of symbols (single-query
     *  alphabets), so small alphabets skip the tables entirely; union
     *  alphabets of large query sets (fused multi-query execution) resolve
     *  every structural event's label in O(1) instead of O(|labels|). */
    void build_lookup_tables();

    std::vector<std::string> labels_;        ///< escaped comparison forms
    std::vector<std::uint64_t> indices_;
    /** label -> symbol; empty when the linear scan wins (few labels). */
    std::unordered_map<std::string, int, LabelHash, std::equal_to<>> label_ids_;
    /** index -> symbol; empty when the linear scan wins (few indices). */
    std::unordered_map<std::uint64_t, int> index_ids_;
};

/** One NFA state and its outgoing arcs. */
struct NfaState {
    /** Self-loop over every symbol (descendant selectors). */
    bool recursive = false;
    /** Advance arc fires on every symbol (wildcard selectors). */
    bool wildcard_advance = false;
    /** Advance arc symbol (label or index), or -1 when wildcard_advance. */
    int advance_symbol = -1;
};

/**
 * The query NFA. State count is capped at 64 so that DFA subset
 * construction can use one machine word per subset; queries with more than
 * 63 selectors raise LimitError (far beyond any practical query).
 */
class Nfa {
public:
    static Nfa from_query(const query::Query& query);

    const Alphabet& alphabet() const noexcept { return alphabet_; }
    int num_states() const noexcept { return static_cast<int>(states_.size()); }
    int accepting_state() const noexcept { return num_states() - 1; }
    const NfaState& state(int i) const { return states_[static_cast<std::size_t>(i)]; }

    /** True if the advance arc of state i fires on the given symbol. */
    bool advances_on(int i, int symbol) const;

private:
    Alphabet alphabet_;
    std::vector<NfaState> states_;
};

}  // namespace descend::automaton
