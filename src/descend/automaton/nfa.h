/**
 * @file
 * Query NFA construction (paper Section 3.1).
 *
 * A query with n selectors yields an NFA with n+1 states; state i means
 * "the first i selectors have matched on the current path". Descendant
 * selectors make their source state *recursive* (a self-loop over every
 * label). The automaton runs over the sequence of labels on a root-to-node
 * path; array entries carry an artificial label that matches only wildcard
 * and recursive arcs (and, with the counter extension, index arcs).
 *
 * Input symbols are interned per query by Alphabet: the concrete labels
 * (in their escaped comparison form), then *index intervals*, plus one
 * implicit OTHER symbol standing for every remaining label and for
 * uncovered array positions.
 *
 * Index intervals are the key to counter-carrying transitions surviving
 * the classical automaton pipeline unchanged: the index/slice bounds of
 * the whole query (set) partition the covered index space into half-open
 * intervals, each interned as one symbol. Every index or slice selector
 * guard is then a union of WHOLE interval symbols — an ordinary set of
 * arcs — so subset construction and Moore minimization need no knowledge
 * of counters at all; the engines map a runtime entry counter to its
 * interval symbol with one binary search (index_symbol).
 */
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "descend/query/query.h"

namespace descend::automaton {

/** Transparent string hash so label lookups take string_view without
 *  materializing a std::string per structural event. */
struct LabelHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view text) const noexcept
    {
        return std::hash<std::string_view>{}(text);
    }
};

/** A half-open run [lo, hi) of array indices interned as one symbol;
 *  hi == query::kSliceUnbounded for the open tail of an `[a:]` slice. */
struct IndexInterval {
    std::uint64_t lo = 0;
    std::uint64_t hi = 0;

    bool contains(std::uint64_t index) const noexcept
    {
        return index >= lo && index < hi;
    }

    friend bool operator==(const IndexInterval& a, const IndexInterval& b) noexcept
    {
        return a.lo == b.lo && a.hi == b.hi;
    }
};

/** Interned input symbols of a query automaton. */
class Alphabet {
public:
    static Alphabet from_query(const query::Query& query);

    /**
     * The union alphabet of a query set (fused multi-query execution):
     * every label and every index-interval boundary occurring in any of
     * @p queries, interned once. Label order is first-occurrence across
     * the set; the union's intervals REFINE each member query's own
     * intervals (the boundary set is a superset), so a per-query remap by
     * representative index is exact.
     */
    static Alphabet from_queries(const std::vector<query::Query>& queries);

    int num_labels() const noexcept { return static_cast<int>(labels_.size()); }
    int num_indices() const noexcept { return static_cast<int>(intervals_.size()); }

    /** Concrete symbols (labels then index intervals), excluding OTHER. */
    int num_concrete() const noexcept { return num_labels() + num_indices(); }

    /** The OTHER symbol: any label/index not occurring in the query. */
    int other_symbol() const noexcept { return num_concrete(); }

    /** Total number of symbols including OTHER. */
    int total_symbols() const noexcept { return num_concrete() + 1; }

    bool symbol_is_label(int symbol) const noexcept { return symbol < num_labels(); }
    bool symbol_is_index(int symbol) const noexcept
    {
        return symbol >= num_labels() && symbol < num_concrete();
    }

    /** Symbol for an escaped label, or other_symbol() when absent. */
    int label_symbol(std::string_view escaped_label) const noexcept;

    /** Symbol of the interval containing @p index, or other_symbol() when
     *  no selector covers that position. Binary search over the disjoint
     *  sorted intervals. */
    int index_symbol(std::uint64_t index) const noexcept;

    /**
     * The interval symbols covering [lo, hi). By construction every
     * selector's bounds are interval boundaries, so the guard of an index
     * or slice selector is exactly a run of whole symbols.
     */
    std::vector<int> symbols_in_range(std::uint64_t lo, std::uint64_t hi) const;

    const std::string& label(int symbol) const { return labels_[symbol]; }

    /** The interval behind an index symbol. */
    const IndexInterval& interval(int symbol) const
    {
        return intervals_[static_cast<std::size_t>(symbol - num_labels())];
    }

    /** A representative index of an index symbol (the interval's lo):
     *  mapping it through another alphabet whose intervals this alphabet
     *  refines lands on the unique covering symbol — how the multi-query
     *  remap translates shared symbols into per-query ones. */
    std::uint64_t index(int symbol) const { return interval(symbol).lo; }

    const std::vector<std::string>& labels() const noexcept { return labels_; }
    const std::vector<IndexInterval>& intervals() const noexcept
    {
        return intervals_;
    }

private:
    /** Builds the hashed label lookup once interning is complete.
     *  Linear scans are faster below a handful of symbols (single-query
     *  alphabets), so small alphabets skip the table entirely; union
     *  alphabets of large query sets (fused multi-query execution) resolve
     *  every structural event's label in O(1) instead of O(|labels|). */
    void build_lookup_tables();

    /** Partitions the covered index space: the sorted selector bounds cut
     *  it into candidate cells, and cells inside at least one selector
     *  range become symbols. */
    void build_intervals(std::vector<std::pair<std::uint64_t, std::uint64_t>> ranges);

    std::vector<std::string> labels_;        ///< escaped comparison forms
    std::vector<IndexInterval> intervals_;   ///< sorted, disjoint
    /** label -> symbol; empty when the linear scan wins (few labels). */
    std::unordered_map<std::string, int, LabelHash, std::equal_to<>> label_ids_;
};

/** One NFA state and its outgoing arcs. */
struct NfaState {
    /** Self-loop over every symbol (descendant selectors). */
    bool recursive = false;
    /** Advance arc fires on every symbol (wildcard and filter selectors —
     *  a filter constrains acceptance at report time, not the path). */
    bool wildcard_advance = false;
    /** Advance arc symbols (labels and/or index intervals), sorted; empty
     *  when wildcard_advance, and also for an unsatisfiable guard (an
     *  empty slice), which then can never advance. */
    std::vector<int> advance_symbols;
};

/**
 * The query NFA. State count is capped at 64 so that DFA subset
 * construction can use one machine word per subset; queries with more than
 * 63 selectors raise LimitError (far beyond any practical query).
 */
class Nfa {
public:
    static Nfa from_query(const query::Query& query);

    const Alphabet& alphabet() const noexcept { return alphabet_; }
    int num_states() const noexcept { return static_cast<int>(states_.size()); }
    int accepting_state() const noexcept { return num_states() - 1; }
    const NfaState& state(int i) const { return states_[static_cast<std::size_t>(i)]; }

    /** True if the advance arc of state i fires on the given symbol. */
    bool advances_on(int i, int symbol) const;

private:
    Alphabet alphabet_;
    std::vector<NfaState> states_;
};

}  // namespace descend::automaton
