/**
 * @file
 * Figure 3 demo: shows a JSON snippet classified by the structural
 * classifier's ltab/utab lookup tables, annotated byte by byte, plus the
 * quote classifier's in-string mask and the effect of toggling commas and
 * colons off (the leaf-skipping mode).
 *
 * Also prints the derived lookup tables so they can be compared with the
 * constants in Section 4.1 of the paper.
 */
#include <cstdio>
#include <string>

#include "descend/classify/quote_classifier.h"
#include "descend/classify/structural_classifier.h"
#include "descend/engine/padded_string.h"

namespace {

using namespace descend;

void print_table(const char* name, const std::array<std::uint8_t, 16>& table)
{
    std::printf("%s = [", name);
    for (std::size_t i = 0; i < table.size(); ++i) {
        std::printf("%s0x%02x", i == 0 ? "" : " ", table[i]);
    }
    std::printf("]\n");
}

void print_mask_row(const char* name, const std::string& text, std::uint64_t mask)
{
    std::printf("%-12s ", name);
    for (std::size_t i = 0; i < text.size() && i < 64; ++i) {
        std::putchar((mask >> i) & 1 ? '^' : ' ');
    }
    std::printf("\n");
}

}  // namespace

int main(int argc, char** argv)
{
    std::string text = argc >= 2
                           ? argv[1]
                           : R"({"a": [1, {"b": "x,y:{z}"}, 2], "c": null})";
    if (text.size() > 64) {
        text.resize(64);
    }
    PaddedString doc(text);
    const simd::Kernels& kernels = simd::best_kernels();

    std::printf("The structural classifier's nibble lookup tables (derived by\n"
                "the generic acceptance-group construction; compare Sec. 4.1):\n");
    print_table("utab", classify::StructuralClassifier::reference_utab());
    print_table("ltab", classify::StructuralClassifier::reference_ltab());

    classify::QuoteClassifier quotes(kernels);
    classify::QuoteMasks quote_masks = quotes.classify(doc.data());

    classify::StructuralClassifier structural(kernels);
    structural.set_commas(true);
    structural.set_colons(true);
    std::uint64_t all = structural.classify(doc.data());
    structural.set_commas(false);
    structural.set_colons(false);
    std::uint64_t skipping = structural.classify(doc.data());

    std::printf("\ninput        %s\n", text.c_str());
    print_mask_row("in-string", text, quote_masks.in_string);
    print_mask_row("structural", text, all & ~quote_masks.in_string);
    print_mask_row("leaf-skip", text, skipping & ~quote_masks.in_string);
    std::printf("\n(structural = all six characters enabled; leaf-skip = commas\n"
                "and colons toggled off by XORing utab rows 2 and 3; in-string\n"
                "positions are produced by the quote classifier and masked out.)\n");
    return 0;
}
