/**
 * @file
 * Quickstart: run a JSONPath query against a JSON file (or a built-in
 * sample) and print the matched values.
 *
 * Usage:
 *   quickstart                         # built-in sample document + query
 *   quickstart '<query>'               # query against the sample
 *   quickstart '<query>' <file.json>   # query against a file
 *   quickstart --semantics-demo        # Appendix D node-vs-path demo
 */
#include <cstdio>
#include <string>

#include "descend/baselines/dom_engine.h"
#include "descend/descend.h"
#include "descend/json/dom.h"

namespace {

const char* kSampleDocument = R"({
  "store": {
    "books": [
      {"title": "Sense and Sensibility", "price": 8.99,
       "meta": {"url": "https://books.test/1"}},
      {"title": "Moby Dick", "price": 12.50,
       "meta": {"url": "https://books.test/2"}}
    ],
    "owner": {"url": "https://books.test/owner"}
  }
})";

int semantics_demo()
{
    const char* document = R"({"person": {"name": "A", "spouse": {"name": "B"},
      "children": [{"person": {"name": "C"}}, {"person": {"name": "D"}}]}})";
    descend::PaddedString padded(document);
    auto query = descend::query::Query::parse("$..person..name");

    auto engine = descend::DescendEngine::for_query("$..person..name");
    auto node_offsets = engine.offsets_checked(padded).offsets;
    std::printf("query $..person..name\n");
    std::printf("node semantics (%zu results): ", node_offsets.size());
    for (auto value : descend::extract_values(padded, node_offsets)) {
        std::printf("%.*s ", static_cast<int>(value.size()), value.data());
    }
    std::printf("\n");

    descend::json::Document dom = descend::json::parse(document);
    descend::DomEngine oracle(query);
    auto path_offsets = oracle.evaluate_path_semantics(dom.root());
    std::printf("path semantics (%zu results): ", path_offsets.size());
    for (auto value : descend::extract_values(padded, path_offsets)) {
        std::printf("%.*s ", static_cast<int>(value.size()), value.data());
    }
    std::printf("\n(most JSONPath implementations use path semantics and "
                "duplicate C and D;\n descend uses node semantics, as the "
                "paper argues one should)\n");
    return 0;
}

}  // namespace

int main(int argc, char** argv)
{
    if (argc >= 2 && std::string(argv[1]) == "--semantics-demo") {
        return semantics_demo();
    }
    std::string query_text = argc >= 2 ? argv[1] : "$..url";
    try {
        descend::PaddedString document =
            argc >= 3 ? descend::PaddedString::from_file(argv[2])
                      : descend::PaddedString(kSampleDocument);

        auto engine = descend::DescendEngine::for_query(query_text);
        // The checked API surfaces malformed input as a status instead of a
        // silently truncated match set.
        auto result = engine.offsets_checked(document);
        if (!result.ok()) {
            std::fprintf(stderr, "error: %s\n",
                         descend::to_string(result.status).c_str());
            return 1;
        }
        const auto& offsets = result.offsets;
        std::printf("%zu match(es) for %s\n", offsets.size(), query_text.c_str());
        std::size_t shown = 0;
        for (auto value : descend::extract_values(document, offsets)) {
            if (++shown > 20) {
                std::printf("  ... (%zu more)\n", offsets.size() - 20);
                break;
            }
            std::printf("  %.*s\n", static_cast<int>(value.size()), value.data());
        }
        return 0;
    } catch (const descend::Error& error) {
        std::fprintf(stderr, "error: %s\n", error.what());
        return 1;
    }
}
