/**
 * @file
 * Reproduces the paper's Table 3 (dataset characteristics) over the
 * synthetic stand-in datasets: name, size, depth and verbosity (bytes per
 * tree node). Pass a target size in MB (default 8) as argv[1].
 */
#include <cstdio>
#include <cstdlib>
#include <string>

#include "descend/workloads/datasets.h"
#include "descend/workloads/stats.h"

int main(int argc, char** argv)
{
    std::size_t target_mb = 8;
    if (argc >= 2) {
        long parsed = std::strtol(argv[1], nullptr, 10);
        if (parsed > 0) {
            target_mb = static_cast<std::size_t>(parsed);
        }
    }
    std::printf("Table 3 stand-in: generated dataset characteristics "
                "(target %zu MB each)\n\n", target_mb);
    std::printf("%-15s %12s   %-9s   %s\n", "name", "size", "depth", "verbosity");
    for (const std::string& name : descend::workloads::dataset_names()) {
        // twitter_small mirrors the paper's 0.7 MB quickstart file.
        std::size_t target =
            name == "twitter_small" ? 700 * 1024 : target_mb << 20;
        std::string text = descend::workloads::generate(name, target);
        auto stats = descend::workloads::compute_stats(text);
        std::printf("%s\n",
                    descend::workloads::format_stats_row(name, stats).c_str());
    }
    std::printf("\nPaper's Table 3 (for shape comparison): AST depth 102 / "
                "verbosity 14.3;\nNSPL 13.8; Walmart depth 5 / 96.9; BestBuy "
                "24.5; Crossref 27.0.\n");
    return 0;
}
