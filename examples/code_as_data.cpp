/**
 * @file
 * The code-as-data scenario from the paper's introduction: exploring a
 * deep, highly irregular clang-style AST dump with descendant queries —
 * the workload that is infeasible without wildcard and descendant support.
 *
 * Generates an AST-shaped document (or loads one passed as argv[1]) and
 * runs the paper's A1/A2/A3 queries plus a few ad-hoc explorations,
 * reporting counts, throughput, and sample results.
 */
#include <chrono>
#include <cstdio>
#include <string>

#include "descend/descend.h"
#include "descend/workloads/datasets.h"
#include "descend/workloads/stats.h"

namespace {

void explore(const descend::PaddedString& document, const char* description,
             const char* query)
{
    auto engine = descend::DescendEngine::for_query(query);
    auto start = std::chrono::steady_clock::now();
    auto result = engine.offsets_checked(document);
    auto elapsed = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                       .count();
    if (!result.ok()) {
        std::printf("%-42s %-38s %s\n", description, query,
                    descend::to_string(result.status).c_str());
        return;
    }
    const auto& offsets = result.offsets;
    double gbps = static_cast<double>(document.size()) / elapsed / 1e9;
    std::printf("%-42s %-38s %8zu matches  %6.2f GB/s\n", description, query,
                offsets.size(), gbps);
    if (!offsets.empty()) {
        auto value = descend::extract_value(document, offsets.front());
        int width = static_cast<int>(std::min<std::size_t>(value.size(), 60));
        std::printf("    first: %.*s%s\n", width, value.data(),
                    value.size() > 60 ? "..." : "");
    }
}

}  // namespace

int main(int argc, char** argv)
{
    descend::PaddedString document =
        argc >= 2 ? descend::PaddedString::from_file(argv[1])
                  : descend::PaddedString(
                        descend::workloads::generate_ast(16 << 20));

    auto stats = descend::workloads::compute_stats(document.view());
    std::printf("AST document: %.1f MB, depth %zu, %.1f bytes/node\n\n",
                static_cast<double>(stats.size_bytes) / 1e6, stats.depth,
                stats.verbosity);

    explore(document, "A1: names of referenced declarations", "$..decl.name");
    explore(document, "A2: types of doubly nested nodes",
            "$..inner..inner..type.qualType");
    explore(document, "A3: files included from headers",
            "$..loc.includedFrom.file");
    explore(document, "all qualified types anywhere", "$..qualType");
    explore(document, "kinds of root-level declarations", "$.inner.*.kind");
    explore(document, "column of every source range end", "$..range.end.col");
    return 0;
}
