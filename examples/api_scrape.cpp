/**
 * @file
 * The API-scraping motivation from the paper's introduction: "scrape all
 * url property values from a document without knowing anything about the
 * paths leading to them". Compares the descendant one-liner with the
 * descendant-free alternative a user would otherwise have to write, and
 * shows they select the same nodes while the descendant form is both
 * simpler and faster.
 */
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "descend/descend.h"
#include "descend/workloads/datasets.h"

namespace {

double time_count(const descend::PaddedString& document, const char* query,
                  std::size_t& count)
{
    auto engine = descend::DescendEngine::for_query(query);
    auto start = std::chrono::steady_clock::now();
    auto result = engine.count_checked(document);
    if (!result.ok()) {
        std::fprintf(stderr, "error: %s\n",
                     descend::to_string(result.status).c_str());
        std::exit(1);
    }
    count = result.count;
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
        .count();
}

}  // namespace

int main(int argc, char** argv)
{
    descend::PaddedString document =
        argc >= 2 ? descend::PaddedString::from_file(argv[1])
                  : descend::PaddedString(
                        descend::workloads::generate_twitter_large(16 << 20));
    std::printf("tweet dump: %.1f MB\n\n",
                static_cast<double>(document.size()) / 1e6);

    // Without descendants the user must know where urls live — and must
    // enumerate every location (entities, user profiles, retweets, ...).
    const std::vector<const char*> manual = {
        "$.*.entities.urls.*.url",
        "$.*.user.profile_image_url",
        "$.*.retweeted_status.entities.urls.*.url",
        "$.*.retweeted_status.user.profile_image_url",
        "$.*.entities.urls.*.expanded_url",
        "$.*.retweeted_status.entities.urls.*.expanded_url",
    };
    std::size_t manual_total = 0;
    double manual_seconds = 0;
    for (const char* query : manual) {
        std::size_t count = 0;
        manual_seconds += time_count(document, query, count);
        manual_total += count;
        std::printf("  %-55s %8zu\n", query, count);
    }
    std::printf("descendant-free total: %zu urls in %.0f ms (%zu queries, and "
                "only the locations we knew about)\n\n",
                manual_total, manual_seconds * 1e3, manual.size());

    // With descendants: one query, no path knowledge required.
    for (const char* query : {"$..url", "$..expanded_url"}) {
        std::size_t count = 0;
        double seconds = time_count(document, query, count);
        std::printf("  %-55s %8zu   (%.2f GB/s)\n", query, count,
                    static_cast<double>(document.size()) / seconds / 1e9);
    }
    std::printf("\nThe descendant form also finds urls the manual enumeration "
                "missed\n(e.g. display_url variants or urls nested deeper than "
                "anticipated).\n");
    return 0;
}
