#!/usr/bin/env python3
"""Offline markdown link checker for the repo's documentation.

Verifies, without touching the network:

  * relative links point at files or directories that exist;
  * intra-document anchors (``#section-title``) resolve to a heading in
    the target file (GitHub's slug rules, approximated: lowercase,
    spaces to dashes, punctuation dropped);
  * reference-style definitions are not dangling.

External links (http/https/mailto) are only syntax-checked — CI must not
fail on someone else's outage. Exit status is the number of broken links.

Usage: scripts/check_md_links.py README.md DESIGN.md ...
"""

import os
import re
import sys

INLINE_LINK = re.compile(r"(?<!\!)\[(?P<text>[^\]]*)\]\((?P<target>[^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING = re.compile(r"^#{1,6}\s+(?P<title>.+?)\s*$", re.MULTILINE)
CODE_FENCE = re.compile(r"```.*?```", re.DOTALL)


def github_slug(title: str) -> str:
    """Approximate GitHub's heading-to-anchor slug."""
    slug = title.strip().lower()
    slug = re.sub(r"[`*_]", "", slug)              # inline formatting
    slug = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", slug)  # links in headings
    slug = re.sub(r"[^\w\- §.]", "", slug, flags=re.UNICODE)
    slug = re.sub(r"[ §.]+", "-", slug).strip("-")
    return slug


def anchors_of(path: str) -> set:
    with open(path, encoding="utf-8") as handle:
        text = CODE_FENCE.sub("", handle.read())
    return {github_slug(match.group("title")) for match in HEADING.finditer(text)}


def check_file(path: str) -> list:
    problems = []
    base = os.path.dirname(os.path.abspath(path))
    with open(path, encoding="utf-8") as handle:
        raw = handle.read()
    text = CODE_FENCE.sub("", raw)

    for match in INLINE_LINK.finditer(text):
        target = match.group("target")
        line = raw[: raw.find(match.group(0))].count("\n") + 1
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        if target.startswith("#"):
            if github_slug(target[1:]) not in anchors_of(path):
                problems.append((path, line, f"missing anchor {target}"))
            continue
        file_part, _, anchor = target.partition("#")
        resolved = os.path.normpath(os.path.join(base, file_part))
        if not os.path.exists(resolved):
            problems.append((path, line, f"missing file {file_part}"))
            continue
        if anchor and resolved.endswith(".md"):
            if github_slug(anchor) not in anchors_of(resolved):
                problems.append(
                    (path, line, f"missing anchor #{anchor} in {file_part}"))
    return problems


def main(argv: list) -> int:
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    problems = []
    for path in argv[1:]:
        if not os.path.exists(path):
            problems.append((path, 0, "file not found"))
            continue
        problems.extend(check_file(path))
    for path, line, message in problems:
        print(f"{path}:{line}: {message}")
    if not problems:
        print(f"checked {len(argv) - 1} files: all links resolve")
    return min(len(problems), 125)


if __name__ == "__main__":
    sys.exit(main(sys.argv))
