#!/usr/bin/env python3
"""Minimal descend-serve client (stdlib only).

Speaks the binary frame protocol documented in src/descend/serve/protocol.h:
a 44-byte little-endian request header, then query bytes, then body bytes;
a 40-byte response header, then (when requested with --values) the
length-prefixed projected-values body, then u64 match offsets, then obs
stats JSON.

Usage:
  serve_client.py (--socket PATH | --port N [--host H]) [options] QUERY [FILE]

  FILE is the JSON document (or NDJSON stream); '-' or absent reads stdin.

Options:
  --mode {single,multi,ndjson}   execution route (default: single);
                                 multi takes newline-separated queries
  --offsets                      request match offsets, print them
  --values                       request the projected value slices and
                                 print each on its own line (a truncated
                                 body prints a trailing marker)
  --stats                        request + print the obs stats JSON
  --deadline-ms N                per-request deadline (0 = server default)
  --max-depth N                  tenant depth limit (0 = server default)
  --max-matches N                tenant match cap (0 = server default)
  --raw-hex HEX                  send raw bytes instead of a framed request
                                 (malformed-frame testing); QUERY is unused
  --expect STATUS                exit 0 iff the response's serve status (or
                                 engine code) name equals STATUS

Exit codes: 0 response received and statuses ok (or --expect matched);
2 usage; 3 response carried a non-ok status; 5 connection/protocol failure.
"""

import argparse
import socket
import struct
import sys

REQUEST_MAGIC = 0x76727344   # "Dsrv"
RESPONSE_MAGIC = 0x73727344  # "Dsrs"
VERSION = 1

REQUEST_HEADER = struct.Struct("<IHHIIIQIIQ")   # 44 bytes
RESPONSE_HEADER = struct.Struct("<IHHHHIQQQ")   # 40 bytes

MODES = {"single": 0, "multi": 1, "ndjson": 2}
FLAG_WANT_OFFSETS = 1 << 0
FLAG_WANT_STATS = 1 << 1
FLAG_WANT_VALUES = 1 << 2
FLAG_CACHE_HIT = 1 << 0
FLAG_HAS_VALUES = 1 << 1
FLAG_VALUES_TRUNCATED = 1 << 2

SERVE_STATUS = [
    "ok", "bad-magic", "bad-version", "bad-mode", "bad-reserved",
    "query-too-large", "body-too-large", "truncated-frame", "bad-query",
    "shutting-down", "internal",
]
# Mirrors StatusCode in src/descend/util/status.h.
ENGINE_CODE = [
    "ok", "empty-document", "invalid-document", "unbalanced-structure",
    "truncated-string", "trailing-content", "invalid-utf8-in-label",
    "depth-limit", "size-limit", "match-limit", "deadline-exceeded",
    "cancelled",
]


def name_of(names, value):
    return names[value] if value < len(names) else "unknown-%d" % value


def pack_request(mode, flags, deadline_ms, max_depth, max_matches, query,
                 body):
    header = REQUEST_HEADER.pack(REQUEST_MAGIC, VERSION, mode, flags,
                                 deadline_ms, max_depth, max_matches,
                                 len(query), 0, len(body))
    return header + query + body


def read_exactly(sock, count):
    chunks = []
    while count > 0:
        chunk = sock.recv(min(count, 1 << 16))
        if not chunk:
            raise ConnectionError("server closed the connection mid-response")
        chunks.append(chunk)
        count -= len(chunk)
    return b"".join(chunks)


def read_response(sock):
    header = read_exactly(sock, RESPONSE_HEADER.size)
    (magic, version, serve_status, engine_code, flags, stats_len,
     engine_offset, match_count, offsets_count) = RESPONSE_HEADER.unpack(
         header)
    if magic != RESPONSE_MAGIC or version != VERSION:
        raise ConnectionError("response header is not a Dsrs v%d frame"
                              % VERSION)
    values = []
    if flags & FLAG_HAS_VALUES:
        (values_len,) = struct.unpack("<Q", read_exactly(sock, 8))
        body = read_exactly(sock, values_len)
        cursor = 0
        while cursor < len(body):
            (length,) = struct.unpack_from("<I", body, cursor)
            cursor += 4
            if cursor + length > len(body):
                raise ConnectionError("value overruns the declared body")
            values.append(body[cursor:cursor + length])
            cursor += length
    offsets = struct.unpack("<%dQ" % offsets_count,
                            read_exactly(sock, 8 * offsets_count))
    stats = read_exactly(sock, stats_len).decode("utf-8", "replace")
    return {
        "serve_status": serve_status,
        "engine_code": engine_code,
        "engine_offset": engine_offset,
        "cache_hit": bool(flags & FLAG_CACHE_HIT),
        "values_truncated": bool(flags & FLAG_VALUES_TRUNCATED),
        "match_count": match_count,
        "offsets": offsets,
        "values": values,
        "stats": stats,
    }


def connect(args):
    if args.socket:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.connect(args.socket)
    else:
        sock = socket.create_connection((args.host, args.port))
    return sock


def main():
    parser = argparse.ArgumentParser(add_help=True)
    parser.add_argument("--socket")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int)
    parser.add_argument("--mode", choices=sorted(MODES), default="single")
    parser.add_argument("--offsets", action="store_true")
    parser.add_argument("--values", action="store_true")
    parser.add_argument("--stats", action="store_true")
    parser.add_argument("--deadline-ms", type=int, default=0)
    parser.add_argument("--max-depth", type=int, default=0)
    parser.add_argument("--max-matches", type=int, default=0)
    parser.add_argument("--raw-hex")
    parser.add_argument("--expect")
    parser.add_argument("query", nargs="?", default="")
    parser.add_argument("file", nargs="?")
    args = parser.parse_args()

    if (args.socket is None) == (args.port is None):
        print("serve_client: exactly one of --socket / --port is required",
              file=sys.stderr)
        return 2
    if not args.raw_hex and not args.query:
        print("serve_client: QUERY is required (unless --raw-hex)",
              file=sys.stderr)
        return 2

    if args.raw_hex:
        wire = bytes.fromhex(args.raw_hex)
    else:
        if args.file and args.file != "-":
            with open(args.file, "rb") as handle:
                body = handle.read()
        else:
            body = sys.stdin.buffer.read()
        flags = (FLAG_WANT_OFFSETS if args.offsets else 0) | \
                (FLAG_WANT_STATS if args.stats else 0) | \
                (FLAG_WANT_VALUES if args.values else 0)
        wire = pack_request(MODES[args.mode], flags, args.deadline_ms,
                            args.max_depth, args.max_matches,
                            args.query.encode("utf-8"), body)

    try:
        with connect(args) as sock:
            sock.sendall(wire)
            response = read_response(sock)
    except (OSError, ConnectionError) as error:
        print("serve_client: %s" % error, file=sys.stderr)
        return 5

    serve_name = name_of(SERVE_STATUS, response["serve_status"])
    engine_name = name_of(ENGINE_CODE, response["engine_code"])
    print("serve_status=%s engine=%s engine_offset=%d matches=%d cache=%s"
          % (serve_name, engine_name, response["engine_offset"],
             response["match_count"],
             "hit" if response["cache_hit"] else "miss"))
    if args.offsets:
        print("offsets=%s" % ",".join(str(o) for o in response["offsets"]))
    if args.values:
        for value in response["values"]:
            sys.stdout.buffer.write(value + b"\n")
        if response["values_truncated"]:
            print("... (values truncated at the server's projection cap)")
    if args.stats and response["stats"]:
        print(response["stats"])

    if args.expect:
        return 0 if args.expect in (serve_name, engine_name) else 3
    return 0 if serve_name == "ok" and engine_name == "ok" else 3


if __name__ == "__main__":
    sys.exit(main())
