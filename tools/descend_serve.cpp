/**
 * @file
 * descend-serve: the long-lived JSONPath query daemon.
 *
 *   descend-serve --socket /path/sock [options]
 *   descend-serve --port N [--host H]  [options]
 *
 * Accepts length-prefixed binary frames (see src/descend/serve/protocol.h
 * and DESIGN.md §4.9) carrying one query + document each, over a Unix or
 * loopback TCP socket, and answers with match counts, optional offsets,
 * and optional obs stats. Compiled query automata are cached across
 * requests (sharded LRU), so a steady query mix pays compilation once.
 *
 * Options:
 *
 *   --socket PATH        listen on a Unix socket at PATH
 *   --host H --port N    listen on TCP H:N (default host 127.0.0.1;
 *                        port 0 picks an ephemeral port, printed on
 *                        startup). Exactly one of --socket/--port.
 *   --workers N          request worker threads (default: all cores)
 *   --cache-capacity N   compiled-query cache entries (default 256)
 *   --cache-shards N     cache lock shards (default 8)
 *   --drain-ms N         SIGTERM drain grace before in-flight requests
 *                        are cancelled (default 5000)
 *   --default-deadline-ms N   deadline for requests that set none (0 =
 *                        none, the default)
 *   --max-deadline-ms N  per-tenant deadline cap (0 = uncapped)
 *   --max-depth N        server-wide EngineLimits::max_depth ceiling
 *   --max-matches N      server-wide EngineLimits::max_match_count ceiling
 *   --max-query-bytes N  frame admission cap on query text (default 64K)
 *   --max-body-bytes N   frame admission cap on document size (default 64M)
 *   --max-projected-bytes N  per-response projected-values cap: oversized
 *                        result sets truncate at a value boundary and set
 *                        the values-truncated flag (default 64M, 0 = off)
 *   --simd LEVEL         kernel tier: scalar | avx2 | avx512
 *   --fused MODE         multi-query backend: auto | lanes | product
 *                        (default auto: one product automaton per set,
 *                        lanes when a set trips the product state cap)
 *   --within-skip        enable the within-element label skip extension
 *   --help               this text
 *
 * On startup prints exactly one "listening on ..." line to stdout (and
 * flushes), so supervisors can wait for readiness. SIGTERM/SIGINT start
 * the graceful drain: stop accepting, answer new frames kShuttingDown,
 * let in-flight requests finish for --drain-ms, then cancel them.
 *
 * Exit codes: 0 clean shutdown, 2 usage error, 5 socket setup failure.
 */
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "descend/multi/fused.h"
#include "descend/serve/server.h"
#include "descend/simd/dispatch.h"

namespace {

using namespace descend;

serve::Server* g_server = nullptr;

void handle_signal(int)
{
    if (g_server != nullptr) {
        g_server->shutdown();  // async-signal-safe: one eventfd write
    }
}

void usage()
{
    std::fputs(
        "usage: descend-serve --socket PATH | --port N [--host H]\n"
        "  --workers N | --cache-capacity N | --cache-shards N\n"
        "  --drain-ms N | --default-deadline-ms N | --max-deadline-ms N\n"
        "  --max-depth N | --max-matches N\n"
        "  --max-query-bytes N | --max-body-bytes N | --max-projected-bytes N\n"
        "  --simd scalar|avx2|avx512 | --fused auto|lanes|product\n"
        "  --within-skip\n"
        "exit codes: 0 clean shutdown, 2 usage, 5 socket failure\n",
        stderr);
}

bool parse_u64(const char* text, std::uint64_t& value)
{
    char* end = nullptr;
    value = std::strtoull(text, &end, 10);
    return end != text && *end == '\0';
}

}  // namespace

int main(int argc, char** argv)
{
    serve::ServerConfig config;
    bool have_endpoint = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next_u64 = [&](std::uint64_t& value) {
            return ++i < argc && parse_u64(argv[i], value);
        };
        std::uint64_t value = 0;
        if (arg == "--socket") {
            if (++i >= argc) {
                usage();
                return 2;
            }
            config.unix_path = argv[i];
            have_endpoint = true;
        } else if (arg == "--host") {
            if (++i >= argc) {
                usage();
                return 2;
            }
            config.tcp_host = argv[i];
        } else if (arg == "--port") {
            if (!next_u64(value) || value > 65535) {
                usage();
                return 2;
            }
            config.tcp_port = static_cast<std::uint16_t>(value);
            have_endpoint = true;
        } else if (arg == "--workers") {
            if (!next_u64(value)) {
                usage();
                return 2;
            }
            config.workers = static_cast<std::size_t>(value);
        } else if (arg == "--cache-capacity") {
            if (!next_u64(value)) {
                usage();
                return 2;
            }
            config.cache_capacity = static_cast<std::size_t>(value);
        } else if (arg == "--cache-shards") {
            if (!next_u64(value)) {
                usage();
                return 2;
            }
            config.cache_shards = static_cast<std::size_t>(value);
        } else if (arg == "--drain-ms") {
            if (!next_u64(value)) {
                usage();
                return 2;
            }
            config.drain_ms = static_cast<std::uint32_t>(value);
        } else if (arg == "--default-deadline-ms") {
            if (!next_u64(value)) {
                usage();
                return 2;
            }
            config.policy.default_deadline_ms =
                static_cast<std::uint32_t>(value);
        } else if (arg == "--max-deadline-ms") {
            if (!next_u64(value)) {
                usage();
                return 2;
            }
            config.policy.max_deadline_ms = static_cast<std::uint32_t>(value);
        } else if (arg == "--max-depth") {
            if (!next_u64(value)) {
                usage();
                return 2;
            }
            config.policy.engine.limits.max_depth =
                static_cast<std::size_t>(value);
        } else if (arg == "--max-matches") {
            if (!next_u64(value)) {
                usage();
                return 2;
            }
            config.policy.engine.limits.max_match_count =
                static_cast<std::size_t>(value);
        } else if (arg == "--max-query-bytes") {
            if (!next_u64(value)) {
                usage();
                return 2;
            }
            config.frame_limits.max_query_bytes =
                static_cast<std::size_t>(value);
        } else if (arg == "--max-body-bytes") {
            if (!next_u64(value)) {
                usage();
                return 2;
            }
            config.frame_limits.max_body_bytes =
                static_cast<std::size_t>(value);
        } else if (arg == "--max-projected-bytes") {
            if (!next_u64(value)) {
                usage();
                return 2;
            }
            config.policy.max_projected_bytes =
                static_cast<std::size_t>(value);
        } else if (arg == "--simd" || arg.rfind("--simd=", 0) == 0) {
            const char* level = nullptr;
            if (arg == "--simd") {
                if (++i >= argc) {
                    usage();
                    return 2;
                }
                level = argv[i];
            } else {
                level = arg.c_str() + std::strlen("--simd=");
            }
            if (!simd::parse_level(level, config.policy.engine.simd)) {
                std::fprintf(stderr, "descend-serve: unknown SIMD level '%s'\n",
                             level);
                return 2;
            }
        } else if (arg == "--fused" || arg.rfind("--fused=", 0) == 0) {
            const char* backend = nullptr;
            if (arg == "--fused") {
                if (++i >= argc) {
                    usage();
                    return 2;
                }
                backend = argv[i];
            } else {
                backend = arg.c_str() + std::strlen("--fused=");
            }
            auto parsed = multi::parse_fused_backend(backend);
            if (!parsed) {
                std::fprintf(stderr,
                             "descend-serve: unknown fused backend '%s'\n",
                             backend);
                return 2;
            }
            config.policy.fused_backend = *parsed;
        } else if (arg == "--within-skip") {
            config.policy.engine.label_within_skipping = true;
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 2;
        } else {
            std::fprintf(stderr, "descend-serve: unknown option '%s'\n",
                         arg.c_str());
            usage();
            return 2;
        }
    }
    if (!have_endpoint) {
        usage();
        return 2;
    }

    serve::Server server(config);
    std::string error;
    if (!server.start(error)) {
        std::fprintf(stderr, "descend-serve: %s\n", error.c_str());
        return 5;
    }
    g_server = &server;
    struct sigaction action {};
    action.sa_handler = handle_signal;
    ::sigaction(SIGTERM, &action, nullptr);
    ::sigaction(SIGINT, &action, nullptr);

    if (!config.unix_path.empty()) {
        std::printf("listening on unix:%s\n", config.unix_path.c_str());
    } else {
        std::printf("listening on tcp:%s:%u\n", config.tcp_host.c_str(),
                    static_cast<unsigned>(server.tcp_port()));
    }
    std::fflush(stdout);

    server.wait();
    g_server = nullptr;

    const serve::ServerCounters counters = server.counters();
    const serve::CacheStats cache = server.cache_stats();
    std::fprintf(stderr,
                 "descend-serve: served %llu requests over %llu connections "
                 "(%llu protocol errors, %llu drain rejections); "
                 "cache %llu hits / %llu misses / %llu evictions\n",
                 static_cast<unsigned long long>(counters.requests_served),
                 static_cast<unsigned long long>(
                     counters.connections_accepted),
                 static_cast<unsigned long long>(counters.protocol_errors),
                 static_cast<unsigned long long>(
                     counters.shutdown_rejections),
                 static_cast<unsigned long long>(cache.hits),
                 static_cast<unsigned long long>(cache.misses),
                 static_cast<unsigned long long>(cache.evictions));
    return 0;
}
