/**
 * @file
 * descend-cli: run JSONPath queries over JSON files from the command line.
 *
 *   descend-cli [options] '<query>' [file...]
 *   descend-cli [options] --query Q1 --query Q2 ... [file...]
 *
 * Reads from stdin when no file is given. Options:
 *
 *   --count            print only the number of matches
 *   --offsets          print byte offsets instead of values
 *   --project MODE     materialize matched values through the projection
 *                      subsystem (src/descend/project) instead of the
 *                      scalar extractor:
 *                        slices  raw input slices, byte-verbatim (the
 *                                default printing, but spans are extended
 *                                with the SIMD mask walk)
 *                        ndjson  compact re-serialization, one value per
 *                                output line, no prefixes — pure NDJSON
 *                                on stdout (string escapes untouched)
 *                        count   extend every span but print only totals
 *                                ("values=N bytes=B"; the overhead
 *                                baseline used by bench_projection)
 *                      conflicts with --count and --offsets
 *   --limit N          print at most N results (default: all)
 *   --engine NAME      descend (default) | surfer | ski | dom
 *   --query Q          add a query to the set (repeatable). With more than
 *                      one query the descend engine evaluates the whole set
 *                      in one fused pass (one block classification, N
 *                      automata); matches print as "query Q: value"
 *   --queries FILE     add every query listed in FILE (one per line; blank
 *                      lines and lines starting with '#' are skipped)
 *   --fused MODE       multi-query backend: auto (default) | lanes |
 *                      product. `product` compiles the whole set into ONE
 *                      product automaton (O(1) automaton work per event;
 *                      scales to 1k+ queries) and fails when the set
 *                      exceeds the state cap; `lanes` simulates per-query
 *                      lanes; `auto` prefers product and falls back
 *   --simd LEVEL       kernel tier: scalar | avx2 | avx512 (default: best
 *                      supported; unavailable tiers fall back). Also
 *                      settable via the DESCEND_SIMD_LEVEL env var, which
 *                      acts as a cap on whatever is requested here.
 *   --scalar           shorthand for --simd scalar
 *   --no-head-skip     disable memmem head-skipping
 *   --within-skip      enable the within-element label skip extension
 *   --stats            print the JSON observability report to stderr
 *                      (counters, block attribution, phase timings — see
 *                      DESIGN.md §4.6; counters are live when the library
 *                      was built with DESCEND_OBS=ON, the default)
 *   --validate         strictly validate the input first (DOM parse)
 *   --ndjson           treat input as newline-delimited JSON: SIMD record
 *                      splitting + parallel sharded execution (descend
 *                      engine only); matches print as "record R: value"
 *   --threads N        worker threads for --ndjson (default: all cores)
 *   --fail-fast        with --ndjson, stop at the first malformed record
 *                      instead of skipping it and continuing
 *   --retry-scalar     with --ndjson, re-run each failed record on the
 *                      scalar kernel tier before reporting it (tier
 *                      divergences indicate a kernel bug and are counted
 *                      in the --stats report)
 *   --deadline-ms N    per-document/per-record run deadline; an expired
 *                      run stops at batch granularity with a "deadline
 *                      exceeded" status
 *   --stream-budget-ms N
 *                      with --ndjson, whole-stream budget: when it
 *                      expires the stream stops like a fail-fast floor at
 *                      the first unfinished record (deterministic for
 *                      every --threads value)
 *   --help             this text
 *
 * Exit codes:
 *   0  success
 *   1  internal or unclassified error
 *   2  usage error (bad flags or malformed query)
 *   3  malformed input document
 *   4  resource limit or governance stop (deadline / cancellation)
 *   5  file I/O error
 */
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "descend/baselines/dom_engine.h"
#include "descend/baselines/ski_engine.h"
#include "descend/baselines/surfer_engine.h"
#include "descend/descend.h"
#include "descend/json/dom.h"
#include "descend/multi/multi_stream.h"

namespace {

using namespace descend;

struct CliOptions {
    /** The query set: one entry = the classic single-query paths; more =
     *  fused multi-query execution (descend engine only). */
    std::vector<std::string> queries;
    std::vector<std::string> files;
    std::string engine = "descend";
    bool count_only = false;
    bool offsets_only = false;
    bool stats = false;
    bool validate = false;
    bool ndjson = false;
    bool fail_fast = false;
    bool retry_scalar = false;
    std::uint64_t deadline_ms = 0;       // 0 = none
    std::uint64_t stream_budget_ms = 0;  // 0 = none
    std::size_t threads = 0;  // 0 = hardware concurrency
    std::size_t limit = 0;    // 0 = unlimited
    multi::FusedBackend fused = multi::FusedBackend::kAuto;
    project::ProjectionMode project = project::ProjectionMode::kNone;
    EngineOptions engine_options;
};

void usage()
{
    std::fputs(
        "usage: descend-cli [options] '<query>' [file...]\n"
        "       descend-cli [options] --query Q1 --query Q2 ... [file...]\n"
        "  --count | --offsets | --limit N | --project slices|ndjson|count\n"
        "  --engine descend|surfer|ski|dom   --simd scalar|avx2|avx512 | --scalar\n"
        "  --query Q (repeatable) | --queries FILE   fused multi-query set\n"
        "  --fused auto|lanes|product   multi-query execution backend\n"
        "  --no-head-skip | --within-skip | --stats | --validate\n"
        "  --ndjson [--threads N] [--fail-fast | --retry-scalar]\n"
        "  --deadline-ms N | --stream-budget-ms N   run governance\n"
        "exit codes: 0 ok, 1 error, 2 usage, 3 malformed input,\n"
        "            4 limit/deadline, 5 I/O\n",
        stderr);
}

bool parse_args(int argc, char** argv, CliOptions& options)
{
    std::vector<std::string> positional;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--count") {
            options.count_only = true;
        } else if (arg == "--offsets") {
            options.offsets_only = true;
        } else if (arg == "--stats") {
            options.stats = true;
        } else if (arg == "--validate") {
            options.validate = true;
        } else if (arg == "--ndjson") {
            options.ndjson = true;
        } else if (arg == "--fail-fast") {
            options.fail_fast = true;
        } else if (arg == "--retry-scalar") {
            options.retry_scalar = true;
        } else if (arg == "--deadline-ms") {
            if (++i >= argc) {
                return false;
            }
            options.deadline_ms = std::strtoull(argv[i], nullptr, 10);
        } else if (arg == "--stream-budget-ms") {
            if (++i >= argc) {
                return false;
            }
            options.stream_budget_ms = std::strtoull(argv[i], nullptr, 10);
        } else if (arg == "--threads") {
            if (++i >= argc) {
                return false;
            }
            options.threads = static_cast<std::size_t>(std::strtoull(argv[i], nullptr, 10));
        } else if (arg == "--scalar") {
            options.engine_options.simd = simd::Level::scalar;
        } else if (arg == "--simd" || arg.rfind("--simd=", 0) == 0) {
            const char* value = nullptr;
            if (arg == "--simd") {
                if (++i >= argc) {
                    return false;
                }
                value = argv[i];
            } else {
                value = arg.c_str() + std::strlen("--simd=");
            }
            if (!simd::parse_level(value, options.engine_options.simd)) {
                std::fprintf(stderr, "descend-cli: unknown SIMD level '%s'\n",
                             value);
                return false;
            }
        } else if (arg == "--fused" || arg.rfind("--fused=", 0) == 0) {
            const char* value = nullptr;
            if (arg == "--fused") {
                if (++i >= argc) {
                    return false;
                }
                value = argv[i];
            } else {
                value = arg.c_str() + std::strlen("--fused=");
            }
            auto backend = multi::parse_fused_backend(value);
            if (!backend.has_value()) {
                std::fprintf(stderr,
                             "descend-cli: unknown fused backend '%s'\n", value);
                return false;
            }
            options.fused = *backend;
        } else if (arg == "--project" || arg.rfind("--project=", 0) == 0) {
            const char* value = nullptr;
            if (arg == "--project") {
                if (++i >= argc) {
                    return false;
                }
                value = argv[i];
            } else {
                value = arg.c_str() + std::strlen("--project=");
            }
            if (!project::parse_projection_mode(value, options.project)) {
                std::fprintf(stderr,
                             "descend-cli: unknown projection mode '%s'\n",
                             value);
                return false;
            }
        } else if (arg == "--no-head-skip") {
            options.engine_options.head_skipping = false;
        } else if (arg == "--within-skip") {
            options.engine_options.label_within_skipping = true;
        } else if (arg == "--limit") {
            if (++i >= argc) {
                return false;
            }
            options.limit = static_cast<std::size_t>(std::strtoull(argv[i], nullptr, 10));
        } else if (arg == "--query") {
            if (++i >= argc) {
                return false;
            }
            options.queries.emplace_back(argv[i]);
        } else if (arg == "--queries") {
            if (++i >= argc) {
                return false;
            }
            std::ifstream file(argv[i]);
            if (!file) {
                std::fprintf(stderr, "descend-cli: cannot open queries file '%s'\n",
                             argv[i]);
                return false;
            }
            std::string line;
            while (std::getline(file, line)) {
                if (!line.empty() && line.back() == '\r') {
                    line.pop_back();
                }
                if (line.empty() || line[0] == '#') {
                    continue;
                }
                options.queries.push_back(line);
            }
        } else if (arg == "--engine") {
            if (++i >= argc) {
                return false;
            }
            options.engine = argv[i];
        } else if (arg == "--help" || arg == "-h") {
            return false;
        } else {
            positional.push_back(std::move(arg));
        }
    }
    if (options.queries.empty()) {
        // Classic form: the first positional is the query.
        if (positional.empty()) {
            return false;
        }
        options.queries.push_back(positional.front());
        options.files.assign(positional.begin() + 1, positional.end());
    } else {
        // Explicit --query/--queries: every positional is a file.
        options.files = std::move(positional);
    }
    return true;
}

/** Exit-code taxonomy (documented in usage()): malformed input is 3,
 *  resource limits and governance stops are 4. */
int exit_code_for(const EngineStatus& status)
{
    if (status.ok()) {
        return 0;
    }
    if (status.is_limit() || status.is_governance()) {
        return 4;
    }
    return 3;
}

/**
 * Prints projected values for one document view per --project mode:
 * slices verbatim (with the caller's line label), ndjson as bare compact
 * lines, count as a trailing totals line. Tallies feed the caller's obs
 * registry through the extender.
 */
struct ProjectionPrinter {
    const CliOptions& options;
    project::SpanExtender extender;
    std::size_t shown = 0;
    std::size_t suppressed = 0;
    std::size_t values = 0;
    std::size_t bytes = 0;
    std::string scratch;

    ProjectionPrinter(const CliOptions& options, PaddedView view,
                      const simd::Kernels& kernels, obs::Counters* counters)
        : options(options), extender(view, kernels, counters)
    {
    }

    /** One match at @p offset (relative to the view); @p label prefixes
     *  slice lines ("query 0: " etc.), never ndjson lines. */
    void print(std::size_t offset, const char* label)
    {
        const project::ValueSpan span = extender.extend(offset);
        ++values;
        bytes += span.size();
        if (options.project == project::ProjectionMode::kCount) {
            return;
        }
        if (options.limit != 0 && shown >= options.limit) {
            ++suppressed;
            return;
        }
        ++shown;
        const std::string_view slice = extender.slice(span);
        if (options.project == project::ProjectionMode::kNdjson) {
            scratch.clear();
            project::append_compact_value(slice, scratch);
            scratch.push_back('\n');
            std::fwrite(scratch.data(), 1, scratch.size(), stdout);
        } else {
            std::printf("%s%.*s\n", label, static_cast<int>(slice.size()),
                        slice.data());
        }
    }

    /** Trailing lines: the elision marker and the count-mode totals. */
    void finish(const char* label)
    {
        if (suppressed != 0) {
            std::printf("%s... (%zu more)\n", label, suppressed);
        }
        if (options.project == project::ProjectionMode::kCount) {
            std::printf("%svalues=%zu bytes=%zu\n", label, values, bytes);
        }
    }
};

std::unique_ptr<JsonPathEngine> make_engine(const CliOptions& options)
{
    const std::string& query = options.queries.front();
    if (options.engine == "descend") {
        return std::make_unique<DescendEngine>(
            automaton::CompiledQuery::compile(query), options.engine_options);
    }
    if (options.engine == "surfer") {
        return std::make_unique<SurferEngine>(
            automaton::CompiledQuery::compile(query),
            options.engine_options.limits, options.engine_options.budget);
    }
    if (options.engine == "ski") {
        return std::make_unique<SkiEngine>(query::Query::parse(query),
                                           options.engine_options.simd,
                                           options.engine_options.limits,
                                           options.engine_options.budget);
    }
    if (options.engine == "dom") {
        return std::make_unique<DomEngine>(query::Query::parse(query),
                                           options.engine_options.limits,
                                           options.engine_options.budget);
    }
    throw Error("unknown engine: " + options.engine);
}

PaddedString read_stdin()
{
    std::ostringstream buffer;
    buffer << std::cin.rdbuf();
    return PaddedString(buffer.str());
}

int run_on(const CliOptions& options, const JsonPathEngine& engine,
           const std::string& source_name, const PaddedString& document,
           std::uint64_t compile_ns)
{
    if (options.validate) {
        json::ParseOptions parse_options;
        parse_options.max_depth = 1 << 16;
        json::parse(document.view(), parse_options);  // throws on bad input
    }
    const char* prefix = options.files.size() > 1 ? source_name.c_str() : "";
    const char* separator = options.files.size() > 1 ? ": " : "";

    if (options.count_only && !options.stats) {
        CountSink count_sink;
        EngineStatus count_status = engine.run(document, count_sink);
        if (!count_status.ok()) {
            std::fprintf(stderr, "descend-cli: %s%s%s\n", prefix, separator,
                         to_string(count_status).c_str());
            return exit_code_for(count_status);
        }
        std::printf("%s%s%zu\n", prefix, separator, count_sink.count());
        return 0;
    }
    OffsetSink sink;
    RunStats stats;
    if (const auto* descend_engine = dynamic_cast<const DescendEngine*>(&engine)) {
        stats = descend_engine->run_with_stats(document, sink);
    } else {
        stats.status = engine.run(document, sink);
    }
    if (!stats.status.ok()) {
        std::fprintf(stderr, "descend-cli: %s%s%s\n", prefix, separator,
                     to_string(stats.status).c_str());
        return exit_code_for(stats.status);
    }
    if (options.count_only) {
        std::printf("%s%s%zu\n", prefix, separator, sink.offsets().size());
    } else if (options.project != project::ProjectionMode::kNone) {
        obs::ScopedPhaseTimer extract_timer(&stats.timings, obs::Phase::kExtract);
        const simd::Kernels& kernels =
            simd::kernels_for(options.engine_options.simd);
        ProjectionPrinter printer(options, document, kernels, &stats.counters);
        const std::string label = std::string(prefix) + separator;
        for (std::size_t offset : sink.offsets()) {
            printer.print(offset, label.c_str());
        }
        printer.finish(label.c_str());
    } else {
        obs::ScopedPhaseTimer extract_timer(&stats.timings, obs::Phase::kExtract);
        std::size_t shown = 0;
        for (std::size_t offset : sink.offsets()) {
            if (options.limit != 0 && ++shown > options.limit) {
                std::printf("%s%s... (%zu more)\n", prefix, separator,
                            sink.offsets().size() - options.limit);
                break;
            }
            if (options.offsets_only) {
                std::printf("%s%s%zu\n", prefix, separator, offset);
            } else {
                std::string_view value = extract_value(document, offset);
                std::printf("%s%s%.*s\n", prefix, separator,
                            static_cast<int>(value.size()), value.data());
            }
        }
    }
    if (options.stats) {
        obs::RunReport report;
        report.engine = engine.name();
        report.document_bytes = document.size();
        report.matches = sink.offsets().size();
        report.stats = stats;
        report.stats.timings.add(obs::Phase::kCompile, compile_ns);
        std::fprintf(stderr, "%s\n", obs::to_json(report).c_str());
    }
    return 0;
}

/**
 * Fused multi-query run over a single document: one classification pass,
 * N automata (see src/descend/multi). Matches print per query in set
 * order; --count prints one per-query count line.
 */
int run_multi(const CliOptions& options, const multi::FusedEngine& engine,
              const std::string& source_name, const PaddedString& document,
              std::uint64_t compile_ns)
{
    if (options.validate) {
        json::ParseOptions parse_options;
        parse_options.max_depth = 1 << 16;
        json::parse(document.view(), parse_options);  // throws on bad input
    }
    const char* prefix = options.files.size() > 1 ? source_name.c_str() : "";
    const char* separator = options.files.size() > 1 ? ": " : "";

    multi::CollectingMultiSink sink(engine.query_set().size());
    RunStats stats = engine.run_with_stats(document, sink);
    if (!stats.status.ok()) {
        std::fprintf(stderr, "descend-cli: %s%s%s\n", prefix, separator,
                     to_string(stats.status).c_str());
        return exit_code_for(stats.status);
    }
    std::size_t matches = 0;
    for (std::size_t q = 0; q < engine.query_set().size(); ++q) {
        const std::vector<std::size_t>& offsets = sink.offsets(q);
        matches += offsets.size();
        if (options.count_only) {
            std::printf("%s%squery %zu: %zu\n", prefix, separator, q,
                        offsets.size());
            continue;
        }
        if (options.project != project::ProjectionMode::kNone) {
            // Per-owner fanout: each query's matches project independently,
            // in set order (document order within a query).
            const simd::Kernels& kernels =
                simd::kernels_for(options.engine_options.simd);
            ProjectionPrinter printer(options, document, kernels,
                                      &stats.counters);
            const std::string label = std::string(prefix) + separator +
                                      "query " + std::to_string(q) + ": ";
            for (std::size_t offset : offsets) {
                printer.print(offset, label.c_str());
            }
            printer.finish(label.c_str());
            continue;
        }
        std::size_t shown = 0;
        for (std::size_t offset : offsets) {
            if (options.limit != 0 && ++shown > options.limit) {
                std::printf("%s%squery %zu: ... (%zu more)\n", prefix,
                            separator, q, offsets.size() - options.limit);
                break;
            }
            if (options.offsets_only) {
                std::printf("%s%squery %zu: %zu\n", prefix, separator, q,
                            offset);
            } else {
                std::string_view value = extract_value(document, offset);
                std::printf("%s%squery %zu: %.*s\n", prefix, separator, q,
                            static_cast<int>(value.size()), value.data());
            }
        }
    }
    if (options.stats) {
        obs::RunReport report;
        report.engine = engine.name();
        report.document_bytes = document.size();
        report.matches = matches;
        report.stats = stats;
        report.stats.timings.add(obs::Phase::kCompile, compile_ns);
        std::fprintf(stderr, "%s\n", obs::to_json(report).c_str());
    }
    return 0;
}

/** Builds the stream options shared by both NDJSON paths: error policy,
 *  stream budget, and the per-record deadline (--deadline-ms). */
stream::StreamOptions make_stream_options(const CliOptions& options)
{
    stream::StreamOptions stream_options;
    stream_options.threads = options.threads;
    stream_options.policy = options.fail_fast ? stream::ErrorPolicy::kFailFast
                            : options.retry_scalar
                                ? stream::ErrorPolicy::kRetryScalar
                                : stream::ErrorPolicy::kSkipRecord;
    stream_options.engine = options.engine_options;
    if (options.stream_budget_ms != 0) {
        stream_options.stream_budget =
            RunBudget::within_ms(options.stream_budget_ms);
    }
    stream_options.record_budget_ms = options.deadline_ms;
    return stream_options;
}

/**
 * NDJSON: SIMD record splitting + parallel sharded execution over the one
 * padded input buffer (see src/descend/stream). Matches arrive through the
 * stream sink in document order regardless of the thread count.
 */
int run_ndjson(const CliOptions& options, const PaddedString& input)
{
    stream::StreamOptions stream_options = make_stream_options(options);
    obs::PhaseStopwatch compile_watch;
    stream::StreamExecutor executor(
        automaton::CompiledQuery::compile(options.queries.front()),
        stream_options);
    const std::uint64_t compile_ns = compile_watch.elapsed_ns();

    const simd::Kernels& kernels =
        simd::kernels_for(options.engine_options.simd);
    obs::PhaseStopwatch split_watch;
    std::vector<stream::RecordSpan> records =
        stream::split_records(input, kernels);
    const std::uint64_t split_ns = split_watch.elapsed_ns();

    /** Prints each match as it is replayed. Record offsets are
     *  intra-record; extraction and span extension run over the record's
     *  SUBVIEW, so a scan can never cross into the following record's
     *  slice (the record-boundary contract, span.h). */
    struct PrintingSink final : stream::StreamSink {
        const CliOptions& options;
        const PaddedString& input;
        const std::vector<stream::RecordSpan>& records;
        const simd::Kernels& kernels;
        obs::Counters projection_counters;
        std::size_t projected_values = 0;
        std::size_t projected_bytes = 0;
        std::size_t shown = 0;
        std::size_t suppressed = 0;
        std::string scratch;

        PrintingSink(const CliOptions& options, const PaddedString& input,
                     const std::vector<stream::RecordSpan>& records,
                     const simd::Kernels& kernels)
            : options(options), input(input), records(records), kernels(kernels)
        {
        }

        PaddedView record_view(std::size_t record) const
        {
            const stream::RecordSpan& span = records[record];
            return PaddedView(input).subview(span.begin, span.end - span.begin);
        }

        void on_match(std::size_t record, std::size_t offset) override
        {
            if (options.count_only) {
                return;
            }
            if (options.project != project::ProjectionMode::kNone) {
                project::SpanExtender extender(record_view(record), kernels,
                                               &projection_counters);
                const project::ValueSpan span = extender.extend(offset);
                ++projected_values;
                projected_bytes += span.size();
                if (options.project == project::ProjectionMode::kCount) {
                    return;
                }
                if (options.limit != 0 && shown >= options.limit) {
                    ++suppressed;
                    return;
                }
                ++shown;
                const std::string_view slice = extender.slice(span);
                if (options.project == project::ProjectionMode::kNdjson) {
                    scratch.clear();
                    project::append_compact_value(slice, scratch);
                    scratch.push_back('\n');
                    std::fwrite(scratch.data(), 1, scratch.size(), stdout);
                } else {
                    std::printf("record %zu: %.*s\n", record,
                                static_cast<int>(slice.size()), slice.data());
                }
                return;
            }
            if (options.limit != 0 && shown >= options.limit) {
                ++suppressed;
                return;
            }
            ++shown;
            if (options.offsets_only) {
                std::printf("record %zu: %zu\n", record, offset);
            } else {
                std::string_view value = extract_value(record_view(record), offset);
                std::printf("record %zu: %.*s\n", record,
                            static_cast<int>(value.size()), value.data());
            }
        }

        void on_record_error(std::size_t record,
                             const EngineStatus& status) override
        {
            // Absolute stream position: span begin + intra-record offset,
            // so the byte can be seeked to directly in the input file.
            std::fprintf(stderr, "descend-cli: record %zu at byte %zu: %s\n",
                         record, records[record].begin + status.offset,
                         to_string(status).c_str());
        }
    };

    PrintingSink sink(options, input, records, kernels);
    stream::StreamResult result = executor.run_records(input, records, sink);
    if (sink.suppressed != 0) {
        std::printf("... (%zu more)\n", sink.suppressed);
    }
    if (options.count_only) {
        std::printf("%zu\n", result.matches);
    }
    if (options.project == project::ProjectionMode::kCount) {
        std::printf("values=%zu bytes=%zu\n", sink.projected_values,
                    sink.projected_bytes);
    }
    result.counters.merge(sink.projection_counters);
    if (options.stats) {
        obs::StreamReport report;
        report.engine = "descend";
        report.document_bytes = input.size();
        report.records = result.records;
        report.matches = result.matches;
        report.failed_records = result.failed_records;
        report.record_blocks = result.record_blocks;
        report.counters = result.counters;
        report.timings = result.timings;
        report.timings.add(obs::Phase::kCompile, compile_ns);
        report.timings.add(obs::Phase::kSplit, split_ns);
        report.error_tally = result.error_tally;
        std::fprintf(stderr, "%s\n", obs::to_json(report).c_str());
    }
    return result.ok() ? 0 : exit_code_for(result.first_error);
}

/** NDJSON × fused query set: N queries × M records off one splitter pass. */
int run_multi_ndjson(const CliOptions& options, const PaddedString& input)
{
    stream::StreamOptions stream_options = make_stream_options(options);
    obs::PhaseStopwatch compile_watch;
    multi::MultiStreamExecutor executor = multi::MultiStreamExecutor::for_queries(
        options.queries, stream_options, options.fused);
    const std::uint64_t compile_ns = compile_watch.elapsed_ns();

    const simd::Kernels& kernels =
        simd::kernels_for(options.engine_options.simd);
    obs::PhaseStopwatch split_watch;
    std::vector<stream::RecordSpan> records =
        stream::split_records(input, kernels);
    const std::uint64_t split_ns = split_watch.elapsed_ns();

    struct PrintingSink final : multi::MultiStreamSink {
        const CliOptions& options;
        const PaddedString& input;
        const std::vector<stream::RecordSpan>& records;
        const simd::Kernels& kernels;
        obs::Counters projection_counters;
        std::size_t projected_values = 0;
        std::size_t projected_bytes = 0;
        std::size_t shown = 0;
        std::size_t suppressed = 0;
        std::string scratch;

        PrintingSink(const CliOptions& options, const PaddedString& input,
                     const std::vector<stream::RecordSpan>& records,
                     const simd::Kernels& kernels)
            : options(options), input(input), records(records), kernels(kernels)
        {
        }

        PaddedView record_view(std::size_t record) const
        {
            const stream::RecordSpan& span = records[record];
            return PaddedView(input).subview(span.begin, span.end - span.begin);
        }

        void on_match(std::size_t query, std::size_t record,
                      std::size_t offset) override
        {
            if (options.count_only) {
                return;
            }
            if (options.project != project::ProjectionMode::kNone) {
                project::SpanExtender extender(record_view(record), kernels,
                                               &projection_counters);
                const project::ValueSpan span = extender.extend(offset);
                ++projected_values;
                projected_bytes += span.size();
                if (options.project == project::ProjectionMode::kCount) {
                    return;
                }
                if (options.limit != 0 && shown >= options.limit) {
                    ++suppressed;
                    return;
                }
                ++shown;
                const std::string_view slice = extender.slice(span);
                if (options.project == project::ProjectionMode::kNdjson) {
                    scratch.clear();
                    project::append_compact_value(slice, scratch);
                    scratch.push_back('\n');
                    std::fwrite(scratch.data(), 1, scratch.size(), stdout);
                } else {
                    std::printf("query %zu record %zu: %.*s\n", query, record,
                                static_cast<int>(slice.size()), slice.data());
                }
                return;
            }
            if (options.limit != 0 && shown >= options.limit) {
                ++suppressed;
                return;
            }
            ++shown;
            if (options.offsets_only) {
                std::printf("query %zu record %zu: %zu\n", query, record,
                            offset);
            } else {
                std::string_view value =
                    extract_value(record_view(record), offset);
                std::printf("query %zu record %zu: %.*s\n", query, record,
                            static_cast<int>(value.size()), value.data());
            }
        }

        void on_record_error(std::size_t record,
                             const EngineStatus& status) override
        {
            std::fprintf(stderr, "descend-cli: record %zu at byte %zu: %s\n",
                         record, records[record].begin + status.offset,
                         to_string(status).c_str());
        }
    };

    PrintingSink sink(options, input, records, kernels);
    stream::StreamResult result = executor.run_records(input, records, sink);
    if (sink.suppressed != 0) {
        std::printf("... (%zu more)\n", sink.suppressed);
    }
    if (options.count_only) {
        std::printf("%zu\n", result.matches);
    }
    if (options.project == project::ProjectionMode::kCount) {
        std::printf("values=%zu bytes=%zu\n", sink.projected_values,
                    sink.projected_bytes);
    }
    result.counters.merge(sink.projection_counters);
    if (options.stats) {
        obs::StreamReport report;
        report.engine = executor.engine().name();
        report.document_bytes = input.size();
        report.records = result.records;
        report.matches = result.matches;
        report.failed_records = result.failed_records;
        report.record_blocks = result.record_blocks;
        report.counters = result.counters;
        report.timings = result.timings;
        report.timings.add(obs::Phase::kCompile, compile_ns);
        report.timings.add(obs::Phase::kSplit, split_ns);
        report.error_tally = result.error_tally;
        std::fprintf(stderr, "%s\n", obs::to_json(report).c_str());
    }
    return result.ok() ? 0 : exit_code_for(result.first_error);
}

}  // namespace

int main(int argc, char** argv)
{
    CliOptions options;
    if (!parse_args(argc, argv, options)) {
        usage();
        return 2;
    }
    if (options.ndjson && options.engine != "descend") {
        std::fputs("descend-cli: --ndjson supports only the descend engine\n",
                   stderr);
        return 2;
    }
    if (options.project != project::ProjectionMode::kNone &&
        (options.count_only || options.offsets_only)) {
        std::fputs("descend-cli: --project conflicts with --count/--offsets\n",
                   stderr);
        return 2;
    }
    if (options.fail_fast && options.retry_scalar) {
        std::fputs("descend-cli: --fail-fast and --retry-scalar conflict\n",
                   stderr);
        return 2;
    }
    if (options.deadline_ms != 0 && !options.ndjson) {
        // Whole-run deadline, measured from here (per record under
        // --ndjson, where make_stream_options() picks it up instead).
        options.engine_options.budget =
            RunBudget::within_ms(options.deadline_ms);
    }
    const bool multi = options.queries.size() > 1;
    if (multi && options.engine != "descend") {
        std::fputs(
            "descend-cli: multiple --query/--queries need the descend engine\n",
            stderr);
        return 2;
    }
    try {
        obs::PhaseStopwatch compile_watch;
        std::unique_ptr<JsonPathEngine> engine =
            (options.ndjson || multi) ? nullptr : make_engine(options);
        std::unique_ptr<multi::FusedEngine> multi_engine;
        if (multi && !options.ndjson) {
            multi_engine = multi::make_fused_engine(
                multi::MultiQuery::compile(options.queries),
                options.engine_options, options.fused);
        }
        const std::uint64_t compile_ns = compile_watch.elapsed_ns();
        auto dispatch = [&](const std::string& name, const PaddedString& doc) {
            if (options.ndjson) {
                return multi ? run_multi_ndjson(options, doc)
                             : run_ndjson(options, doc);
            }
            return multi ? run_multi(options, *multi_engine, name, doc,
                                     compile_ns)
                         : run_on(options, *engine, name, doc, compile_ns);
        };
        if (options.files.empty()) {
            return dispatch("<stdin>", read_stdin());
        }
        for (const std::string& file : options.files) {
            PaddedString document = [&] {
                try {
                    return PaddedString::from_file(file);
                } catch (const Error& error) {
                    std::fprintf(stderr, "descend-cli: %s\n", error.what());
                    std::exit(5);  // file I/O
                }
            }();
            int status = dispatch(file, document);
            if (status != 0) {
                return status;
            }
        }
        return 0;
    } catch (const QueryError& error) {
        std::fprintf(stderr, "descend-cli: %s\n", error.what());
        return 2;  // a malformed query is a usage error
    } catch (const LimitError& error) {
        std::fprintf(stderr, "descend-cli: %s\n", error.what());
        return 4;  // resource limit (e.g. --validate depth)
    } catch (const ParseError& error) {
        std::fprintf(stderr, "descend-cli: %s\n", error.what());
        return 3;  // malformed input document (--validate)
    } catch (const Error& error) {
        std::fprintf(stderr, "descend-cli: %s\n", error.what());
        return 1;
    }
}
