/**
 * @file
 * fuzz_engine: mutation-based differential fuzzing of all four engines on
 * malformed and adversarial inputs.
 *
 * difftest fuzzes *well-formed* documents; this harness attacks the other
 * half of the robustness contract. It takes the deterministic workload
 * generators as seed documents, applies single-byte structural mutations
 * (delete/insert/flip brackets and quotes, escape damage, truncation at
 * every 64-byte block boundary), and checks every engine against an
 * independent scalar structural oracle:
 *
 *  - if the mutant is still structurally well-formed and the strict DOM
 *    parser accepts it, every engine must return an ok status and the
 *    exact DOM match set (no skip may be confused by near-miss damage);
 *  - if the oracle says the mutant is damaged, every engine must return a
 *    non-ok, non-limit EngineStatus — never a silently truncated match
 *    set, never a crash (run under the asan preset for full effect).
 *
 * Documented detection limitations are encoded here, in one place:
 * head-skip mode and the JSONSki baseline cannot flag trailing content
 * after an atomic root (see DESIGN.md, "Error handling & limits").
 *
 * On accepted documents the harness additionally tightens each
 * EngineLimits knob to just below the document's needs and demands the
 * identical {status code, byte offset} from every engine (see the
 * limit-status alignment section below).
 *
 *   fuzz_engine [--iterations N] [--seed S] [--verbose]
 *   fuzz_engine --ndjson N [--seed S]
 *   fuzz_engine --multi N [--seed S]
 *   fuzz_engine --selectors N [--seed S]
 *   fuzz_engine --faults N [--seed S]
 *   fuzz_engine --serve-frames N [--seed S]
 *   fuzz_engine --project N [--seed S]
 *
 * --project N: projection mutation mode (src/descend/project). On mutants
 * the DOM still accepts, SpanExtender must equal the scalar extraction
 * oracle at every kernel tier for every match, engine-driven SliceSink
 * output must be byte-identical to DOM extraction, and the NDJSON sink
 * must emit one line per value. On rejected mutants, span extension from
 * every plausible value-start byte must stay within the view (memory
 * safety under the asan preset).
 *
 * --serve-frames N: wire-protocol mode for the descend-serve daemon. Valid
 * request frames (random mode/flags/limits/query/document) are mutated —
 * byte flips, truncations, length-field corruption, frame splices, pure
 * garbage — and driven through the exact server-side path a connection
 * uses (FrameReader with random chunking, then Dispatcher on decoded
 * requests): the server loop must never crash (run under the asan preset),
 * every outcome must be a valid in-range ServeStatus, reader errors must
 * be sticky, and every response must survive an encode/decode round trip.
 *
 * --faults N: randomized failpoint injection (see src/descend/fault).
 * Requires a DESCEND_FAULT=ON build — exits 0 with a notice otherwise.
 * Arms the batch-refill one-shot at random refill indices with random
 * forced status codes against pristine documents and checks that a fired
 * failpoint surfaces as exactly the forced status (and an unfired one is
 * invisible) across the single-engine, fused-multi and sharded-stream
 * paths.
 *
 * --ndjson N: NDJSON mutation mode for the record-stream subsystem. Small
 * workload documents are concatenated into NDJSON streams (LF, CRLF and
 * bare-CR separators), the *whole stream* is mutated (including separator
 * insertion/deletion, so record boundaries themselves get attacked), and
 * the sharded StreamExecutor — at several thread counts, under both error
 * policies — is checked against a scalar reference splitter plus
 * sequential per-record engine runs over isolated PaddedString copies.
 *
 * --selectors N: extended-selector differential mode. Random well-formed
 * documents crossed with random queries drawn from the full supported
 * grammar — array indices, slices, quoted-label unions, bracket-quoted
 * children and trailing filter predicates. Every streaming configuration
 * at every kernel tier plus the surfer baseline must reproduce the DOM
 * oracle's match set exactly, and the same query sets run through BOTH
 * fused backends against independent per-query runs (filter-carrying sets
 * exercise the product backend's refusal and the lanes fallback).
 *
 * --multi N: fused multi-query mode. Random query sets of up to 64
 * subscriptions — corpus-derived bases extended with mutated shared
 * prefixes, verbatim duplicates included — run through BOTH fused
 * backends (the per-query lanes and the set-compiled product automaton,
 * src/descend/multi) against N independent single-query runs on mutated
 * documents, at every kernel tier: identical per-query match sets when
 * every independent run passes, uniformly-rejecting statuses when all
 * fail alike. A set that trips the product state cap skips the product
 * leg, mirroring the kAuto fallback.
 *
 * Exits non-zero on the first disagreement, printing a self-contained
 * reproducer (seed dataset, mutation, document, statuses).
 */
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <optional>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "descend/baselines/dom_engine.h"
#include "descend/baselines/ski_engine.h"
#include "descend/baselines/surfer_engine.h"
#include "descend/descend.h"
#include "descend/fault/failpoints.h"
#include "descend/engine/scratch.h"
#include "descend/json/dom.h"
#include "descend/multi/fused.h"
#include "descend/multi/multi_engine.h"
#include "descend/util/errors.h"
#include "descend/serve/dispatch.h"
#include "descend/serve/protocol.h"
#include "descend/serve/query_cache.h"
#include "descend/workloads/datasets.h"
#include "descend/workloads/random_json.h"

namespace {

using namespace descend;

// ---------------------------------------------------------------------------
// Independent structural oracle.
//
// A deliberately naive scalar scan sharing no code with the engines: string
// and escape tracking, a bracket stack with kinds, root/trailing tracking.
// It models exactly the *structural* layer the streaming engines promise to
// validate; token grammar (bad literals, missing commas) is out of scope —
// the strict DOM parser covers that side.
// ---------------------------------------------------------------------------

enum class OracleClass {
    kOk,        ///< structurally well-formed
    kEmpty,     ///< nothing but whitespace
    kMalformed, ///< unbalanced / mismatched / truncated string / BOM
    kTrailing,  ///< non-whitespace after the completed root value
    kDepth,     ///< nesting beyond EngineLimits::max_depth
};

const char* oracle_class_name(OracleClass cls)
{
    switch (cls) {
        case OracleClass::kOk: return "ok";
        case OracleClass::kEmpty: return "empty";
        case OracleClass::kMalformed: return "malformed";
        case OracleClass::kTrailing: return "trailing";
        case OracleClass::kDepth: return "depth";
    }
    return "?";
}

bool oracle_is_ws(char c)
{
    return c == ' ' || c == '\t' || c == '\n' || c == '\r';
}

OracleClass classify_structure(const std::string& doc, std::size_t max_depth)
{
    if (doc.size() >= 3 && std::memcmp(doc.data(), "\xEF\xBB\xBF", 3) == 0) {
        return OracleClass::kMalformed;
    }
    std::vector<char> stack;
    bool in_string = false;
    bool escaped = false;
    bool root_done = false;
    bool in_root_atom = false;
    for (std::size_t i = 0; i < doc.size(); ++i) {
        char c = doc[i];
        if (in_string) {
            if (escaped) {
                escaped = false;
            } else if (c == '\\') {
                escaped = true;
            } else if (c == '"') {
                in_string = false;
                if (stack.empty() && !in_root_atom) {
                    root_done = true;
                }
            }
            continue;
        }
        bool structural = c == '{' || c == '}' || c == '[' || c == ']' ||
                          c == '"' || c == ',' || c == ':';
        if (in_root_atom && (oracle_is_ws(c) || structural)) {
            in_root_atom = false;
            root_done = true;
        }
        if (oracle_is_ws(c)) {
            continue;
        }
        if (stack.empty() && root_done && c != '}' && c != ']') {
            return OracleClass::kTrailing;
        }
        switch (c) {
            case '{':
            case '[':
                if (stack.size() >= max_depth) {
                    return OracleClass::kDepth;
                }
                stack.push_back(c);
                break;
            case '}':
            case ']':
                if (stack.empty()) {
                    return OracleClass::kMalformed;  // stray closer
                }
                if ((c == '}') != (stack.back() == '{')) {
                    return OracleClass::kMalformed;  // kind mismatch
                }
                stack.pop_back();
                if (stack.empty()) {
                    root_done = true;
                }
                break;
            case '"':
                in_string = true;
                break;
            case ',':
            case ':':
                break;  // grammar, not structure
            default:
                if (stack.empty()) {
                    in_root_atom = true;  // root atom byte
                }
                break;
        }
    }
    if (in_string) {
        return OracleClass::kMalformed;  // truncated string (incl. lone '\')
    }
    if (!stack.empty()) {
        return OracleClass::kMalformed;  // input ended inside containers
    }
    if (!root_done && !in_root_atom) {
        return OracleClass::kEmpty;
    }
    return OracleClass::kOk;
}

// ---------------------------------------------------------------------------
// Deterministic byte mutations.
// ---------------------------------------------------------------------------

struct Mutation {
    std::string description;
    std::string document;
};

std::vector<std::size_t> positions_of(const std::string& doc, const char* set)
{
    std::vector<std::size_t> positions;
    for (std::size_t i = 0; i < doc.size(); ++i) {
        if (std::strchr(set, doc[i]) != nullptr) {
            positions.push_back(i);
        }
    }
    return positions;
}

template <typename Rng>
std::size_t pick(Rng& rng, std::size_t bound)
{
    return static_cast<std::size_t>(rng() % bound);
}

/** Applies one structural mutation chosen by @p rng; nullopt if the chosen
 *  kind has no applicable site in this document. */
template <typename Rng>
std::optional<Mutation> mutate(const std::string& seed, Rng& rng)
{
    std::string doc = seed;
    switch (rng() % 8) {
        case 0: {  // delete a bracket
            std::vector<std::size_t> sites = positions_of(doc, "{}[]");
            if (sites.empty()) return std::nullopt;
            std::size_t at = sites[pick(rng, sites.size())];
            char victim = doc[at];
            doc.erase(at, 1);
            return Mutation{"delete '" + std::string(1, victim) + "' at " +
                                std::to_string(at),
                            doc};
        }
        case 1: {  // insert a bracket anywhere
            const char brackets[] = {'{', '}', '[', ']'};
            char inserted = brackets[pick(rng, 4)];
            std::size_t at = pick(rng, doc.size() + 1);
            doc.insert(at, 1, inserted);
            return Mutation{"insert '" + std::string(1, inserted) + "' at " +
                                std::to_string(at),
                            doc};
        }
        case 2: {  // flip a bracket's kind ({<->[ or }<->])
            std::vector<std::size_t> sites = positions_of(doc, "{}[]");
            if (sites.empty()) return std::nullopt;
            std::size_t at = sites[pick(rng, sites.size())];
            char from = doc[at];
            char to = from == '{' ? '[' : from == '[' ? '{' : from == '}' ? ']' : '}';
            doc[at] = to;
            return Mutation{std::string("flip '") + from + "' -> '" + to +
                                "' at " + std::to_string(at),
                            doc};
        }
        case 3: {  // flip a bracket's side ({<->} or [<->])
            std::vector<std::size_t> sites = positions_of(doc, "{}[]");
            if (sites.empty()) return std::nullopt;
            std::size_t at = sites[pick(rng, sites.size())];
            char from = doc[at];
            char to = from == '{' ? '}' : from == '}' ? '{' : from == '[' ? ']' : '[';
            doc[at] = to;
            return Mutation{std::string("flip '") + from + "' -> '" + to +
                                "' at " + std::to_string(at),
                            doc};
        }
        case 4: {  // delete a quote
            std::vector<std::size_t> sites = positions_of(doc, "\"");
            if (sites.empty()) return std::nullopt;
            std::size_t at = sites[pick(rng, sites.size())];
            doc.erase(at, 1);
            return Mutation{"delete '\"' at " + std::to_string(at), doc};
        }
        case 5: {  // insert a quote anywhere
            std::size_t at = pick(rng, doc.size() + 1);
            doc.insert(at, 1, '"');
            return Mutation{"insert '\"' at " + std::to_string(at), doc};
        }
        case 6: {  // escape damage: insert '\' before a quote, or delete one
            std::vector<std::size_t> slashes = positions_of(doc, "\\");
            if (!slashes.empty() && rng() % 2 == 0) {
                std::size_t at = slashes[pick(rng, slashes.size())];
                doc.erase(at, 1);
                return Mutation{"delete '\\' at " + std::to_string(at), doc};
            }
            std::vector<std::size_t> quotes = positions_of(doc, "\"");
            if (quotes.empty()) return std::nullopt;
            std::size_t at = quotes[pick(rng, quotes.size())];
            doc.insert(at, 1, '\\');
            return Mutation{"insert '\\' before quote at " + std::to_string(at),
                            doc};
        }
        case 7: {  // truncate at an arbitrary position
            if (doc.size() < 2) return std::nullopt;
            std::size_t at = 1 + pick(rng, doc.size() - 1);
            doc.resize(at);
            return Mutation{"truncate to " + std::to_string(at) + " bytes", doc};
        }
    }
    return std::nullopt;
}

// ---------------------------------------------------------------------------
// Engine harness.
// ---------------------------------------------------------------------------

/** Every kernel tier this host can run, best first (scalar is the oracle). */
std::vector<simd::Level> available_levels()
{
    std::vector<simd::Level> levels;
    if (simd::avx512_available()) {
        levels.push_back(simd::Level::avx512);
    }
    if (simd::avx2_available()) {
        levels.push_back(simd::Level::avx2);
    }
    levels.push_back(simd::Level::scalar);
    return levels;
}

/** The main-engine configurations with distinct detection paths. */
std::vector<EngineOptions> descend_configurations()
{
    std::vector<EngineOptions> configs;
    for (simd::Level level : available_levels()) {
        EngineOptions defaults;
        defaults.simd = level;
        configs.push_back(defaults);
        EngineOptions no_skips;
        no_skips.simd = level;
        no_skips.leaf_skipping = false;
        no_skips.child_skipping = false;
        no_skips.sibling_skipping = false;
        no_skips.head_skipping = false;
        configs.push_back(no_skips);
        EngineOptions within;
        within.simd = level;
        within.label_within_skipping = true;
        configs.push_back(within);
    }
    return configs;
}

std::string describe(const EngineOptions& o)
{
    std::string s = simd::level_name(o.simd);
    s += o.head_skipping ? "+head" : "-head";
    s += o.child_skipping ? "+skips" : "-skips";
    s += o.label_within_skipping ? "+within" : "";
    return s;
}

/** One seed document plus the queries derived from its label vocabulary. */
struct Corpus {
    std::string name;
    std::string document;
    std::vector<std::string> queries;    ///< for descend / surfer / dom
    std::string ski_query;               ///< child-only, for the jsonski baseline
};

void collect_labels(const json::Value& value, std::vector<std::string>& labels,
                    std::size_t limit)
{
    if (labels.size() >= limit) {
        return;
    }
    for (const json::Member& member : value.members()) {
        bool known = false;
        for (const std::string& existing : labels) {
            known = known || existing == member.key;
        }
        if (!known && !member.key.empty()) {
            labels.push_back(member.key);
        }
        collect_labels(*member.value, labels, limit);
    }
    for (const json::Value* element : value.elements()) {
        collect_labels(*element, labels, limit);
    }
}

Corpus build_corpus(const std::string& name, std::size_t target_bytes)
{
    Corpus corpus;
    corpus.name = name;
    corpus.document = workloads::generate(name, target_bytes);
    json::Document dom = json::parse(corpus.document);
    std::vector<std::string> labels;
    collect_labels(dom.root(), labels, 4);

    corpus.queries.push_back("$.*");
    for (std::size_t i = 0; i < labels.size() && i < 2; ++i) {
        corpus.queries.push_back("$.." + labels[i]);
    }
    if (labels.size() >= 2) {
        corpus.queries.push_back("$.." + labels[0] + ".." + labels[1]);
    }
    if (dom.root().is_object() && !dom.root().members().empty()) {
        corpus.ski_query = "$." + dom.root().members().front().key;
    } else {
        corpus.ski_query = "$[0]";
    }
    return corpus;
}

struct Stats {
    long mutants = 0;
    long still_valid = 0;
    long rejected = 0;
    long per_class[5] = {0, 0, 0, 0, 0};
};

int report(const Corpus& corpus, const Mutation& mutation, OracleClass oracle,
           const std::string& engine, const std::string& query,
           const std::string& detail, const std::string& document)
{
    std::printf(
        "DISAGREEMENT\nseed: %s\nmutation: %s\noracle: %s\nengine: %s\n"
        "query: %s\nproblem: %s\ndocument (%zu bytes):\n%.*s\n",
        corpus.name.c_str(), mutation.description.c_str(),
        oracle_class_name(oracle), engine.c_str(), query.c_str(),
        detail.c_str(), document.size(),
        static_cast<int>(document.size() > 2000 ? 2000 : document.size()),
        document.c_str());
    return 1;
}

std::string offsets_text(const std::vector<std::size_t>& offsets)
{
    std::string text = "[";
    for (std::size_t i = 0; i < offsets.size() && i < 16; ++i) {
        text += (i ? " " : "") + std::to_string(offsets[i]);
    }
    if (offsets.size() > 16) {
        text += " ...";
    }
    return text + "] (" + std::to_string(offsets.size()) + ")";
}

// ---------------------------------------------------------------------------
// Limit-status alignment.
//
// On a document every engine accepts, tightening ONE EngineLimits knob to
// just below what the document needs must produce the same EngineStatus —
// code AND byte offset — from every engine:
//
//   max_match_count = N-1   -> {kMatchLimit,  offset of the N-th match}
//   max_depth       = D-1   -> {kDepthLimit,  first opener reaching depth D}
//   max_document_size = S-1 -> {kSizeLimit,   S-1}
//
// One documented exemption: head-skip subruns track depth relative to the
// matched label's element, not the absolute document depth, so head-skip-
// active configurations skip the depth-limit comparison (DESIGN.md).
// ---------------------------------------------------------------------------

/** Scalar scan: deepest nesting and the first opener that reaches it. */
struct DepthProbe {
    std::size_t max_depth = 0;
    std::size_t opener = 0;  ///< offset of the first opener at max_depth
};

DepthProbe probe_depth(const std::string& doc)
{
    DepthProbe probe;
    bool in_string = false;
    bool escaped = false;
    std::size_t depth = 0;
    for (std::size_t i = 0; i < doc.size(); ++i) {
        char c = doc[i];
        if (in_string) {
            if (escaped) {
                escaped = false;
            } else if (c == '\\') {
                escaped = true;
            } else if (c == '"') {
                in_string = false;
            }
            continue;
        }
        if (c == '"') {
            in_string = true;
        } else if (c == '{' || c == '[') {
            if (++depth > probe.max_depth) {
                probe.max_depth = depth;
                probe.opener = i;
            }
        } else if ((c == '}' || c == ']') && depth > 0) {
            --depth;
        }
    }
    return probe;
}

struct LimitCase {
    const char* what;
    EngineLimits limits;
    EngineStatus expected;
    bool exempt_head_skip = false;
};

/** The tight-limit cases this document supports (see block comment). */
std::vector<LimitCase> limit_cases(const std::string& document,
                                   const std::vector<std::size_t>& offsets)
{
    std::vector<LimitCase> cases;
    if (!offsets.empty()) {
        LimitCase c;
        c.what = "match limit";
        c.limits.max_match_count = offsets.size() - 1;
        c.expected = {StatusCode::kMatchLimit, offsets.back()};
        cases.push_back(c);
    }
    DepthProbe probe = probe_depth(document);
    if (probe.max_depth >= 2) {
        LimitCase c;
        c.what = "depth limit";
        c.limits.max_depth = probe.max_depth - 1;
        c.expected = {StatusCode::kDepthLimit, probe.opener};
        c.exempt_head_skip = true;
        cases.push_back(c);
    }
    if (!document.empty()) {
        LimitCase c;
        c.what = "size limit";
        c.limits.max_document_size = document.size() - 1;
        c.expected = {StatusCode::kSizeLimit, document.size() - 1};
        cases.push_back(c);
    }
    return cases;
}

std::string limit_problem(const LimitCase& c, const EngineStatus& got)
{
    return std::string(c.what) + " status diverges: expected " +
           to_string(c.expected) + ", got " + to_string(got);
}

/**
 * Re-runs dom / surfer / every descend configuration with each tightened
 * limit and demands the exact expected status. Only called on documents
 * the full-limit run accepted with identical match sets everywhere.
 */
int check_limit_statuses(const Corpus& corpus, const Mutation& mutation,
                         const std::string& query_text,
                         const automaton::CompiledQuery& compiled,
                         const std::vector<std::size_t>& dom_offsets,
                         const PaddedString& padded)
{
    for (const LimitCase& c : limit_cases(mutation.document, dom_offsets)) {
        DomEngine dom(query::Query::parse(query_text), c.limits);
        CountSink dom_sink;
        EngineStatus dom_status = dom.run(padded, dom_sink);
        if (dom_status != c.expected) {
            return report(corpus, mutation, OracleClass::kOk, "dom", query_text,
                          limit_problem(c, dom_status), mutation.document);
        }

        SurferEngine surfer(compiled, c.limits);
        CountSink surfer_sink;
        EngineStatus surfer_status = surfer.run(padded, surfer_sink);
        if (surfer_status != c.expected) {
            return report(corpus, mutation, OracleClass::kOk, "surfer",
                          query_text, limit_problem(c, surfer_status),
                          mutation.document);
        }

        for (EngineOptions options : descend_configurations()) {
            bool head_skip_active = options.head_skipping &&
                                    compiled.head_skip_label().has_value();
            if (c.exempt_head_skip && head_skip_active) {
                continue;
            }
            options.limits = c.limits;
            DescendEngine engine(compiled, options);
            CountSink sink;
            EngineStatus status = engine.run(padded, sink);
            if (status != c.expected) {
                return report(corpus, mutation, OracleClass::kOk,
                              "descend[" + describe(options) + "]", query_text,
                              limit_problem(c, status), mutation.document);
            }
        }
    }
    return 0;
}

/**
 * Runs every engine over one (possibly mutated) document and checks the
 * cross-engine contract. Returns 0 when consistent.
 */
int check_document(const Corpus& corpus, const Mutation& mutation, Stats& stats)
{
    const std::string& document = mutation.document;
    EngineLimits limits;
    OracleClass oracle = classify_structure(document, limits.max_depth);
    stats.per_class[static_cast<int>(oracle)] += 1;
    PaddedString padded(document);

    for (const std::string& query_text : corpus.queries) {
        auto compiled = automaton::CompiledQuery::compile(query_text);
        DomEngine dom(query::Query::parse(query_text));
        OffsetSink dom_sink;
        EngineStatus dom_status = dom.run(padded, dom_sink);
        // The DOM parser is strictly more demanding than the structural
        // oracle: anything the oracle rejects, it must reject too.
        if (oracle != OracleClass::kOk && dom_status.ok()) {
            return report(corpus, mutation, oracle, "dom", query_text,
                          "accepted a structurally damaged document", document);
        }
        bool compare_matches = oracle == OracleClass::kOk && dom_status.ok();
        if (compare_matches) {
            stats.still_valid += 1;
        }

        SurferEngine surfer(compiled);
        OffsetSink surfer_sink;
        EngineStatus surfer_status = surfer.run(padded, surfer_sink);
        if (compare_matches) {
            if (!surfer_status.ok()) {
                return report(corpus, mutation, oracle, "surfer", query_text,
                              "false positive: " + to_string(surfer_status),
                              document);
            }
            if (surfer_sink.offsets() != dom_sink.offsets()) {
                return report(corpus, mutation, oracle, "surfer", query_text,
                              "matches diverge: dom " +
                                  offsets_text(dom_sink.offsets()) + " vs " +
                                  offsets_text(surfer_sink.offsets()),
                              document);
            }
        } else if (oracle != OracleClass::kOk) {
            // The surfer tracks the root element scalar-ly: full detection.
            if (surfer_status.ok()) {
                return report(corpus, mutation, oracle, "surfer", query_text,
                              "accepted a damaged document", document);
            }
            if (surfer_status.is_limit() && oracle != OracleClass::kDepth) {
                return report(corpus, mutation, oracle, "surfer", query_text,
                              "misclassified damage as a resource limit: " +
                                  to_string(surfer_status),
                              document);
            }
        }

        for (const EngineOptions& options : descend_configurations()) {
            DescendEngine engine(compiled, options);
            OffsetSink sink;
            RunStats run_stats = engine.run_with_stats(padded, sink);
            EngineStatus status = run_stats.status;
            std::string name = "descend[" + describe(options) + "]";
            // Block-attribution invariant (DESIGN.md §4.6): every run —
            // including early-error and limit-hit runs over damaged input —
            // must account each 64-byte block exactly once across the six
            // attribution counters. Holds by construction; checked here so
            // the fuzzer exercises it over millions of malformed documents.
            if constexpr (obs::kEnabled) {
                std::uint64_t accounted =
                    obs::accounted_blocks(run_stats.counters);
                std::uint64_t total = obs::total_blocks(padded.size());
                if (accounted != total) {
                    return report(corpus, mutation, oracle, name, query_text,
                                  "obs block accounting broken: accounted " +
                                      std::to_string(accounted) + " of " +
                                      std::to_string(total) + " blocks",
                                  document);
                }
            }
            if (compare_matches) {
                if (!status.ok()) {
                    return report(corpus, mutation, oracle, name, query_text,
                                  "false positive: " + to_string(status),
                                  document);
                }
                if (sink.offsets() != dom_sink.offsets()) {
                    return report(corpus, mutation, oracle, name, query_text,
                                  "matches diverge: dom " +
                                      offsets_text(dom_sink.offsets()) + " vs " +
                                      offsets_text(sink.offsets()),
                                  document);
                }
                continue;
            }
            if (oracle == OracleClass::kOk) {
                continue;  // grammar-level damage: streaming engines may pass
            }
            // Documented limitation: head-skip mode never observes the root
            // element, so balanced trailing content is invisible to it.
            bool head_skip_active = options.head_skipping &&
                                    compiled.head_skip_label().has_value();
            if (oracle == OracleClass::kTrailing && head_skip_active) {
                continue;
            }
            if (status.ok()) {
                return report(corpus, mutation, oracle, name, query_text,
                              "accepted a damaged document", document);
            }
            if (status.is_limit() && oracle != OracleClass::kDepth) {
                return report(corpus, mutation, oracle, name, query_text,
                              "misclassified damage as a resource limit: " +
                                  to_string(status),
                              document);
            }
        }

        // Tight-limit alignment: each knob set just below the document's
        // needs must yield the identical status everywhere.
        if (compare_matches) {
            if (int rc = check_limit_statuses(corpus, mutation, query_text,
                                              compiled, dom_sink.offsets(),
                                              padded)) {
                return rc;
            }
        }
    }

    // The JSONSki baseline: child-only query, status classification only
    // (its wildcard semantics differ by design, and it cannot see trailing
    // content after an atomic root).
    SkiEngine ski(query::Query::parse(corpus.ski_query));
    OffsetSink ski_sink;
    EngineStatus ski_status = ski.run(padded, ski_sink);
    if ((oracle == OracleClass::kMalformed || oracle == OracleClass::kEmpty ||
         oracle == OracleClass::kDepth) &&
        ski_status.ok()) {
        return report(corpus, mutation, oracle, "jsonski", corpus.ski_query,
                      "accepted a damaged document", document);
    }
    if (oracle == OracleClass::kOk && ski_status.ok()) {
        // Limit alignment for JSONSki, with expectations derived from its
        // own unlimited match list (its wildcard semantics differ by
        // design, so the DOM run cannot provide them).
        for (const LimitCase& c :
             limit_cases(document, ski_sink.offsets())) {
            SkiEngine limited(query::Query::parse(corpus.ski_query),
                              simd::default_level(), c.limits);
            CountSink limited_sink;
            EngineStatus limited_status = limited.run(padded, limited_sink);
            if (limited_status != c.expected) {
                return report(corpus, mutation, oracle, "jsonski",
                              corpus.ski_query,
                              limit_problem(c, limited_status), document);
            }
        }
    }
    if (oracle != OracleClass::kOk) {
        stats.rejected += 1;
    }
    return 0;
}

// ---------------------------------------------------------------------------
// NDJSON mutation mode: differential fuzzing of the record-stream subsystem.
// ---------------------------------------------------------------------------

/**
 * Scalar reference splitter sharing no code with stream::split_records:
 * naive per-byte string/escape tracking, newline splits, whitespace
 * trimming — the independent oracle for record boundaries. Escape
 * semantics follow the quote classifier's (simdjson's) convention: a quote
 * preceded by an odd run of backslashes is never a string delimiter,
 * regardless of whether the run sits inside a string — on damaged streams
 * the two conventions genuinely differ and the classifier's is the
 * subsystem's contract. Out-of-string '\r' is a separator exactly like
 * '\n' (a CRLF pair yields an empty middle segment the trim drops, so it
 * splits once).
 */
std::vector<stream::RecordSpan> reference_split(const std::string& text)
{
    std::vector<stream::RecordSpan> spans;
    auto emit = [&](std::size_t begin, std::size_t end) {
        while (begin < end && oracle_is_ws(text[begin])) {
            ++begin;
        }
        while (end > begin && oracle_is_ws(text[end - 1])) {
            --end;
        }
        if (begin < end) {
            spans.push_back({begin, end});
        }
    };
    bool in_string = false;
    bool escaped = false;
    std::size_t start = 0;
    for (std::size_t i = 0; i < text.size(); ++i) {
        char c = text[i];
        if (c == '\\') {
            escaped = !escaped;
            continue;
        }
        if (c == '"' && !escaped) {
            in_string = !in_string;
        } else if ((c == '\n' || c == '\r') && !in_string) {
            emit(start, i);
            start = i + 1;
        }
        escaped = false;
    }
    emit(start, text.size());
    return spans;
}

/** Mutates a stream: the single-document mutations plus separator attacks
 *  ('\n' and '\r' insertion/deletion — CR is a separator too, and an
 *  inserted CR next to an LF must still split only once). */
template <typename Rng>
std::optional<Mutation> mutate_stream(const std::string& seed, Rng& rng)
{
    switch (rng() % 5) {
        case 0: {  // insert a newline anywhere (splits a record, or lands
                   // inside a string where it must NOT split)
            std::string doc = seed;
            std::size_t at = pick(rng, doc.size() + 1);
            doc.insert(at, 1, '\n');
            return Mutation{"insert '\\n' at " + std::to_string(at), doc};
        }
        case 1: {  // delete a separator (fuses two records into one)
            std::vector<std::size_t> sites = positions_of(seed, "\n\r");
            if (sites.empty()) return std::nullopt;
            std::string doc = seed;
            std::size_t at = sites[pick(rng, sites.size())];
            doc.erase(at, 1);
            return Mutation{"delete separator at " + std::to_string(at), doc};
        }
        case 2: {  // insert a carriage return anywhere
            std::string doc = seed;
            std::size_t at = pick(rng, doc.size() + 1);
            doc.insert(at, 1, '\r');
            return Mutation{"insert '\\r' at " + std::to_string(at), doc};
        }
        default:
            return mutate(seed, rng);
    }
}

int report_stream(const std::string& name, const Mutation& mutation,
                  const std::string& configuration, const std::string& detail,
                  const std::string& document)
{
    std::printf(
        "STREAM DISAGREEMENT\nseed: %s\nmutation: %s\nconfiguration: %s\n"
        "problem: %s\ndocument (%zu bytes):\n%.*s\n",
        name.c_str(), mutation.description.c_str(), configuration.c_str(),
        detail.c_str(), document.size(),
        static_cast<int>(document.size() > 2000 ? 2000 : document.size()),
        document.c_str());
    return 1;
}

/**
 * Checks one (possibly mutated) NDJSON stream: splitter vs the scalar
 * reference, then the sharded executor at several thread counts and under
 * both policies vs sequential per-record runs over isolated copies.
 */
int check_stream(const std::string& name, const Mutation& mutation,
                 const std::string& query_text, Stats& stats)
{
    const std::string& text = mutation.document;
    PaddedString padded(text);
    std::vector<stream::RecordSpan> expected_spans = reference_split(text);
    for (simd::Level level : available_levels()) {
        std::vector<stream::RecordSpan> spans =
            stream::split_records(padded, simd::kernels_for(level));
        if (spans != expected_spans) {
            return report_stream(
                name, mutation,
                std::string("split[") + simd::level_name(level) + "]",
                "record spans diverge from the scalar reference splitter "
                "(counts " +
                    std::to_string(spans.size()) + " vs " +
                    std::to_string(expected_spans.size()) + ")",
                text);
        }
    }

    // Sequential per-record oracle over isolated copies.
    DescendEngine engine = DescendEngine::for_query(query_text);
    std::vector<stream::CollectingStreamSink::Match> skip_matches;
    std::vector<stream::CollectingStreamSink::RecordError> skip_errors;
    for (std::size_t r = 0; r < expected_spans.size(); ++r) {
        const stream::RecordSpan& span = expected_spans[r];
        PaddedString copy(
            std::string_view(text).substr(span.begin, span.size()));
        OffsetsResult result = engine.offsets_checked(copy);
        if (result.ok()) {
            for (std::size_t offset : result.offsets) {
                skip_matches.push_back({r, offset});
            }
        } else {
            skip_errors.push_back({r, result.status});
        }
    }
    // Fail-fast expectation: cut the skip-policy result at the first error.
    std::vector<stream::CollectingStreamSink::Match> fast_matches;
    std::vector<stream::CollectingStreamSink::RecordError> fast_errors;
    std::size_t first_failed = skip_errors.empty()
                                   ? stream::StreamResult::kNone
                                   : skip_errors.front().record;
    for (const auto& match : skip_matches) {
        if (match.record < first_failed) {
            fast_matches.push_back(match);
        }
    }
    if (!skip_errors.empty()) {
        fast_errors.push_back(skip_errors.front());
    }

    for (std::size_t threads : {std::size_t{1}, std::size_t{3}}) {
        for (stream::ErrorPolicy policy : {stream::ErrorPolicy::kSkipRecord,
                                           stream::ErrorPolicy::kFailFast}) {
            bool fail_fast = policy == stream::ErrorPolicy::kFailFast;
            stream::StreamOptions options;
            options.threads = threads;
            options.policy = policy;
            options.records_per_batch = 3;  // small batches: more shuffling
            stream::StreamExecutor executor(
                automaton::CompiledQuery::compile(query_text), options);
            stream::CollectingStreamSink sink;
            stream::StreamResult result = executor.run(padded, sink);
            std::string configuration =
                "executor[threads=" + std::to_string(threads) +
                (fail_fast ? ",fail-fast]" : ",skip]");
            const auto& want_matches = fail_fast ? fast_matches : skip_matches;
            const auto& want_errors = fail_fast ? fast_errors : skip_errors;
            if (sink.matches() != want_matches) {
                return report_stream(name, mutation, configuration,
                                     "matches diverge from the sequential "
                                     "oracle (" +
                                         std::to_string(sink.matches().size()) +
                                         " vs " +
                                         std::to_string(want_matches.size()) +
                                         ")",
                                     text);
            }
            if (sink.errors() != want_errors) {
                return report_stream(
                    name, mutation, configuration,
                    "record errors diverge from the sequential oracle",
                    text);
            }
            if (result.records != expected_spans.size() ||
                result.matches != want_matches.size() ||
                result.failed_records != want_errors.size()) {
                return report_stream(name, mutation, configuration,
                                     "aggregate StreamResult counters are "
                                     "inconsistent with the delivered stream",
                                     text);
            }
        }
    }
    if (!skip_errors.empty()) {
        stats.rejected += 1;
    } else {
        stats.still_valid += 1;
    }
    return 0;
}

int run_ndjson_mode(long iterations, std::uint64_t seed0, bool verbose)
{
    // Streams of small records from every generator; one stream per
    // dataset, queried with a descendant and a wildcard query.
    struct StreamCorpus {
        std::string name;
        std::string text;
    };
    std::vector<StreamCorpus> corpora;
    for (const std::string& name : workloads::dataset_names()) {
        std::string text;
        for (std::size_t i = 0; i < 5; ++i) {
            text += workloads::generate(name, 400 + i * 230);
            // Cycle the separator style so pristine streams already cover
            // LF, CRLF and bare-CR record boundaries.
            text += i % 3 == 1 ? "\r\n" : (i % 3 == 2 ? "\r" : "\n");
        }
        corpora.push_back({name, text});
    }
    const char* queries[] = {"$.*", "$..id"};

    Stats stats;
    // Pristine streams must already agree everywhere.
    for (const StreamCorpus& corpus : corpora) {
        Mutation pristine{"none (pristine stream)", corpus.text};
        for (const char* query : queries) {
            if (int rc = check_stream(corpus.name, pristine, query, stats)) {
                return rc;
            }
        }
    }
    for (long i = 0; i < iterations; ++i) {
        const StreamCorpus& corpus =
            corpora[static_cast<std::size_t>(i) % corpora.size()];
        std::mt19937_64 rng(seed0 * 0x9E3779B97F4A7C15ull +
                            static_cast<std::uint64_t>(i) + 0x51ED0A3Bull);
        std::optional<Mutation> mutation = mutate_stream(corpus.text, rng);
        if (!mutation.has_value()) {
            continue;
        }
        stats.mutants += 1;
        const char* query = queries[rng() % 2];
        if (int rc = check_stream(corpus.name, *mutation, query, stats)) {
            std::printf("iteration: %ld (reproduce with --seed %llu)\n", i,
                        static_cast<unsigned long long>(seed0));
            return rc;
        }
        if (verbose && (i + 1) % 500 == 0) {
            std::printf("... %ld/%ld\n", i + 1, iterations);
        }
    }
    std::printf("fuzz_engine --ndjson: %ld stream mutants over %zu seeds OK\n"
                "  clean streams: %ld, streams with failed records: %ld\n",
                stats.mutants, corpora.size(), stats.still_valid,
                stats.rejected);
    return 0;
}

// ---------------------------------------------------------------------------
// Multi-query mutation mode: fused execution vs N independent runs.
// ---------------------------------------------------------------------------

int report_multi(const std::string& name, const Mutation& mutation,
                 const std::vector<std::string>& queries,
                 const std::string& configuration, const std::string& detail,
                 const std::string& document)
{
    std::string query_list;
    for (const std::string& q : queries) {
        query_list += (query_list.empty() ? "" : " | ") + q;
    }
    std::printf(
        "MULTI DISAGREEMENT\nseed: %s\nmutation: %s\nqueries: %s\n"
        "configuration: %s\nproblem: %s\ndocument (%zu bytes):\n%.*s\n",
        name.c_str(), mutation.description.c_str(), query_list.c_str(),
        configuration.c_str(), detail.c_str(), document.size(),
        static_cast<int>(document.size() > 2000 ? 2000 : document.size()),
        document.c_str());
    return 1;
}

/**
 * Checks one (possibly mutated) document under one fused query set: per
 * kernel tier and per fused backend (lanes AND product), the fused run
 * must agree with N independent runs — identical per-query match sets
 * when every independent run is ok, identical status class when every
 * independent run fails the same way. Product and lanes are thereby also
 * differentially checked against each other through the shared oracle.
 *
 * Detection asymmetry: an independent run in head-skip mode never observes
 * the root element, while the fused pass head-skips only on a label common
 * to EVERY lane — so the fused run may flag trailing content that the
 * independent head-skip runs are documented to miss. That one outcome is
 * tolerated; anything else the lanes did not report is a finding.
 */
int check_multi(const std::string& name, const Mutation& mutation,
                const std::vector<std::string>& queries, bool within_skip,
                Stats& stats)
{
    PaddedString padded(mutation.document);
    bool any_head_skip = false;
    for (const std::string& text : queries) {
        auto compiled = automaton::CompiledQuery::compile(text);
        any_head_skip =
            any_head_skip || compiled.head_skip_label().has_value();
    }
    for (simd::Level level : available_levels()) {
        EngineOptions options;
        options.simd = level;
        options.label_within_skipping = within_skip;

        std::vector<EngineStatus> statuses;
        std::vector<std::vector<std::size_t>> expected;
        for (const std::string& text : queries) {
            DescendEngine engine(automaton::CompiledQuery::compile(text),
                                 options);
            OffsetSink sink;
            statuses.push_back(engine.run(padded, sink));
            expected.push_back(sink.offsets());
        }
        bool all_ok = true;
        bool all_same = true;
        for (const EngineStatus& status : statuses) {
            all_ok = all_ok && status.ok();
            all_same = all_same && status == statuses.front();
        }

        for (multi::FusedBackend backend : {multi::FusedBackend::kLanes,
                                            multi::FusedBackend::kProduct}) {
            std::string configuration =
                std::string("multi[") + simd::level_name(level) +
                (within_skip ? "+within" : "") + "," +
                std::string(multi::fused_backend_name(backend)) + "]";
            std::unique_ptr<multi::FusedEngine> fused;
            try {
                fused = multi::make_fused_engine(
                    multi::MultiQuery::compile(queries), options, backend);
            } catch (const LimitError&) {
                // The product state cap — exactly what kAuto falls back
                // on; the lanes leg still covers this set.
                continue;
            }
            multi::CollectingMultiSink sink(queries.size());
            EngineStatus fused_status = fused->run(padded, sink);

            if (all_ok) {
                if (!fused_status.ok()) {
                    if (options.head_skipping && any_head_skip &&
                        fused_status.code == StatusCode::kTrailingContent) {
                        continue;  // fused structural pass outsees head-skips
                    }
                    return report_multi(name, mutation, queries, configuration,
                                        "fused run failed where every "
                                        "independent run passed: " +
                                            to_string(fused_status),
                                        mutation.document);
                }
                if (sink.all() != expected) {
                    for (std::size_t q = 0; q < queries.size(); ++q) {
                        if (sink.all()[q] != expected[q]) {
                            return report_multi(
                                name, mutation, queries, configuration,
                                "query " + std::to_string(q) +
                                    " matches diverge: independent " +
                                    offsets_text(expected[q]) + " vs fused " +
                                    offsets_text(sink.all()[q]),
                                mutation.document);
                        }
                    }
                }
                stats.still_valid += 1;
            } else if (all_same) {
                // Every lane rejects the document. The fused pass must
                // reject too — but the *offset* (and with it the code
                // picked among several defects) legitimately depends on
                // the skip pattern, and both backends walk regions the
                // single runs fast-forward over, so detection can land
                // earlier. Only the classification contract is shared:
                // non-ok, and never a resource limit unless the lanes
                // reported one.
                if (fused_status.ok()) {
                    return report_multi(name, mutation, queries,
                                        configuration,
                                        "fused run accepted a document every "
                                        "independent run rejects (" +
                                            to_string(statuses.front()) + ")",
                                        mutation.document);
                }
                if (fused_status.is_limit() && !statuses.front().is_limit()) {
                    return report_multi(name, mutation, queries,
                                        configuration,
                                        "fused run misclassified damage as "
                                        "a resource limit: " +
                                            to_string(fused_status),
                                        mutation.document);
                }
                stats.rejected += 1;
            }
            // Mixed independent statuses (head-skip detection asymmetry):
            // no cross-engine expectation holds; skip.
        }
    }
    return 0;
}

/**
 * A random subscription set of 2..64 queries: corpus-derived bases
 * extended with mutated shared prefixes and suffixes, so many queries
 * share a spine and fork near the leaf (the shape the product trie
 * factors), with verbatim duplicates mixed in (the dedup path).
 */
std::vector<std::string> random_query_set(const Corpus& corpus,
                                          std::mt19937_64& rng)
{
    std::vector<std::string> set;
    const std::size_t n = 2 + rng() % 63;
    while (set.size() < n) {
        const std::string& base =
            corpus.queries[rng() % corpus.queries.size()];
        switch (rng() % 4) {
        case 0:
            set.push_back(base);
            break;
        case 1:
            set.push_back(base + ".f" + std::to_string(rng() % 8));
            break;
        case 2:
            set.push_back(base + "..g" + std::to_string(rng() % 4));
            break;
        default:
            set.push_back("$.h" + std::to_string(rng() % 8) +
                          base.substr(1));
            break;
        }
    }
    return set;
}

int run_multi_mode(long iterations, std::uint64_t seed0, bool verbose)
{
    std::vector<Corpus> corpora;
    std::size_t target = 1500;
    for (const std::string& name : workloads::dataset_names()) {
        corpora.push_back(build_corpus(name, target));
        target = target >= 6000 ? 1500 : target + 600;
    }

    Stats stats;
    // Pristine documents first: the full query set must already agree.
    for (const Corpus& corpus : corpora) {
        Mutation pristine{"none (pristine seed)", corpus.document};
        for (bool within : {false, true}) {
            if (int rc = check_multi(corpus.name, pristine, corpus.queries,
                                     within, stats)) {
                return rc;
            }
        }
    }
    for (long i = 0; i < iterations; ++i) {
        const Corpus& corpus =
            corpora[static_cast<std::size_t>(i) % corpora.size()];
        std::mt19937_64 rng(seed0 * 0x9E3779B97F4A7C15ull +
                            static_cast<std::uint64_t>(i) + 0xA5A5A5A5ull);
        std::optional<Mutation> mutation = mutate(corpus.document, rng);
        if (!mutation.has_value()) {
            continue;
        }
        stats.mutants += 1;
        // A random 2..64-subscription set built from the corpus queries
        // by shared-prefix/suffix mutation — child-wildcard and
        // descendant lanes mix so skip decisions genuinely disagree, and
        // duplicates exercise the dedup path.
        std::vector<std::string> subset = random_query_set(corpus, rng);
        bool within = rng() % 2 == 1;
        if (int rc = check_multi(corpus.name, *mutation, subset, within,
                                 stats)) {
            std::printf("iteration: %ld (reproduce with --seed %llu)\n", i,
                        static_cast<unsigned long long>(seed0));
            return rc;
        }
        if (verbose && (i + 1) % 500 == 0) {
            std::printf("... %ld/%ld\n", i + 1, iterations);
        }
    }
    std::printf("fuzz_engine --multi: %ld mutants over %zu seeds OK\n"
                "  parity-checked backend-runs: ok %ld, uniformly rejected "
                "%ld\n",
                stats.mutants, corpora.size(), stats.still_valid,
                stats.rejected);
    return 0;
}

// ---------------------------------------------------------------------------
// Selector mode: extended-grammar queries (indices, slices, unions,
// filters) drawn by the random query generator against random well-formed
// documents. Every streaming configuration at every kernel tier, plus the
// surfer baseline, must reproduce the DOM oracle's match set exactly; the
// same query sets also go through check_multi, so both fused backends are
// covered (a set whose product compilation is refused — filters, state
// cap — exercises exactly the kAuto lanes fallback).
// ---------------------------------------------------------------------------

int report_selectors(std::uint64_t seed, const std::string& query,
                     const std::string& configuration,
                     const std::string& detail, const std::string& document)
{
    std::printf(
        "SELECTOR DISAGREEMENT\nseed: %llu\nquery: %s\nconfiguration: %s\n"
        "problem: %s\ndocument (%zu bytes):\n%.*s\n",
        static_cast<unsigned long long>(seed), query.c_str(),
        configuration.c_str(), detail.c_str(), document.size(),
        static_cast<int>(document.size() > 2000 ? 2000 : document.size()),
        document.c_str());
    return 1;
}

int run_selectors_mode(long iterations, std::uint64_t seed0, bool verbose)
{
    long checked_queries = 0;
    long filter_queries = 0;
    long counter_queries = 0;
    long checked_sets = 0;
    Stats set_stats;
    for (long i = 0; i < iterations; ++i) {
        std::uint64_t seed = seed0 * 0x9E3779B97F4A7C15ull +
                             static_cast<std::uint64_t>(i) * 2654435761ull + 17;
        workloads::RandomJsonOptions options;
        options.seed = seed;
        options.max_depth = 4 + static_cast<int>(seed % 5);
        options.max_width = 4 + static_cast<int>(seed / 7 % 4);
        std::string document = workloads::random_json(options);
        PaddedString padded(document);

        std::vector<std::string> queries;
        for (std::uint64_t q = 0; q < 3; ++q) {
            queries.push_back(workloads::random_query(
                seed * 131 + q * 7919 + 1, options.label_pool, 4,
                /*allow_indices=*/true, /*extended_selectors=*/true));
        }
        for (const std::string& text : queries) {
            query::Query parsed = query::Query::parse(text);
            filter_queries += parsed.filter() != nullptr ? 1 : 0;
            counter_queries += parsed.has_indices() ? 1 : 0;
            DomEngine oracle(parsed);
            std::vector<std::size_t> expected = oracle.offsets(padded);

            {
                SurferEngine surfer(automaton::CompiledQuery::compile(text));
                OffsetSink sink;
                EngineStatus status = surfer.run(padded, sink);
                if (!status.ok() || sink.offsets() != expected) {
                    return report_selectors(
                        seed, text, "surfer",
                        "expected " + offsets_text(expected) + " got " +
                            offsets_text(sink.offsets()) + " (" +
                            to_string(status) + ")",
                        document);
                }
            }
            for (simd::Level level : available_levels()) {
                for (int cfg = 0; cfg < 3; ++cfg) {
                    EngineOptions eopts;
                    eopts.simd = level;
                    if (cfg == 1) {
                        eopts.leaf_skipping = false;
                        eopts.child_skipping = false;
                        eopts.sibling_skipping = false;
                        eopts.head_skipping = false;
                    } else if (cfg == 2) {
                        eopts.label_within_skipping = true;
                    }
                    DescendEngine engine(
                        automaton::CompiledQuery::compile(text), eopts);
                    OffsetSink sink;
                    EngineStatus status = engine.run(padded, sink);
                    if (!status.ok() || sink.offsets() != expected) {
                        std::string configuration =
                            std::string(simd::level_name(level)) +
                            (cfg == 1 ? "-skips" : cfg == 2 ? "+within" : "");
                        return report_selectors(
                            seed, text, configuration,
                            "expected " + offsets_text(expected) + " got " +
                                offsets_text(sink.offsets()) + " (" +
                                to_string(status) + ")",
                            document);
                    }
                }
            }
            checked_queries += 1;
        }

        // Both fused backends against independent runs on the same set.
        Mutation pristine{"none (random selector document)", document};
        if (int rc = check_multi("selectors-" + std::to_string(seed),
                                 pristine, queries, i % 2 == 1, set_stats)) {
            std::printf("iteration: %ld (reproduce with --seed %llu)\n", i,
                        static_cast<unsigned long long>(seed0));
            return rc;
        }
        checked_sets += 1;
        if (verbose && (i + 1) % 500 == 0) {
            std::printf("... %ld/%ld\n", i + 1, iterations);
        }
    }
    std::printf(
        "fuzz_engine --selectors: %ld iterations OK\n"
        "  single-query runs: %ld (with filters %ld, with counters %ld); "
        "fused sets: %ld\n",
        iterations, checked_queries, filter_queries, counter_queries,
        checked_sets);
    return 0;
}

// ---------------------------------------------------------------------------
// Fault-injection mode: randomized failpoint arming against well-formed
// documents (requires a DESCEND_FAULT=ON build; a no-op exit otherwise).
//
// Each iteration arms the batch-refill failpoint one-shot at a random refill
// index with a random forced StatusCode, then runs one of the three
// execution paths (single engine, fused multi-query, sharded stream) on a
// pristine document and checks the failure contract:
//
//  - if the one-shot fired, the run's status is exactly the forced code,
//    with an in-bounds offset — never a success with a silently truncated
//    match set, never a different code (the first-status-wins latch must
//    protect the interrupt from downstream misclassification);
//  - if the run finished before the armed refill, the status is ok — an
//    armed-but-unfired failpoint must be entirely invisible.
//
// Stream iterations additionally arm a random worker-startup stall, and use
// the one-shot guarantee as an invariant: at most one record can fail, and
// failed_records must equal the fired count exactly.
// ---------------------------------------------------------------------------

int report_fault(const std::string& name, const std::string& configuration,
                 const std::string& detail)
{
    std::printf("FAULT DISAGREEMENT\nseed: %s\nconfiguration: %s\nproblem: %s\n",
                name.c_str(), configuration.c_str(), detail.c_str());
    fault::disarm_all();
    return 1;
}

int run_faults_mode(long iterations, std::uint64_t seed0, bool verbose)
{
    if (!fault::kEnabled) {
        std::printf(
            "fuzz_engine --faults: built with DESCEND_FAULT=OFF; failpoints "
            "are compiled out, nothing to inject\n");
        return 0;
    }

    std::vector<Corpus> corpora;
    std::size_t target = 1800;
    for (const std::string& name : workloads::dataset_names()) {
        corpora.push_back(build_corpus(name, target));
        target = target >= 6000 ? 1800 : target + 800;
    }
    // NDJSON stream per dataset for the executor iterations.
    std::vector<std::string> streams;
    for (const Corpus& corpus : corpora) {
        std::string text;
        for (std::size_t i = 0; i < 6; ++i) {
            text += workloads::generate(corpus.name, 300 + i * 170);
            text += '\n';
        }
        streams.push_back(text);
    }
    const StatusCode forced_codes[] = {StatusCode::kDeadlineExceeded,
                                       StatusCode::kCancelled,
                                       StatusCode::kUnbalancedStructure};
    std::vector<EngineOptions> configurations = descend_configurations();

    long fired_total = 0;
    long clean_total = 0;
    for (long i = 0; i < iterations; ++i) {
        std::size_t which = static_cast<std::size_t>(i) % corpora.size();
        const Corpus& corpus = corpora[which];
        std::mt19937_64 rng(seed0 * 0x9E3779B97F4A7C15ull +
                            static_cast<std::uint64_t>(i) + 0xFA177ull);
        StatusCode forced = forced_codes[rng() % 3];
        EngineOptions options = configurations[pick(rng, configurations.size())];

        fault::disarm_all();
        switch (rng() % 3) {
            case 0: {  // single engine
                PaddedString padded(corpus.document);
                std::size_t refills =
                    corpus.document.size() / simd::kBatchSize + 2;
                fault::arm(fault::Site::kBatchRefill, pick(rng, refills + 4),
                           static_cast<std::uint64_t>(forced));
                const std::string& query =
                    corpus.queries[pick(rng, corpus.queries.size())];
                DescendEngine engine(automaton::CompiledQuery::compile(query),
                                     options);
                OffsetSink sink;
                EngineStatus status = engine.run(padded, sink);
                bool fired = fault::fired_count(fault::Site::kBatchRefill) > 0;
                std::string configuration =
                    "descend[" + describe(options) + "] query " + query;
                if (fired) {
                    ++fired_total;
                    if (status.code != forced) {
                        return report_fault(
                            corpus.name, configuration,
                            "fired failpoint (forced " +
                                std::string(status_name(forced)) +
                                ") surfaced as " + to_string(status));
                    }
                    if (status.offset > padded.size()) {
                        return report_fault(corpus.name, configuration,
                                            "fired failpoint offset out of "
                                            "bounds: " +
                                                to_string(status));
                    }
                } else {
                    ++clean_total;
                    if (!status.ok()) {
                        return report_fault(
                            corpus.name, configuration,
                            "armed-but-unfired failpoint changed the "
                            "verdict: " +
                                to_string(status));
                    }
                }
                break;
            }
            case 1: {  // fused multi-query
                PaddedString padded(corpus.document);
                std::size_t refills =
                    corpus.document.size() / simd::kBatchSize + 2;
                fault::arm(fault::Site::kBatchRefill, pick(rng, refills + 4),
                           static_cast<std::uint64_t>(forced));
                multi::MultiDescendEngine fused(
                    multi::MultiQuery::compile(corpus.queries), options);
                multi::CollectingMultiSink sink(corpus.queries.size());
                EngineStatus status = fused.run(padded, sink);
                bool fired = fault::fired_count(fault::Site::kBatchRefill) > 0;
                std::string configuration = "multi[" + describe(options) + "]";
                if (fired) {
                    ++fired_total;
                    if (status.code != forced) {
                        return report_fault(
                            corpus.name, configuration,
                            "fired failpoint (forced " +
                                std::string(status_name(forced)) +
                                ") surfaced as " + to_string(status));
                    }
                } else {
                    ++clean_total;
                    if (!status.ok()) {
                        return report_fault(
                            corpus.name, configuration,
                            "armed-but-unfired failpoint changed the "
                            "verdict: " +
                                to_string(status));
                    }
                }
                break;
            }
            default: {  // sharded stream executor
                const std::string& text = streams[which];
                PaddedString padded(text);
                std::size_t spans = reference_split(text).size();
                // Enough skip range that the shot often lands mid-stream
                // and sometimes not at all.
                std::size_t refills = text.size() / simd::kBatchSize + 8;
                fault::arm(fault::Site::kBatchRefill, pick(rng, refills),
                           static_cast<std::uint64_t>(forced));
                if (rng() % 2 == 0) {
                    fault::arm(fault::Site::kWorkerStartup, 0, rng() % 3);
                }
                stream::StreamOptions stream_options;
                stream_options.threads = 1 + pick(rng, 3);
                stream_options.records_per_batch = 1 + pick(rng, 3);
                stream_options.engine = options;
                stream::StreamExecutor executor(
                    automaton::CompiledQuery::compile("$..id"), stream_options);
                stream::CollectingStreamSink sink;
                stream::StreamResult result = executor.run(padded, sink);
                std::uint64_t fired =
                    fault::fired_count(fault::Site::kBatchRefill);
                std::string configuration =
                    "stream[threads=" + std::to_string(stream_options.threads) +
                    "," + describe(options) + "]";
                if (result.records != spans) {
                    return report_fault(corpus.name, configuration,
                                        "record count diverges from the "
                                        "reference splitter under faults");
                }
                if (result.failed_records != fired) {
                    return report_fault(
                        corpus.name, configuration,
                        "one-shot failpoint fired " + std::to_string(fired) +
                            " time(s) but " +
                            std::to_string(result.failed_records) +
                            " record(s) failed");
                }
                if (fired > 0) {
                    ++fired_total;
                    if (sink.errors().size() != 1 ||
                        sink.errors().front().status.code != forced) {
                        return report_fault(
                            corpus.name, configuration,
                            "fired failpoint (forced " +
                                std::string(status_name(forced)) +
                                ") did not surface as the failing record's "
                                "error");
                    }
                } else {
                    ++clean_total;
                }
                break;
            }
        }
        if (verbose && (i + 1) % 500 == 0) {
            std::printf("... %ld/%ld\n", i + 1, iterations);
        }
    }
    fault::disarm_all();
    std::printf("fuzz_engine --faults: %ld injected runs over %zu seeds OK\n"
                "  failpoint fired: %ld, armed but unfired: %ld\n",
                iterations, corpora.size(), fired_total, clean_total);
    return 0;
}

// ---------------------------------------------------------------------------
// Serve-frame mutation mode: the daemon's wire path under hostile bytes.
//
// Mirrors exactly what the server does per connection: an incremental
// FrameReader fed in arbitrary chunks, take_request() on kReady, then
// Dispatcher::handle() — with a shared QueryCache and a reused RunScratch,
// like one worker thread. The contract under ANY byte sequence:
//
//  - no crash, no exception escaping the dispatch path;
//  - a reader error is a valid in-range ServeStatus (never kOk) and is
//    sticky across further feeds (the poisoned-connection invariant);
//  - every decoded request produces a response whose serve_status is
//    in-range, and whose encoding survives a decode_response round trip
//    (what a real client would receive and parse);
//  - an unmutated frame must decode and dispatch with ServeStatus::kOk or
//    kBadQuery (some generated queries are deliberately invalid).
// ---------------------------------------------------------------------------

int report_frames(long iteration, const std::string& detail)
{
    std::printf("SERVE-FRAME DISAGREEMENT\niteration: %ld\nproblem: %s\n",
                iteration, detail.c_str());
    return 1;
}

/** One worker's view of a connection: chunked feed, dispatch on ready.
 *  Returns empty on contract violations, else a problem description. */
template <typename Rng>
std::string drive_connection(const std::vector<std::uint8_t>& wire,
                             serve::Dispatcher& dispatcher,
                             RunScratch& scratch, Rng& rng, bool& dispatched)
{
    serve::FrameReader reader;
    std::size_t fed = 0;
    dispatched = false;
    while (fed < wire.size()) {
        std::size_t chunk = 1 + pick(rng, 997);
        chunk = std::min(chunk, wire.size() - fed);
        serve::FrameReader::State state = reader.feed(wire.data() + fed, chunk);
        fed += chunk;
        if (state == serve::FrameReader::State::kError) {
            serve::ServeStatus error = reader.error();
            if (static_cast<std::size_t>(error) >= serve::kServeStatusCount ||
                error == serve::ServeStatus::kOk) {
                return "reader error is not a valid non-ok ServeStatus";
            }
            // Sticky: more bytes (even a pristine frame) must not revive it.
            std::vector<std::uint8_t> valid = serve::encode_request({});
            if (reader.feed(valid.data(), valid.size()) !=
                    serve::FrameReader::State::kError ||
                reader.error() != error) {
                return "reader error is not sticky across further feeds";
            }
            return {};
        }
        while (reader.state() == serve::FrameReader::State::kReady) {
            serve::Request request = reader.take_request();
            serve::Response response;
            try {
                response = dispatcher.handle(request, scratch);
            } catch (const std::exception& e) {
                return std::string("dispatcher threw: ") + e.what();
            }
            dispatched = true;
            if (static_cast<std::size_t>(response.serve_status) >=
                serve::kServeStatusCount) {
                return "response serve_status out of range";
            }
            // What a client receives must decode back to the same verdict.
            std::vector<std::uint8_t> encoded =
                serve::encode_response(response);
            serve::Response decoded;
            std::size_t consumed = 0;
            if (!serve::decode_response(encoded.data(), encoded.size(),
                                        decoded, consumed) ||
                consumed != encoded.size() ||
                decoded.serve_status != response.serve_status ||
                decoded.engine_status.code != response.engine_status.code ||
                decoded.match_count != response.match_count ||
                decoded.offsets != response.offsets) {
                return "response does not survive an encode/decode round trip";
            }
        }
    }
    // End-of-input: an incomplete buffered frame must surface as exactly
    // kTruncatedFrame, never anything else.
    serve::FrameReader::State state = reader.finish();
    if (state == serve::FrameReader::State::kError &&
        reader.error() != serve::ServeStatus::kTruncatedFrame) {
        return "finish() on a partial frame is not kTruncatedFrame";
    }
    return {};
}

int run_serve_frames_mode(long iterations, std::uint64_t seed0, bool verbose)
{
    // Seed material: documents of several sizes, valid and invalid queries,
    // all three modes, governance fields included.
    std::vector<std::string> documents;
    for (const std::string& name :
         {std::string("bestbuy"), std::string("twitter_small")}) {
        documents.push_back(workloads::generate(name, 600));
        documents.push_back(workloads::generate(name, 4000));
    }
    documents.push_back("");
    documents.push_back("{\"a\": 1}\n{\"a\": 2}\n{\"a\": [3]}\n");
    const char* queries[] = {"$..a",       "$.products.*.sku",
                             "$.*",        "$..a\n$..b",
                             "$.[broken",  "",
                             "not a query"};

    serve::QueryCache cache(32, 4);
    serve::Dispatcher dispatcher(serve::ServePolicy{}, cache);
    RunScratch scratch;

    long mutants = 0;
    long dispatched_total = 0;
    long rejected_total = 0;
    for (long i = 0; i < iterations; ++i) {
        std::mt19937_64 rng(seed0 * 0x9E3779B97F4A7C15ull +
                            static_cast<std::uint64_t>(i) + 0x5EF7Eull);
        serve::Request request;
        request.mode = static_cast<serve::RequestMode>(rng() % 4);  // 3 = bad
        request.flags = static_cast<std::uint32_t>(rng() % 4);
        request.deadline_ms = rng() % 3 == 0 ? 1 + pick(rng, 100000) : 0;
        request.max_depth = rng() % 3 == 0 ? 1 + pick(rng, 64) : 0;
        request.max_matches = rng() % 3 == 0 ? 1 + pick(rng, 1000) : 0;
        request.query = queries[pick(rng, std::size(queries))];
        request.body = documents[pick(rng, documents.size())];
        std::vector<std::uint8_t> wire = serve::encode_request(request);

        bool pristine = false;
        switch (rng() % 8) {
            case 0:  // unmutated: must decode and dispatch
                pristine = static_cast<std::uint16_t>(request.mode) < 3;
                break;
            case 1: {  // flip one random byte
                std::size_t at = pick(rng, wire.size());
                wire[at] ^= static_cast<std::uint8_t>(1 + pick(rng, 255));
                break;
            }
            case 2:  // truncate at a random point
                wire.resize(pick(rng, wire.size()));
                break;
            case 3: {  // corrupt 4 bytes at a random offset (length fields)
                std::size_t at = pick(rng, wire.size() > 4 ? wire.size() - 4 : 1);
                for (int b = 0; b < 4 && at + static_cast<std::size_t>(b) <
                                             wire.size(); ++b) {
                    wire[at + static_cast<std::size_t>(b)] =
                        static_cast<std::uint8_t>(rng());
                }
                break;
            }
            case 4: {  // splice: a second frame appended (pipelining), the
                       // pair optionally cut mid-second-frame
                serve::Request second;
                second.query = "$..b";
                second.body = "{\"b\": 1}";
                std::vector<std::uint8_t> tail = serve::encode_request(second);
                wire.insert(wire.end(), tail.begin(), tail.end());
                if (rng() % 2 == 0) {
                    wire.resize(wire.size() - 1 - pick(rng, tail.size()));
                }
                break;
            }
            case 5: {  // pure garbage
                wire.assign(1 + pick(rng, 4096), 0);
                for (std::uint8_t& byte : wire) {
                    byte = static_cast<std::uint8_t>(rng());
                }
                break;
            }
            case 6: {  // giant lengths in an otherwise valid header
                std::uint64_t huge =
                    (std::uint64_t{1} << (20 + pick(rng, 44)));
                std::size_t field = rng() % 2 == 0 ? 28 : 36;  // query/body len
                for (int b = 0; b < (field == 28 ? 4 : 8); ++b) {
                    wire[field + static_cast<std::size_t>(b)] =
                        static_cast<std::uint8_t>(huge >> (8 * b));
                }
                wire.resize(serve::kRequestHeaderSize);
                break;
            }
            default:  // nonzero reserved field
                wire[32 + pick(rng, 4)] = static_cast<std::uint8_t>(1 + rng() % 255);
                break;
        }

        mutants += 1;
        bool dispatched = false;
        std::string problem =
            drive_connection(wire, dispatcher, scratch, rng, dispatched);
        if (!problem.empty()) {
            std::printf("(reproduce with --serve-frames and --seed %llu)\n",
                        static_cast<unsigned long long>(seed0));
            return report_frames(i, problem);
        }
        if (pristine && !dispatched) {
            return report_frames(i, "pristine frame failed to dispatch");
        }
        dispatched_total += dispatched ? 1 : 0;
        rejected_total += dispatched ? 0 : 1;
        if (verbose && (i + 1) % 1000 == 0) {
            std::printf("... %ld/%ld\n", i + 1, iterations);
        }
    }
    serve::CacheStats cache_stats = cache.stats();
    std::printf(
        "fuzz_engine --serve-frames: %ld frame mutants OK\n"
        "  dispatched: %ld, rejected pre-dispatch: %ld; cache %llu hits / "
        "%llu misses\n",
        mutants, dispatched_total, rejected_total,
        static_cast<unsigned long long>(cache_stats.hits),
        static_cast<unsigned long long>(cache_stats.misses));
    return 0;
}

// ---------------------------------------------------------------------------
// Projection mutation mode: span extension and the sink family under
// mutated documents.
//
// On mutants the DOM parser still accepts, the contract is exact: every
// match offset's SpanExtender::extend() must equal the scalar oracle
// (extend_value_span / extract_value) at every kernel tier, engine-driven
// SliceSink output must be byte-identical to DOM extraction, and the
// NDJSON sink must emit exactly one line per value. On mutants the DOM
// rejects there is no value contract, but there IS a safety one: span
// extension from arbitrary plausible offsets (every opener/quote byte in
// the damaged document) must stay within the view — never scan past the
// logical end, never crash (run under the asan preset for full effect) —
// because the CLI and daemon extend offsets reported *before* an engine
// detected the damage.
// ---------------------------------------------------------------------------

int report_project(const std::string& name, const Mutation& mutation,
                   const std::string& query, const std::string& configuration,
                   const std::string& detail, const std::string& document)
{
    std::printf(
        "PROJECTION DISAGREEMENT\nseed: %s\nmutation: %s\nquery: %s\n"
        "configuration: %s\nproblem: %s\ndocument (%zu bytes):\n%.*s\n",
        name.c_str(), mutation.description.c_str(), query.c_str(),
        configuration.c_str(), detail.c_str(), document.size(),
        static_cast<int>(document.size() > 2000 ? 2000 : document.size()),
        document.c_str());
    return 1;
}

int check_projection(const Corpus& corpus, const Mutation& mutation,
                     const std::string& query_text, Stats& stats)
{
    const std::string& document = mutation.document;
    PaddedString padded(document);
    DomEngine dom(query::Query::parse(query_text));
    OffsetSink dom_sink;
    const bool accepted = dom.run(padded, dom_sink).ok();

    for (simd::Level level : available_levels()) {
        std::string configuration =
            std::string("project[") + simd::level_name(level) + "]";
        project::SpanExtender extender(padded, simd::kernels_for(level));

        if (!accepted) {
            // Safety sweep: extend from every byte that could plausibly be
            // handed to the extender by a pre-damage match report. Spans
            // must stay inside the view; under asan this also proves no
            // read strays past it.
            for (std::size_t at :
                 positions_of(document, "{[\"0123456789tfn-")) {
                project::ValueSpan span = extender.extend(at);
                if (span.end > padded.size() || span.begin > span.end) {
                    return report_project(
                        corpus.name, mutation, query_text, configuration,
                        "span [" + std::to_string(span.begin) + "," +
                            std::to_string(span.end) +
                            ") leaves the view (size " +
                            std::to_string(padded.size()) + ") from offset " +
                            std::to_string(at),
                        document);
                }
            }
            continue;
        }

        // Exact differential: batched extension == the scalar oracle, for
        // every match the DOM reports.
        for (std::size_t offset : dom_sink.offsets()) {
            project::ValueSpan expected =
                project::extend_value_span(padded, offset);
            project::ValueSpan got = extender.extend(offset);
            if (got != expected) {
                return report_project(
                    corpus.name, mutation, query_text, configuration,
                    "span diverges from the scalar oracle at offset " +
                        std::to_string(offset) + ": expected [" +
                        std::to_string(expected.begin) + "," +
                        std::to_string(expected.end) + "), got [" +
                        std::to_string(got.begin) + "," +
                        std::to_string(got.end) + ")",
                    document);
            }
        }

        // Engine-driven sinks: slices byte-identical to DOM extraction,
        // NDJSON one line per value.
        EngineOptions options;
        options.simd = level;
        DescendEngine engine(automaton::CompiledQuery::compile(query_text),
                             options);
        project::SliceSink slices;
        project::ProjectingMatchSink slice_sink(extender, slices);
        if (!engine.run(padded, slice_sink).ok()) {
            continue;  // grammar-level damage the DOM tolerates; no contract
        }
        std::vector<std::string_view> expected_values =
            extract_values(padded, dom_sink.offsets());
        if (slices.slices().size() != expected_values.size()) {
            return report_project(
                corpus.name, mutation, query_text, configuration,
                "slice count diverges: dom " +
                    std::to_string(expected_values.size()) + " vs " +
                    std::to_string(slices.slices().size()),
                document);
        }
        for (std::size_t v = 0; v < expected_values.size(); ++v) {
            if (slices.slices()[v] != expected_values[v]) {
                return report_project(
                    corpus.name, mutation, query_text, configuration,
                    "slice " + std::to_string(v) +
                        " is not byte-identical to DOM extraction",
                    document);
            }
        }
        std::ostringstream ndjson_out;
        project::NdjsonSink ndjson(ndjson_out);
        project::project_all(extender, dom_sink.offsets(), ndjson);
        if (ndjson.lines() != expected_values.size()) {
            return report_project(
                corpus.name, mutation, query_text, configuration,
                "ndjson line count diverges: " +
                    std::to_string(ndjson.lines()) + " lines for " +
                    std::to_string(expected_values.size()) + " values",
                document);
        }
    }
    if (accepted) {
        stats.still_valid += 1;
    } else {
        stats.rejected += 1;
    }
    return 0;
}

int run_project_mode(long iterations, std::uint64_t seed0, bool verbose)
{
    std::vector<Corpus> corpora;
    std::size_t target = 1800;
    for (const std::string& name : workloads::dataset_names()) {
        corpora.push_back(build_corpus(name, target));
        target = target >= 6000 ? 1800 : target + 700;
    }

    Stats stats;
    // Pristine seeds first: every query's projection must already agree.
    for (const Corpus& corpus : corpora) {
        Mutation pristine{"none (pristine seed)", corpus.document};
        for (const std::string& query : corpus.queries) {
            if (int rc = check_projection(corpus, pristine, query, stats)) {
                return rc;
            }
        }
    }
    for (long i = 0; i < iterations; ++i) {
        const Corpus& corpus =
            corpora[static_cast<std::size_t>(i) % corpora.size()];
        std::mt19937_64 rng(seed0 * 0x9E3779B97F4A7C15ull +
                            static_cast<std::uint64_t>(i) + 0x9407EC7ull);
        std::optional<Mutation> mutation = mutate(corpus.document, rng);
        if (!mutation.has_value()) {
            continue;
        }
        stats.mutants += 1;
        const std::string& query =
            corpus.queries[pick(rng, corpus.queries.size())];
        if (int rc = check_projection(corpus, *mutation, query, stats)) {
            std::printf("iteration: %ld (reproduce with --seed %llu)\n", i,
                        static_cast<unsigned long long>(seed0));
            return rc;
        }
        if (verbose && (i + 1) % 500 == 0) {
            std::printf("... %ld/%ld\n", i + 1, iterations);
        }
    }
    std::printf(
        "fuzz_engine --project: %ld mutants over %zu seeds OK\n"
        "  differentially projected: %ld, safety-swept (rejected): %ld\n",
        stats.mutants, corpora.size(), stats.still_valid, stats.rejected);
    return 0;
}

}  // namespace

int main(int argc, char** argv)
{
    long iterations = 10000;
    long ndjson_iterations = -1;
    long multi_iterations = -1;
    long selector_iterations = -1;
    long fault_iterations = -1;
    long serve_frame_iterations = -1;
    long project_iterations = -1;
    std::uint64_t seed0 = 1;
    bool verbose = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--ndjson") == 0 && i + 1 < argc) {
            char* end = nullptr;
            ndjson_iterations = std::strtol(argv[++i], &end, 10);
            if (end == argv[i] || *end != '\0' || ndjson_iterations < 0) {
                std::fprintf(stderr, "fuzz_engine: bad --ndjson '%s'\n",
                             argv[i]);
                return 2;
            }
        } else if (std::strcmp(argv[i], "--multi") == 0 && i + 1 < argc) {
            char* end = nullptr;
            multi_iterations = std::strtol(argv[++i], &end, 10);
            if (end == argv[i] || *end != '\0' || multi_iterations < 0) {
                std::fprintf(stderr, "fuzz_engine: bad --multi '%s'\n",
                             argv[i]);
                return 2;
            }
        } else if (std::strcmp(argv[i], "--selectors") == 0 && i + 1 < argc) {
            char* end = nullptr;
            selector_iterations = std::strtol(argv[++i], &end, 10);
            if (end == argv[i] || *end != '\0' || selector_iterations < 0) {
                std::fprintf(stderr, "fuzz_engine: bad --selectors '%s'\n",
                             argv[i]);
                return 2;
            }
        } else if (std::strcmp(argv[i], "--faults") == 0 && i + 1 < argc) {
            char* end = nullptr;
            fault_iterations = std::strtol(argv[++i], &end, 10);
            if (end == argv[i] || *end != '\0' || fault_iterations < 0) {
                std::fprintf(stderr, "fuzz_engine: bad --faults '%s'\n",
                             argv[i]);
                return 2;
            }
        } else if (std::strcmp(argv[i], "--serve-frames") == 0 && i + 1 < argc) {
            char* end = nullptr;
            serve_frame_iterations = std::strtol(argv[++i], &end, 10);
            if (end == argv[i] || *end != '\0' || serve_frame_iterations < 0) {
                std::fprintf(stderr, "fuzz_engine: bad --serve-frames '%s'\n",
                             argv[i]);
                return 2;
            }
        } else if (std::strcmp(argv[i], "--project") == 0 && i + 1 < argc) {
            char* end = nullptr;
            project_iterations = std::strtol(argv[++i], &end, 10);
            if (end == argv[i] || *end != '\0' || project_iterations < 0) {
                std::fprintf(stderr, "fuzz_engine: bad --project '%s'\n",
                             argv[i]);
                return 2;
            }
        } else if (std::strcmp(argv[i], "--iterations") == 0 && i + 1 < argc) {
            char* end = nullptr;
            iterations = std::strtol(argv[++i], &end, 10);
            if (end == argv[i] || *end != '\0' || iterations < 0) {
                std::fprintf(stderr, "fuzz_engine: bad --iterations '%s'\n",
                             argv[i]);
                return 2;
            }
        } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
            char* end = nullptr;
            seed0 = std::strtoull(argv[++i], &end, 10);
            if (end == argv[i] || *end != '\0') {
                std::fprintf(stderr, "fuzz_engine: bad --seed '%s'\n", argv[i]);
                return 2;
            }
        } else if (std::strcmp(argv[i], "--verbose") == 0) {
            verbose = true;
        } else {
            std::fprintf(stderr,
                         "usage: fuzz_engine [--iterations N] [--seed S] "
                         "[--verbose] | --ndjson N [--seed S] "
                         "| --multi N [--seed S] | --selectors N [--seed S] "
                         "| --faults N [--seed S] "
                         "| --serve-frames N [--seed S] "
                         "| --project N [--seed S]\n");
            return 2;
        }
    }
    if (ndjson_iterations >= 0) {
        return run_ndjson_mode(ndjson_iterations, seed0, verbose);
    }
    if (multi_iterations >= 0) {
        return run_multi_mode(multi_iterations, seed0, verbose);
    }
    if (selector_iterations >= 0) {
        return run_selectors_mode(selector_iterations, seed0, verbose);
    }
    if (fault_iterations >= 0) {
        return run_faults_mode(fault_iterations, seed0, verbose);
    }
    if (serve_frame_iterations >= 0) {
        return run_serve_frames_mode(serve_frame_iterations, seed0, verbose);
    }
    if (project_iterations >= 0) {
        return run_project_mode(project_iterations, seed0, verbose);
    }

    std::vector<Corpus> corpora;
    std::size_t target = 2048;
    for (const std::string& name : workloads::dataset_names()) {
        corpora.push_back(build_corpus(name, target));
        target = target >= 8192 ? 2048 : target + 700;
    }

    Stats stats;
    // Phase 1: pristine seeds must pass everything (sanity for the harness
    // itself), and truncation at *every* 64-byte block boundary — the
    // classifiers' resume points — must be flagged.
    for (const Corpus& corpus : corpora) {
        Mutation pristine{"none (pristine seed)", corpus.document};
        if (int rc = check_document(corpus, pristine, stats)) {
            return rc;
        }
        for (std::size_t cut = 64; cut < corpus.document.size(); cut += 64) {
            Mutation truncated{"truncate to " + std::to_string(cut) +
                                   " bytes (block boundary)",
                               corpus.document.substr(0, cut)};
            stats.mutants += 1;
            if (int rc = check_document(corpus, truncated, stats)) {
                return rc;
            }
        }
        if (verbose) {
            std::printf("seed %-14s %6zu bytes, %zu queries, ski: %s\n",
                        corpus.name.c_str(), corpus.document.size(),
                        corpus.queries.size(), corpus.ski_query.c_str());
        }
    }

    // Phase 2: random structural mutations, deterministic per iteration.
    for (long i = 0; i < iterations; ++i) {
        const Corpus& corpus = corpora[static_cast<std::size_t>(i) % corpora.size()];
        std::mt19937_64 rng(seed0 * 0x9E3779B97F4A7C15ull +
                            static_cast<std::uint64_t>(i));
        std::optional<Mutation> mutation = mutate(corpus.document, rng);
        if (!mutation.has_value()) {
            continue;
        }
        stats.mutants += 1;
        if (int rc = check_document(corpus, *mutation, stats)) {
            std::printf("iteration: %ld (reproduce with --seed %llu and this "
                        "iteration)\n",
                        i, static_cast<unsigned long long>(seed0));
            return rc;
        }
        if (verbose && (i + 1) % 1000 == 0) {
            std::printf("... %ld/%ld\n", i + 1, iterations);
        }
    }

    std::printf(
        "fuzz_engine: %ld mutants over %zu seeds OK\n"
        "  oracle classes: ok %ld, empty %ld, malformed %ld, trailing %ld, "
        "depth %ld\n"
        "  still-valid (full match comparison): %ld, rejected by contract: %ld\n",
        stats.mutants, corpora.size(), stats.per_class[0], stats.per_class[1],
        stats.per_class[2], stats.per_class[3], stats.per_class[4],
        stats.still_valid, stats.rejected);
    return 0;
}
